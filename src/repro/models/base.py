"""Base class shared by the DLRM / WDL / DCN recommendation models.

A model owns (a) an embedding *store* — anything satisfying
:class:`repro.store.EmbeddingStore`, from a bare
:class:`repro.embeddings.CompressedEmbedding` (wrapped in a bit-exact
single-shard store) to a multi-shard :class:`repro.store.
ShardedEmbeddingStore` — and (b) a dense network built from :mod:`repro.nn`
modules.  The training loop drives them through
:meth:`RecommendationModel.forward`, which returns both the logits tensor and
the leaf embedding tensor so that, after ``loss.backward()``, the per-lookup
gradient (the quantity CAFE scores features by) can be handed back to the
store.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import CompressedEmbedding
from repro.nn.module import Module
from repro.nn.tensor import Tensor, get_default_dtype
from repro.store import EmbeddingStore, ensure_store


class RecommendationModel(Module):
    """Common scaffolding: embedding lookup + dense forward."""

    def __init__(
        self,
        embedding: CompressedEmbedding | EmbeddingStore,
        num_fields: int,
        num_numerical: int,
    ):
        if num_fields <= 0:
            raise ValueError(f"num_fields must be positive, got {num_fields}")
        if num_numerical < 0:
            raise ValueError(f"num_numerical must be non-negative, got {num_numerical}")
        #: The store is what the forward pass and trainer talk to; a bare
        #: embedding layer is adapted via a delegating single-shard store.
        self.store: EmbeddingStore = ensure_store(embedding)
        #: The object the caller handed in, kept for introspection (e.g.
        #: reaching a CAFE layer's sketch in experiments).
        self.embedding = embedding
        self.num_fields = int(num_fields)
        self.num_numerical = int(num_numerical)
        self.dim = self.store.dim

    @classmethod
    def from_schema(
        cls,
        schema,
        spec: str | None = None,
        compression_ratio: float = 1.0,
        num_shards: int = 1,
        executor=None,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype="float32",
        seed: int = 0,
        rng=None,
        **model_kwargs,
    ) -> "RecommendationModel":
        """Build the model plus its embedding store from a dataset schema.

        ``spec`` selects the store: a plain method name gives one uniform
        (optionally sharded) table, a table-group spec such as
        ``"full:tiny,cafe:tail"`` gives a heterogeneous per-field
        :class:`~repro.store.table_group.TableGroupStore`; ``None`` follows
        the schema's attached ``field_configs``.  The model's training
        contract is unchanged — it still talks to the
        :class:`~repro.store.EmbeddingStore` interface.
        """
        from repro.embeddings import create_embedding_store

        store = create_embedding_store(
            schema,
            spec=spec,
            compression_ratio=compression_ratio,
            num_shards=num_shards,
            executor=executor,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            seed=seed,
        )
        return cls(
            store,
            num_fields=schema.num_fields,
            num_numerical=schema.num_numerical,
            rng=rng if rng is not None else seed,
            **model_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Dense part (implemented by subclasses)
    # ------------------------------------------------------------------ #
    def forward_dense(self, embeddings: Tensor, numerical: np.ndarray) -> Tensor:
        """Map ``(batch, fields, dim)`` embeddings + numerical features to logits."""
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------ #
    # Full forward pass
    # ------------------------------------------------------------------ #
    def forward(self, categorical: np.ndarray, numerical: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Return ``(logits, embedding_leaf)``.

        ``categorical`` holds global feature ids of shape ``(batch, fields)``;
        ``numerical`` holds dense features of shape ``(batch, num_numerical)``
        (may be ``None``/empty when the dataset has no numerical fields).
        The embedding leaf is a ``requires_grad`` tensor wrapping the looked-up
        vectors; after backward its ``grad`` is passed to
        ``embedding.apply_gradients``.
        """
        categorical = np.asarray(categorical, dtype=np.int64)
        if categorical.ndim != 2 or categorical.shape[1] != self.num_fields:
            raise ValueError(
                f"categorical input must have shape (batch, {self.num_fields}), got {categorical.shape}"
            )
        numerical = self._check_numerical(numerical, categorical.shape[0])
        vectors = self.store.lookup(categorical)
        leaf = Tensor(vectors, requires_grad=True, name="embedding_leaf")
        logits = self.forward_dense(leaf, numerical)
        return logits, leaf

    def predict_proba(self, categorical: np.ndarray, numerical: np.ndarray | None = None) -> np.ndarray:
        """Click probabilities for a batch (no gradient bookkeeping)."""
        logits, _ = self.forward(categorical, numerical)
        z = logits.data.reshape(-1)
        out = np.empty_like(z)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        out[~positive] = exp_z / (1.0 + exp_z)
        return out

    def _check_numerical(self, numerical: np.ndarray | None, batch_size: int) -> np.ndarray:
        if self.num_numerical == 0:
            return np.zeros((batch_size, 0), dtype=get_default_dtype())
        if numerical is None:
            raise ValueError(f"model expects {self.num_numerical} numerical features, got none")
        numerical = np.asarray(numerical, dtype=get_default_dtype())
        if numerical.shape != (batch_size, self.num_numerical):
            raise ValueError(
                f"numerical input must have shape ({batch_size}, {self.num_numerical}), "
                f"got {numerical.shape}"
            )
        return numerical

    def dense_parameter_count(self) -> int:
        """Number of parameters in the dense network (excludes embeddings)."""
        return self.num_parameters()

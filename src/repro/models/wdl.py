"""Wide & Deep Learning (Cheng et al., 2016)."""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import CompressedEmbedding
from repro.models.base import RecommendationModel
from repro.nn import functional as F
from repro.nn.layers import MLP, Linear
from repro.nn.tensor import Tensor
from repro.store import EmbeddingStore
from repro.utils.rng import SeedLike, make_rng


class WDL(RecommendationModel):
    """Wide (single linear layer) + Deep (MLP) model, predictions summed.

    Both parts consume the concatenation of the field embeddings and the raw
    numerical features, matching the architecture sketch in the paper's
    §5.1.1 ("embeddings are fed into a wide network (1 FC layer) and a deep
    network (several FC layers), and finally the results are summed").
    """

    def __init__(
        self,
        embedding: CompressedEmbedding | EmbeddingStore,
        num_fields: int,
        num_numerical: int,
        deep_mlp: list[int] | None = None,
        rng: SeedLike = None,
    ):
        super().__init__(embedding, num_fields, num_numerical)
        generator = make_rng(rng)
        input_dim = num_fields * self.dim + num_numerical
        self.wide = Linear(input_dim, 1, rng=generator)
        deep_sizes = [input_dim] + (deep_mlp or [64, 32]) + [1]
        self.deep = MLP(deep_sizes, rng=generator)

    def forward_dense(self, embeddings: Tensor, numerical: np.ndarray) -> Tensor:
        batch = embeddings.shape[0]
        flat = F.reshape(embeddings, (batch, self.num_fields * self.dim))
        if self.num_numerical > 0:
            features = F.concat([flat, Tensor(numerical)], axis=1)
        else:
            features = flat
        wide_logit = self.wide(features)
        deep_logit = self.deep(features)
        return F.reshape(F.add(wide_logit, deep_logit), (batch,))

"""Deep & Cross Network (Wang et al., 2017)."""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import CompressedEmbedding
from repro.models.base import RecommendationModel
from repro.nn import functional as F
from repro.nn.interactions import CrossNetwork
from repro.nn.layers import MLP, Linear
from repro.nn.tensor import Tensor
from repro.store import EmbeddingStore
from repro.utils.rng import SeedLike, make_rng


class DCN(RecommendationModel):
    """Cross network + deep network over the stacked input vector.

    The cross layers multiply the input with its learned projections to build
    element-level cross terms (paper §5.1.1); their output is concatenated
    with the deep MLP output and mapped to the final logit.
    """

    def __init__(
        self,
        embedding: CompressedEmbedding | EmbeddingStore,
        num_fields: int,
        num_numerical: int,
        num_cross_layers: int = 3,
        deep_mlp: list[int] | None = None,
        rng: SeedLike = None,
    ):
        super().__init__(embedding, num_fields, num_numerical)
        generator = make_rng(rng)
        input_dim = num_fields * self.dim + num_numerical
        deep_sizes = [input_dim] + (deep_mlp or [64, 32])
        self.cross = CrossNetwork(input_dim, num_cross_layers, rng=generator)
        self.deep = MLP(deep_sizes, rng=generator)
        self.output = Linear(input_dim + deep_sizes[-1], 1, rng=generator)

    def forward_dense(self, embeddings: Tensor, numerical: np.ndarray) -> Tensor:
        batch = embeddings.shape[0]
        flat = F.reshape(embeddings, (batch, self.num_fields * self.dim))
        if self.num_numerical > 0:
            features = F.concat([flat, Tensor(numerical)], axis=1)
        else:
            features = flat
        cross_out = self.cross(features)
        deep_out = F.relu(self.deep(features))
        combined = F.concat([cross_out, deep_out], axis=1)
        logits = self.output(combined)
        return F.reshape(logits, (batch,))

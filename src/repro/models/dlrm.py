"""DLRM (Naumov et al., 2019): dot-product interaction architecture."""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import CompressedEmbedding
from repro.models.base import RecommendationModel
from repro.nn import functional as F
from repro.nn.interactions import DotInteraction
from repro.nn.layers import MLP
from repro.nn.tensor import Tensor
from repro.store import EmbeddingStore
from repro.utils.rng import SeedLike, make_rng


class DLRM(RecommendationModel):
    """Deep Learning Recommendation Model with pairwise dot interactions.

    Numerical features pass through a bottom MLP whose output is treated as an
    additional "field" in the interaction; the interaction terms are then
    concatenated with that dense vector and fed to the top MLP, following the
    reference implementation.
    """

    def __init__(
        self,
        embedding: CompressedEmbedding | EmbeddingStore,
        num_fields: int,
        num_numerical: int,
        bottom_mlp: list[int] | None = None,
        top_mlp: list[int] | None = None,
        rng: SeedLike = None,
    ):
        super().__init__(embedding, num_fields, num_numerical)
        generator = make_rng(rng)
        dim = self.dim
        self.has_dense_field = num_numerical > 0
        if self.has_dense_field:
            bottom_sizes = [num_numerical] + (bottom_mlp or [64, 32]) + [dim]
            self.bottom = MLP(bottom_sizes, rng=generator)
        else:
            self.bottom = None
        interaction_fields = num_fields + (1 if self.has_dense_field else 0)
        interaction_dim = DotInteraction.output_dim(interaction_fields)
        top_input = interaction_dim + (dim if self.has_dense_field else 0)
        top_sizes = [top_input] + (top_mlp or [64, 32]) + [1]
        self.interaction = DotInteraction()
        self.top = MLP(top_sizes, rng=generator)

    def forward_dense(self, embeddings: Tensor, numerical: np.ndarray) -> Tensor:
        batch = embeddings.shape[0]
        if self.has_dense_field:
            dense_vector = self.bottom(Tensor(numerical))
            dense_as_field = F.reshape(dense_vector, (batch, 1, self.dim))
            all_fields = F.concat([embeddings, dense_as_field], axis=1)
            interactions = self.interaction(all_fields)
            top_input = F.concat([dense_vector, interactions], axis=1)
        else:
            interactions = self.interaction(embeddings)
            top_input = interactions
        logits = self.top(top_input)
        return F.reshape(logits, (batch,))

"""Recommendation model architectures (DLRM, WDL, DCN)."""

from __future__ import annotations

from repro.embeddings.base import CompressedEmbedding
from repro.models.base import RecommendationModel
from repro.models.dcn import DCN
from repro.models.dlrm import DLRM
from repro.models.wdl import WDL

MODEL_NAMES = ("dlrm", "wdl", "dcn")


def create_model(
    name: str,
    embedding: CompressedEmbedding,
    num_fields: int,
    num_numerical: int,
    rng=None,
    **kwargs,
) -> RecommendationModel:
    """Factory used by experiment configurations (``"dlrm"``, ``"wdl"``, ``"dcn"``)."""
    lowered = name.lower()
    if lowered == "dlrm":
        return DLRM(embedding, num_fields, num_numerical, rng=rng, **kwargs)
    if lowered == "wdl":
        return WDL(embedding, num_fields, num_numerical, rng=rng, **kwargs)
    if lowered == "dcn":
        return DCN(embedding, num_fields, num_numerical, rng=rng, **kwargs)
    raise ValueError(f"unknown model '{name}'; expected one of {MODEL_NAMES}")


__all__ = ["RecommendationModel", "DLRM", "WDL", "DCN", "MODEL_NAMES", "create_model"]

"""AdaEmbed (Lai et al., OSDI 2023) reimplemented as a comparison baseline.

AdaEmbed tracks an importance score for *every* feature, keeps exclusive
embedding rows only for the currently most-important ones, and periodically
reallocates rows when the importance ranking changes.  Two properties matter
for the paper's comparison (§1.2, §5.2):

* its memory floor — the per-feature score array scales with ``n``, so the
  achievable compression ratio is capped (e.g. ~5× on Criteo with dim 16);
* its latency — the periodic sampling/reallocation pass is much more
  expensive than CAFE's O(1) sketch update (Figure 13).

This implementation follows the published description: importance is an
exponentially-decayed running sum of gradient norms, reallocation swaps rows
from the least-important allocated features to unallocated features whose
importance exceeds them by a hysteresis margin, and unallocated features fall
back to a small shared hash table so they still receive *some* signal.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.embeddings.plan import FreeRowPool
from repro.errors import MemoryBudgetError
from repro.nn.init import embedding_uniform
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike, make_rng

UNALLOCATED = np.int64(-1)


class AdaEmbed(TableBackedEmbedding):
    """Adaptive embedding with per-feature importance bookkeeping."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_rows: int,
        shared_rows: int = 1,
        importance_decay: float = 0.99,
        reallocation_interval: int = 100,
        hysteresis: float = 1.25,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 29,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        if not 0.0 < importance_decay <= 1.0:
            raise ValueError(f"importance_decay must be in (0, 1], got {importance_decay}")
        if reallocation_interval <= 0:
            raise ValueError(f"reallocation_interval must be positive, got {reallocation_interval}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be ≥ 1, got {hysteresis}")
        generator = make_rng(rng)
        self.num_rows = int(min(num_rows, num_features))
        self.shared_rows = int(max(shared_rows, 1))
        self.importance_decay = float(importance_decay)
        self.reallocation_interval = int(reallocation_interval)
        self.hysteresis = float(hysteresis)
        self.hash_seed = int(hash_seed)

        # Exclusive rows for allocated features and a small shared fallback.
        self.table = embedding_uniform((self.num_rows, dim), generator, dtype=self.dtype)
        self.shared_table = embedding_uniform((self.shared_rows, dim), generator, dtype=self.dtype)
        self._optimizer = self._new_row_optimizer()
        self._shared_optimizer = self._new_row_optimizer()

        # Per-feature state: importance score and allocated row (or -1).
        self.importance = np.zeros(num_features, dtype=np.float64)
        self.row_of = np.full(num_features, UNALLOCATED, dtype=np.int64)
        self.owner_of = np.full(self.num_rows, UNALLOCATED, dtype=np.int64)
        self._free_rows = FreeRowPool(self.num_rows)
        self.reallocation_count = 0

    # ------------------------------------------------------------------ #
    # Budget-driven construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        importance_decay: float = 0.99,
        reallocation_interval: int = 100,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ) -> "AdaEmbed":
        """Size the row table after reserving one importance float per feature."""
        overhead = budget.num_features  # one score per feature
        if budget.total_floats <= overhead + budget.dim:
            raise MemoryBudgetError(
                f"AdaEmbed stores one importance score per feature ({overhead} floats); "
                f"a budget of {budget.total_floats} floats (CR {budget.compression_ratio:.0f}x) "
                "leaves no room for embedding rows"
            )
        rows = budget.rows(overhead_floats=overhead)
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_rows=rows,
            importance_decay=importance_decay,
            reallocation_interval=reallocation_interval,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Lookup / update
    # ------------------------------------------------------------------ #
    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        rows = self.row_of[flat_ids]
        allocated = rows != UNALLOCATED
        shared_rows = hash_to_range(flat_ids[~allocated], self.shared_rows, seed=self.hash_seed)
        return {"rows": rows, "allocated": allocated, "shared_rows": shared_rows}

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather allocated features from their private rows and the rest from
        the shared fallback table, per the current importance-driven
        allocation.
        """
        ids = self._check_ids(ids)
        plan = self.plan_for(ids)
        rows, allocated = plan.routes["rows"], plan.routes["allocated"]
        out = np.empty((len(plan), self.dim), dtype=self.dtype)
        if allocated.any():
            out[allocated] = self.table[rows[allocated]]
        if (~allocated).any():
            out[~allocated] = self.shared_table[plan.routes["shared_rows"]]
        return out.reshape(plan.ids_shape + (self.dim,))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Update allocated/shared rows, fold gradient norms into the decayed
        importance scores, and run the periodic reallocation pass.
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        plan = self.plan_for(ids)
        flat_ids = plan.flat_ids
        flat_grads = grads.reshape(len(plan), -1)

        # Importance update: decayed running sum of per-lookup gradient norms.
        norms = np.linalg.norm(flat_grads, axis=1)
        unique_ids, inverse = np.unique(flat_ids, return_inverse=True)
        summed_norms = np.zeros(unique_ids.shape[0], dtype=np.float64)
        np.add.at(summed_norms, inverse, norms)
        self.importance *= self.importance_decay
        self.importance[unique_ids] += summed_norms

        # Parameter updates for allocated and shared rows.
        rows, allocated = plan.routes["rows"], plan.routes["allocated"]
        if allocated.any():
            self._optimizer.update(self.table, rows[allocated], flat_grads[allocated])
        if (~allocated).any():
            self._shared_optimizer.update(
                self.shared_table, plan.routes["shared_rows"], flat_grads[~allocated]
            )

        self._step += 1
        if self._step % self.reallocation_interval == 0:
            self._reallocate()

    # ------------------------------------------------------------------ #
    # Reallocation (the "sampling and migration" the paper charges latency to)
    # ------------------------------------------------------------------ #
    def rebalance(self) -> bool:
        """Run one importance-driven reallocation pass immediately.

        The same pass :meth:`apply_gradients` runs every
        ``reallocation_interval`` steps, exposed so a sharded store can fan
        explicit rebalances out across shards.  Invalidates cached routing.
        """
        self._reallocate()
        self.invalidate_plan()
        return True

    def _reallocate(self) -> None:
        """Give rows to the currently most-important features.

        The top-``num_rows`` features by importance deserve rows.  Allocated
        features outside that set are evicted only if an unallocated candidate
        beats them by the hysteresis factor, which avoids thrashing when
        importance scores are noisy.
        """
        top = np.argpartition(self.importance, -self.num_rows)[-self.num_rows :]
        deserving = set(int(f) for f in top if self.importance[f] > 0)
        allocated_features = np.nonzero(self.row_of != UNALLOCATED)[0]

        # Release rows from features that are no longer deserving.
        candidates_out = [int(f) for f in allocated_features if int(f) not in deserving]
        candidates_out.sort(key=lambda f: self.importance[f])
        candidates_in = [f for f in deserving if self.row_of[f] == UNALLOCATED]
        candidates_in.sort(key=lambda f: -self.importance[f])

        for feature_in in candidates_in:
            if self._free_rows:
                row = self._free_rows.pop()
            elif candidates_out:
                weakest = candidates_out[0]
                if self.importance[feature_in] < self.hysteresis * self.importance[weakest]:
                    break
                candidates_out.pop(0)
                row = int(self.row_of[weakest])
                self.row_of[weakest] = UNALLOCATED
                self._optimizer.reset_rows(np.asarray([row]))
            else:
                break
            # Initialize the new row from the shared fallback so training stays smooth.
            shared_row = hash_to_range(np.asarray([feature_in]), self.shared_rows, seed=self.hash_seed)[0]
            self.table[row] = self.shared_table[shared_row]
            self.row_of[feature_in] = row
            self.owner_of[row] = feature_in
            self.reallocation_count += 1
        # Row assignments changed; cached routing plans are stale.
        self.invalidate_plan()

    def num_allocated(self) -> int:
        return int((self.row_of != UNALLOCATED).sum())

    def memory_floats(self) -> int:
        """Private rows + shared table + the per-feature importance array."""
        return int(self.table.size + self.shared_table.size + self.importance.size)

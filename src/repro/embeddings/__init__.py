"""Compressed embedding layers: CAFE, CAFE-ML, and all paper baselines.

Every scheme registers itself in the :mod:`repro.api.registry` backend
capability registry; the factories below resolve names there, so
third-party backends added via :func:`repro.api.registry.register_backend`
work everywhere a built-in name does (uniform stores, sharded stores,
table-group specs, :class:`~repro.api.config.SystemConfig`).
"""

from __future__ import annotations

import numpy as np

from repro.api import registry as _registry
from repro.api.spec import parse_spec
from repro.embeddings.ada_embed import AdaEmbed
from repro.embeddings.base import DEFAULT_DTYPE, CompressedEmbedding, TableBackedEmbedding
from repro.embeddings.cafe import CafeEmbedding
from repro.embeddings.cafe_ml import CafeMultiLevelEmbedding
from repro.embeddings.full import FullEmbedding
from repro.embeddings.hash_embedding import HashEmbedding
from repro.embeddings.memory import (
    MemoryBudget,
    max_compression_ratio_adaembed,
    max_compression_ratio_qr,
)
from repro.embeddings.mde import MixedDimensionEmbedding
from repro.embeddings.offline import OfflineSeparationEmbedding
from repro.embeddings.plan import FreeRowPool, PlanStats, RoutingPlan
from repro.embeddings.qr_embedding import QRTrickEmbedding
from repro.embeddings.quantized import QuantizedEmbedding


def _full_factory(num_features, dim, compression_ratio=1.0, hash_seed=None, **kwargs):
    # A full table ignores the compression ratio by definition, and has no
    # hash routing — a spec's [seed=N] option is legal but a no-op here.
    return FullEmbedding(num_features, dim, **kwargs)


def _budget_factory(cls):
    def factory(num_features, dim, compression_ratio=1.0, **kwargs):
        budget = MemoryBudget.from_compression_ratio(num_features, dim, compression_ratio)
        return cls.from_budget(budget, **kwargs)

    factory.__name__ = f"{cls.__name__}_from_budget"
    return factory


def _register_builtins() -> None:
    # (name, factory, class, capability flags, requires, spec options, blurb)
    builtins = [
        ("full", _full_factory, FullEmbedding,
         dict(supports_state_dict=True), (), ("seed",),
         "uncompressed per-feature table"),
        ("hash", _budget_factory(HashEmbedding), HashEmbedding,
         dict(supports_state_dict=True), (), ("seed",),
         "single hash-shared table"),
        ("qr", _budget_factory(QRTrickEmbedding), QRTrickEmbedding,
         dict(), (), (), "quotient-remainder composed tables"),
        ("adaembed", _budget_factory(AdaEmbed), AdaEmbed,
         dict(supports_rebalance=True), (), ("seed",),
         "importance-based row reassignment"),
        ("mde", _budget_factory(MixedDimensionEmbedding), MixedDimensionEmbedding,
         dict(trainable_projection=True), ("field_cardinalities",), (),
         "per-field mixed dimensions with trained up-projection"),
        ("cafe", _budget_factory(CafeEmbedding), CafeEmbedding,
         dict(supports_rebalance=True, supports_state_dict=True), (), ("seed",),
         "HotSketch-routed hot/cold separation (the paper's method)"),
        ("cafe_ml", _budget_factory(CafeMultiLevelEmbedding), CafeMultiLevelEmbedding,
         dict(supports_rebalance=True, supports_state_dict=True), (), ("seed",),
         "multi-level CAFE (hot / warm / cold tiers)"),
        ("offline", _budget_factory(OfflineSeparationEmbedding), OfflineSeparationEmbedding,
         dict(), ("frequencies",), ("seed",), "oracle frequency-separated baseline"),
    ]
    for name, factory, klass, caps, requires, spec_options, description in builtins:
        _registry.register_backend(
            name,
            factory,
            backend_class=klass,
            requires=requires,
            spec_options=spec_options,
            description=description,
            overwrite=True,
            **caps,
        )


_register_builtins()

#: Canonical built-in method names (registration order).  Third-party
#: backends registered later are visible through
#: :func:`repro.api.registry.backend_names`, not this constant.
METHOD_NAMES = (
    "full",
    "hash",
    "qr",
    "adaembed",
    "mde",
    "cafe",
    "cafe_ml",
    "offline",
)


def create_embedding(
    method: str,
    num_features: int,
    dim: int,
    compression_ratio: float = 1.0,
    field_cardinalities: list[int] | None = None,
    frequencies: np.ndarray | None = None,
    optimizer: str = "sgd",
    learning_rate: float = 0.05,
    dtype: np.dtype | str = DEFAULT_DTYPE,
    rng=None,
    kernels: str | None = None,
    **kwargs,
) -> CompressedEmbedding:
    """Factory building any registered embedding scheme from a compression ratio.

    Parameters
    ----------
    method:
        Any name in :func:`repro.api.registry.backend_names` (the built-ins
        are :data:`METHOD_NAMES`).
    num_features, dim:
        Total categorical feature count and embedding dimension.
    compression_ratio:
        Target ``CR``; the uncompressed memory ``num_features * dim`` is
        divided by this value to obtain the float budget.
    field_cardinalities:
        Required by backends declaring ``requires=("field_cardinalities",)``
        (MDE's per-field dimension rule needs them).
    frequencies:
        Required by backends declaring ``requires=("frequencies",)`` (the
        offline-separation oracle).
    kernels:
        Kernel-backend name for the fused train-step hot path (``"numpy"``,
        ``"numba"``, ``"auto"``, or any name added via
        :func:`repro.kernels.register_kernel_backend`).  Resolved eagerly —
        an unknown or unavailable name raises — then applied to backends
        that run fused kernels (:class:`TableBackedEmbedding` subclasses);
        structurally different backends (QR, MDE) ignore it.
    kwargs:
        Method-specific options forwarded to the backend factory.
    """
    from repro.kernels import resolve_kernel_backend_name

    backend = _registry.get_backend(method)
    side_inputs = {"field_cardinalities": field_cardinalities, "frequencies": frequencies}
    for requirement in backend.requires:
        value = side_inputs.get(requirement, kwargs.get(requirement))
        if value is None:
            raise ValueError(f"{backend.name} requires {requirement}")
        kwargs.setdefault(requirement, value)
    resolved_kernels = None if kernels is None else resolve_kernel_backend_name(kernels)
    embedding = backend.factory(
        num_features=num_features,
        dim=dim,
        compression_ratio=compression_ratio,
        optimizer=optimizer,
        learning_rate=learning_rate,
        dtype=dtype,
        rng=rng,
        **kwargs,
    )
    if resolved_kernels is not None and _registry.supports_kernel_backend(embedding):
        embedding.set_kernel_backend(resolved_kernels)
    return embedding


def create_embedding_store(
    schema,
    spec: str | None = None,
    compression_ratio: float = 1.0,
    num_shards: int = 1,
    executor=None,
    optimizer: str = "sgd",
    learning_rate: float = 0.05,
    dtype: np.dtype | str = DEFAULT_DTYPE,
    seed: int = 0,
    kernels: str | None = None,
    grad_exchange: str = "dense",
    **kwargs,
):
    """Build an embedding *store* for a dataset schema from a spec string.

    ``spec`` is either a plain method name (``"cafe"`` — one uniform table,
    sharded ``num_shards`` ways) or a table-group spec with per-field-class
    backends (``"full:tiny,cafe:tail"`` — parsed once by
    :func:`repro.api.spec.parse_spec`), which builds a heterogeneous
    :class:`~repro.store.table_group.TableGroupStore`.  ``spec=None`` uses
    the schema's attached ``field_configs`` when present, else uniform CAFE.
    ``num_shards`` applies only to the uniform case; sharding a table-group
    store happens *within* a group (the ``[shards=N]`` spec option), so
    combining the two raises.  ``grad_exchange`` selects the sharded store's
    trainer→shard gradient wire format (``"dense"`` or ``"sketched"``, see
    :mod:`repro.store.grad_exchange`) and applies only to the uniform case.
    The store layer is imported lazily to keep ``repro.embeddings`` free of
    a circular dependency on ``repro.store``.
    """
    from repro.store import ShardedEmbeddingStore
    from repro.store.table_group import TableGroupStore

    parsed = parse_spec(spec) if spec is not None else None
    grouped = (parsed is not None and parsed.grouped) or (
        spec is None and getattr(schema, "field_configs", None) is not None
    )
    if grouped:
        if num_shards > 1:
            raise ValueError(
                "num_shards does not apply to a table-group store; shard within a "
                "group via the [shards=N] spec option or FieldConfig.num_shards"
            )
        if grad_exchange != "dense":
            raise ValueError(
                "grad_exchange='sketched' applies to the uniform sharded store; "
                "table-group stores exchange gradients per group (dense only)"
            )
        return TableGroupStore.from_schema(
            schema,
            spec=spec,
            compression_ratio=compression_ratio,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            seed=seed,
            executor=executor,
            kernels=kernels,
            **kwargs,
        )
    entry = parsed.entries[0] if parsed is not None else None
    method = entry.backend if entry is not None else "cafe"
    backend = _registry.get_backend(method)
    if entry is not None and entry.options:
        # A bare "cafe[cr=8,shards=2]" spec configures the uniform store too.
        if "dim" in entry.options:
            raise ValueError(
                "the [dim=N] option needs a table-group store (narrow rows are "
                "projected up per group); give the entry a field class, e.g. "
                f"'{entry.backend}[dim={entry.option_int('dim')}]:all'"
            )
        compression_ratio = float(entry.options.get("cr", compression_ratio))
        num_shards = int(entry.options.get("shards", num_shards))
        if "seed" in entry.options:
            if "seed" not in backend.spec_options:
                raise ValueError(
                    f"backend '{method}' does not route by hash and takes no "
                    "[seed=N] spec option"
                )
            kwargs.setdefault("hash_seed", entry.option_int("seed"))
    if "field_cardinalities" in backend.requires:
        kwargs.setdefault("field_cardinalities", schema.field_cardinalities)
    return ShardedEmbeddingStore.build(
        method,
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        num_shards=num_shards,
        compression_ratio=compression_ratio,
        seed=seed,
        executor=executor,
        optimizer=optimizer,
        learning_rate=learning_rate,
        dtype=dtype,
        kernels=kernels,
        grad_exchange=grad_exchange,
        **kwargs,
    )


__all__ = [
    "CompressedEmbedding",
    "TableBackedEmbedding",
    "FullEmbedding",
    "HashEmbedding",
    "QRTrickEmbedding",
    "AdaEmbed",
    "MixedDimensionEmbedding",
    "CafeEmbedding",
    "CafeMultiLevelEmbedding",
    "OfflineSeparationEmbedding",
    "QuantizedEmbedding",
    "MemoryBudget",
    "max_compression_ratio_qr",
    "max_compression_ratio_adaembed",
    "METHOD_NAMES",
    "create_embedding",
    "create_embedding_store",
]

"""Compressed embedding layers: CAFE, CAFE-ML, and all paper baselines."""

from __future__ import annotations

import numpy as np

from repro.embeddings.ada_embed import AdaEmbed
from repro.embeddings.base import DEFAULT_DTYPE, CompressedEmbedding, TableBackedEmbedding
from repro.embeddings.cafe import CafeEmbedding
from repro.embeddings.cafe_ml import CafeMultiLevelEmbedding
from repro.embeddings.full import FullEmbedding
from repro.embeddings.hash_embedding import HashEmbedding
from repro.embeddings.memory import (
    MemoryBudget,
    max_compression_ratio_adaembed,
    max_compression_ratio_qr,
)
from repro.embeddings.mde import MixedDimensionEmbedding
from repro.embeddings.offline import OfflineSeparationEmbedding
from repro.embeddings.plan import FreeRowPool, PlanStats, RoutingPlan
from repro.embeddings.qr_embedding import QRTrickEmbedding
from repro.embeddings.quantized import QuantizedEmbedding

#: Canonical method names used by experiment configurations and reports.
METHOD_NAMES = (
    "full",
    "hash",
    "qr",
    "adaembed",
    "mde",
    "cafe",
    "cafe_ml",
    "offline",
)


def create_embedding(
    method: str,
    num_features: int,
    dim: int,
    compression_ratio: float = 1.0,
    field_cardinalities: list[int] | None = None,
    frequencies: np.ndarray | None = None,
    optimizer: str = "sgd",
    learning_rate: float = 0.05,
    dtype: np.dtype | str = DEFAULT_DTYPE,
    rng=None,
    **kwargs,
) -> CompressedEmbedding:
    """Factory building any embedding scheme from a compression ratio.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    num_features, dim:
        Total categorical feature count and embedding dimension.
    compression_ratio:
        Target ``CR``; the uncompressed memory ``num_features * dim`` is
        divided by this value to obtain the float budget.
    field_cardinalities:
        Required for ``"mde"`` (its per-field dimension rule needs them).
    frequencies:
        Required for ``"offline"`` (the oracle frequency statistics).
    kwargs:
        Method-specific options forwarded to the constructor / ``from_budget``.
    """
    lowered = method.lower()
    if lowered not in METHOD_NAMES:
        raise ValueError(f"unknown embedding method '{method}'; expected one of {METHOD_NAMES}")
    common = {"optimizer": optimizer, "learning_rate": learning_rate, "dtype": dtype, "rng": rng}
    if lowered == "full":
        return FullEmbedding(num_features, dim, **common)
    budget = MemoryBudget.from_compression_ratio(num_features, dim, compression_ratio)
    if lowered == "hash":
        return HashEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "qr":
        return QRTrickEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "adaembed":
        return AdaEmbed.from_budget(budget, **common, **kwargs)
    if lowered == "mde":
        if field_cardinalities is None:
            raise ValueError("MDE requires field_cardinalities")
        return MixedDimensionEmbedding.from_budget(
            budget, field_cardinalities=field_cardinalities, **common, **kwargs
        )
    if lowered == "cafe":
        return CafeEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "cafe_ml":
        return CafeMultiLevelEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "offline":
        if frequencies is None:
            raise ValueError("offline separation requires frequency statistics")
        return OfflineSeparationEmbedding.from_budget(budget, frequencies=frequencies, **common, **kwargs)
    raise AssertionError("unreachable")  # pragma: no cover


__all__ = [
    "CompressedEmbedding",
    "TableBackedEmbedding",
    "FullEmbedding",
    "HashEmbedding",
    "QRTrickEmbedding",
    "AdaEmbed",
    "MixedDimensionEmbedding",
    "CafeEmbedding",
    "CafeMultiLevelEmbedding",
    "OfflineSeparationEmbedding",
    "QuantizedEmbedding",
    "MemoryBudget",
    "max_compression_ratio_qr",
    "max_compression_ratio_adaembed",
    "METHOD_NAMES",
    "create_embedding",
]

"""Compressed embedding layers: CAFE, CAFE-ML, and all paper baselines."""

from __future__ import annotations

import numpy as np

from repro.embeddings.ada_embed import AdaEmbed
from repro.embeddings.base import DEFAULT_DTYPE, CompressedEmbedding, TableBackedEmbedding
from repro.embeddings.cafe import CafeEmbedding
from repro.embeddings.cafe_ml import CafeMultiLevelEmbedding
from repro.embeddings.full import FullEmbedding
from repro.embeddings.hash_embedding import HashEmbedding
from repro.embeddings.memory import (
    MemoryBudget,
    max_compression_ratio_adaembed,
    max_compression_ratio_qr,
)
from repro.embeddings.mde import MixedDimensionEmbedding
from repro.embeddings.offline import OfflineSeparationEmbedding
from repro.embeddings.plan import FreeRowPool, PlanStats, RoutingPlan
from repro.embeddings.qr_embedding import QRTrickEmbedding
from repro.embeddings.quantized import QuantizedEmbedding

#: Canonical method names used by experiment configurations and reports.
METHOD_NAMES = (
    "full",
    "hash",
    "qr",
    "adaembed",
    "mde",
    "cafe",
    "cafe_ml",
    "offline",
)


def create_embedding(
    method: str,
    num_features: int,
    dim: int,
    compression_ratio: float = 1.0,
    field_cardinalities: list[int] | None = None,
    frequencies: np.ndarray | None = None,
    optimizer: str = "sgd",
    learning_rate: float = 0.05,
    dtype: np.dtype | str = DEFAULT_DTYPE,
    rng=None,
    **kwargs,
) -> CompressedEmbedding:
    """Factory building any embedding scheme from a compression ratio.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    num_features, dim:
        Total categorical feature count and embedding dimension.
    compression_ratio:
        Target ``CR``; the uncompressed memory ``num_features * dim`` is
        divided by this value to obtain the float budget.
    field_cardinalities:
        Required for ``"mde"`` (its per-field dimension rule needs them).
    frequencies:
        Required for ``"offline"`` (the oracle frequency statistics).
    kwargs:
        Method-specific options forwarded to the constructor / ``from_budget``.
    """
    lowered = method.lower()
    if lowered not in METHOD_NAMES:
        raise ValueError(f"unknown embedding method '{method}'; expected one of {METHOD_NAMES}")
    common = {"optimizer": optimizer, "learning_rate": learning_rate, "dtype": dtype, "rng": rng}
    if lowered == "full":
        return FullEmbedding(num_features, dim, **common)
    budget = MemoryBudget.from_compression_ratio(num_features, dim, compression_ratio)
    if lowered == "hash":
        return HashEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "qr":
        return QRTrickEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "adaembed":
        return AdaEmbed.from_budget(budget, **common, **kwargs)
    if lowered == "mde":
        if field_cardinalities is None:
            raise ValueError("MDE requires field_cardinalities")
        return MixedDimensionEmbedding.from_budget(
            budget, field_cardinalities=field_cardinalities, **common, **kwargs
        )
    if lowered == "cafe":
        return CafeEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "cafe_ml":
        return CafeMultiLevelEmbedding.from_budget(budget, **common, **kwargs)
    if lowered == "offline":
        if frequencies is None:
            raise ValueError("offline separation requires frequency statistics")
        return OfflineSeparationEmbedding.from_budget(budget, frequencies=frequencies, **common, **kwargs)
    raise AssertionError("unreachable")  # pragma: no cover


def create_embedding_store(
    schema,
    spec: str | None = None,
    compression_ratio: float = 1.0,
    num_shards: int = 1,
    executor=None,
    optimizer: str = "sgd",
    learning_rate: float = 0.05,
    dtype: np.dtype | str = DEFAULT_DTYPE,
    seed: int = 0,
    **kwargs,
):
    """Build an embedding *store* for a dataset schema from a spec string.

    ``spec`` is either a plain method name (``"cafe"`` — one uniform table,
    sharded ``num_shards`` ways) or a table-group spec with per-field-class
    backends (``"full:tiny,cafe:tail"`` — see :func:`repro.data.schema.
    field_configs_from_spec`), which builds a heterogeneous
    :class:`~repro.store.table_group.TableGroupStore`.  ``spec=None`` uses
    the schema's attached ``field_configs`` when present, else uniform CAFE.
    ``num_shards`` applies only to the uniform case; sharding a table-group
    store happens *within* a group (the ``[shards=N]`` spec option), so
    combining the two raises.  The store layer is imported lazily to keep
    ``repro.embeddings`` free of a circular dependency on ``repro.store``.
    """
    from repro.store import ShardedEmbeddingStore
    from repro.store.table_group import TableGroupStore

    grouped = (spec is not None and ":" in spec) or (
        spec is None and getattr(schema, "field_configs", None) is not None
    )
    if grouped:
        if num_shards > 1:
            raise ValueError(
                "num_shards does not apply to a table-group store; shard within a "
                "group via the [shards=N] spec option or FieldConfig.num_shards"
            )
        return TableGroupStore.from_schema(
            schema,
            spec=spec,
            compression_ratio=compression_ratio,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            seed=seed,
            executor=executor,
            **kwargs,
        )
    method = spec or "cafe"
    if method == "mde":
        kwargs.setdefault("field_cardinalities", schema.field_cardinalities)
    return ShardedEmbeddingStore.build(
        method,
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        num_shards=num_shards,
        compression_ratio=compression_ratio,
        seed=seed,
        executor=executor,
        optimizer=optimizer,
        learning_rate=learning_rate,
        dtype=dtype,
        **kwargs,
    )


__all__ = [
    "CompressedEmbedding",
    "TableBackedEmbedding",
    "FullEmbedding",
    "HashEmbedding",
    "QRTrickEmbedding",
    "AdaEmbed",
    "MixedDimensionEmbedding",
    "CafeEmbedding",
    "CafeMultiLevelEmbedding",
    "OfflineSeparationEmbedding",
    "QuantizedEmbedding",
    "MemoryBudget",
    "max_compression_ratio_qr",
    "max_compression_ratio_adaembed",
    "METHOD_NAMES",
    "create_embedding",
    "create_embedding_store",
]

"""Offline hot/cold separation — the oracle baseline of Figure 14.

This method is given the *exact* feature frequencies ahead of time (a full
pass over the training data), assigns exclusive rows to the most frequent
features and a shared hash table to the rest, and never migrates.  The paper
uses it to show that CAFE's online, sketch-based separation matches an
offline oracle that cannot be deployed in practice (it needs the statistics
pass and cannot adapt during online training).

Following the paper's setup, the exclusive/shared split mirrors CAFE's memory
plan so the comparison is apples-to-apples; the frequency statistics
themselves are *not* charged to the memory budget (they are an offline
artifact), which is exactly the unfair advantage §5.2.6 points out.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.cafe import CafeEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.nn.init import embedding_uniform
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike, make_rng

_NO_ROW = np.int64(-1)


class OfflineSeparationEmbedding(TableBackedEmbedding):
    """Frequency-oracle hot/cold split with no online adaptation."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_hot_rows: int,
        num_shared_rows: int,
        frequencies: np.ndarray,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 101,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (num_features,):
            raise ValueError(
                f"frequencies must have shape ({num_features},), got {frequencies.shape}"
            )
        if num_hot_rows <= 0 or num_shared_rows <= 0:
            raise ValueError("num_hot_rows and num_shared_rows must be positive")
        generator = make_rng(rng)
        self.num_hot_rows = int(min(num_hot_rows, num_features))
        self.num_shared_rows = int(num_shared_rows)
        self.hash_seed = int(hash_seed)

        hot_features = np.argsort(frequencies)[::-1][: self.num_hot_rows]
        self.row_of = np.full(num_features, _NO_ROW, dtype=np.int64)
        self.row_of[hot_features] = np.arange(self.num_hot_rows)

        self.hot_table = embedding_uniform((self.num_hot_rows, dim), generator, dtype=self.dtype)
        self.shared_table = embedding_uniform(
            (self.num_shared_rows, dim), generator, dtype=self.dtype
        )
        self._hot_optimizer = self._new_row_optimizer()
        self._shared_optimizer = self._new_row_optimizer()

    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        frequencies: np.ndarray,
        hot_percentage: float = 0.7,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ) -> "OfflineSeparationEmbedding":
        """Use the same hot/shared split as CAFE for a fair comparison."""
        num_hot, num_shared = CafeEmbedding.plan_budget(budget, hot_percentage)
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_hot_rows=num_hot,
            num_shared_rows=num_shared,
            frequencies=frequencies,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            rng=rng,
        )

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        # The hot/cold split is frozen at construction, so plans never go stale.
        rows = self.row_of[flat_ids]
        hot_mask = rows != _NO_ROW
        shared_rows = hash_to_range(flat_ids[~hot_mask], self.num_shared_rows, seed=self.hash_seed)
        return {"rows": rows, "hot_mask": hot_mask, "shared_rows": shared_rows}

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather hot features (by offline frequency oracle) from private rows
        and cold features from the shared table.
        """
        ids = self._check_ids(ids)
        plan = self.plan_for(ids)
        rows, hot_mask = plan.routes["rows"], plan.routes["hot_mask"]
        out = np.empty((len(plan), self.dim), dtype=self.dtype)
        if hot_mask.any():
            out[hot_mask] = self.hot_table[rows[hot_mask]]
        if (~hot_mask).any():
            out[~hot_mask] = self.shared_table[plan.routes["shared_rows"]]
        return out.reshape(plan.ids_shape + (self.dim,))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Update the private/shared rows under the fixed offline hot/cold
        split; no importance tracking happens online.
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        rows, hot_mask = plan.routes["rows"], plan.routes["hot_mask"]
        if hot_mask.any():
            self._hot_optimizer.update(self.hot_table, rows[hot_mask], flat_grads[hot_mask])
        if (~hot_mask).any():
            self._shared_optimizer.update(
                self.shared_table, plan.routes["shared_rows"], flat_grads[~hot_mask]
            )
        self._step += 1

    def memory_floats(self) -> int:
        # The offline frequency statistics are intentionally *not* counted —
        # that is the advantage the paper's §5.2.6 calls out as impractical.
        return int(self.hot_table.size + self.shared_table.size)

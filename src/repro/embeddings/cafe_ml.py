"""Multi-level CAFE (paper Section 3.4).

Non-hot features are further split by importance into *medium* and *cold*
classes.  Medium features combine two rows from two distinct hash tables
(summation pooling), cold features read a single row from the first table, so
a feature moving between the classes keeps its first-table row and its
representation stays smooth — exactly the behaviour described in the paper.

The secondary table is a third region of the base class's arena; on the fused
path a medium position simply contributes two scatter entries (its primary
shared row and its secondary row), so summation pooling rides the same single
segment-sum + scatter as everything else.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.cafe import SKETCH_ATTRIBUTES_PER_SLOT, CafeEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike


class CafeMultiLevelEmbedding(CafeEmbedding):
    """CAFE with a 2-level hash embedding for the non-hot features."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_hot_rows: int,
        num_shared_rows: int,
        num_secondary_rows: int | None = None,
        medium_fraction: float = 0.2,
        **kwargs,
    ):
        # The secondary region size must be known before the parent
        # constructor lays out the arena.
        if num_secondary_rows is None:
            num_secondary_rows = max(num_shared_rows // 2, 1)
        self.num_secondary_rows = int(num_secondary_rows)
        if not 0.0 < medium_fraction <= 1.0:
            raise ValueError(f"medium_fraction must be in (0, 1], got {medium_fraction}")
        self.medium_fraction = float(medium_fraction)
        super().__init__(
            num_features=num_features,
            dim=dim,
            num_hot_rows=num_hot_rows,
            num_shared_rows=num_shared_rows,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Arena + shared-table hooks
    # ------------------------------------------------------------------ #
    def _arena_regions(self) -> list[tuple[str, int]]:
        return super()._arena_regions() + [("secondary_table", self.num_secondary_rows)]

    def _bind_region_optimizers(self) -> None:
        super()._bind_region_optimizers()
        self._secondary_optimizer = self._region_optimizer("secondary_table")

    @property
    def medium_threshold(self) -> float:
        """Medium features have scores in ``[medium_threshold, hot_threshold)``."""
        return self.hot_threshold * self.medium_fraction

    def _arena_rows_unique(self, uids, hot_u, payloads_u):
        # Medium-class routing needs per-position masks; take the base
        # class's position-level route construction.
        return None

    def _medium_mask(self, flat_ids: np.ndarray) -> np.ndarray:
        scores = self.sketch.query(flat_ids)
        return scores >= self.medium_threshold

    def _shared_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        routes = super()._shared_routes(flat_ids)
        medium = self._medium_mask(flat_ids)
        routes["medium_mask"] = medium
        routes["secondary_rows"] = hash_to_range(
            flat_ids[medium], self.num_secondary_rows, seed=self.hash_seed + 1
        )
        return routes

    def _shared_lookup_routed(self, routes: dict[str, np.ndarray]) -> np.ndarray:
        out = self.shared_table[routes["shared_rows"]].copy()
        medium = routes["medium_mask"]
        if medium.any():
            out[medium] += self.secondary_table[routes["secondary_rows"]]
        return out

    def _shared_update_routed(
        self, routes: dict[str, np.ndarray], grads: np.ndarray, kernels=None
    ) -> None:
        self._shared_optimizer.update(self.shared_table, routes["shared_rows"], grads, kernels)
        medium = routes["medium_mask"]
        if medium.any():
            # Summation pooling: the gradient flows unchanged into both tables.
            self._secondary_optimizer.update(
                self.secondary_table, routes["secondary_rows"], grads[medium], kernels
            )

    def _shared_memory_floats(self) -> int:
        return int(self.shared_table.size + self.secondary_table.size)

    # ------------------------------------------------------------------ #
    # Fused-scatter hooks
    # ------------------------------------------------------------------ #
    def _scatter_entries(
        self, arena_rows: np.ndarray, routes: dict[str, np.ndarray]
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Medium positions scatter into two rows: primary shared + secondary.

        The extra entries reference the same gradient position, so the fused
        segment sum naturally performs the summation-pooling backward pass.
        """
        cold_positions = np.flatnonzero(~routes["hot_mask"])
        medium_positions = cold_positions[routes["medium_mask"]]
        secondary_arena_rows = (
            self._region_offsets["secondary_table"] + routes["secondary_rows"]
        )
        # Stash the resolved extras for the fused lookup's secondary add.
        routes["medium_positions"] = medium_positions
        routes["secondary_arena_rows"] = secondary_arena_rows
        if medium_positions.shape[0] == 0:
            return None, arena_rows
        positions = np.concatenate(
            [np.arange(arena_rows.shape[0], dtype=np.int64), medium_positions]
        )
        rows = np.concatenate([arena_rows, secondary_arena_rows])
        return positions, rows

    def _lookup_fused_extra(self, out: np.ndarray, routes: dict[str, np.ndarray]) -> None:
        medium_positions = routes["medium_positions"]
        if medium_positions.shape[0]:
            out[medium_positions] += self._arena[routes["secondary_arena_rows"]]

    # ------------------------------------------------------------------ #
    # Budget-driven construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        hot_percentage: float = 0.7,
        secondary_share: float = 1.0 / 3.0,
        medium_fraction: float = 0.2,
        slots_per_bucket: int = 4,
        **kwargs,
    ) -> "CafeMultiLevelEmbedding":
        """Split the non-hot budget between the primary and secondary tables."""
        if not 0.0 < secondary_share < 1.0:
            raise ValueError(f"secondary_share must be in (0, 1), got {secondary_share}")
        num_hot, total_shared = CafeEmbedding.plan_budget(budget, hot_percentage, slots_per_bucket)
        num_secondary = max(int(total_shared * secondary_share), 1)
        num_primary = max(total_shared - num_secondary, 1)
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_hot_rows=num_hot,
            num_shared_rows=num_primary,
            num_secondary_rows=num_secondary,
            medium_fraction=medium_fraction,
            slots_per_bucket=slots_per_bucket,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Checkpointing (via the shared-table hooks, so the base class's
    # state_dict/load_state_dict need no knowledge of the extra table)
    # ------------------------------------------------------------------ #
    def _shared_state_dict(self) -> dict[str, np.ndarray]:
        state = super()._shared_state_dict()
        state["secondary_table"] = self.secondary_table.copy()
        return state

    def _load_shared_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super()._load_shared_state_dict(state)
        secondary = np.asarray(state["secondary_table"], dtype=self.dtype)
        if secondary.shape != self.secondary_table.shape:
            raise ValueError(
                f"checkpoint secondary_table shape {secondary.shape} does not match "
                f"{self.secondary_table.shape}"
            )
        self.secondary_table[:] = secondary

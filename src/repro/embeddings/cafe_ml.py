"""Multi-level CAFE (paper Section 3.4).

Non-hot features are further split by importance into *medium* and *cold*
classes.  Medium features combine two rows from two distinct hash tables
(summation pooling), cold features read a single row from the first table, so
a feature moving between the classes keeps its first-table row and its
representation stays smooth — exactly the behaviour described in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.cafe import SKETCH_ATTRIBUTES_PER_SLOT, CafeEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.nn.init import embedding_uniform
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike


class CafeMultiLevelEmbedding(CafeEmbedding):
    """CAFE with a 2-level hash embedding for the non-hot features."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_hot_rows: int,
        num_shared_rows: int,
        num_secondary_rows: int | None = None,
        medium_fraction: float = 0.2,
        **kwargs,
    ):
        # The secondary table size must be known before the parent constructor
        # calls ``_init_shared_tables``.
        if num_secondary_rows is None:
            num_secondary_rows = max(num_shared_rows // 2, 1)
        self.num_secondary_rows = int(num_secondary_rows)
        if not 0.0 < medium_fraction <= 1.0:
            raise ValueError(f"medium_fraction must be in (0, 1], got {medium_fraction}")
        self.medium_fraction = float(medium_fraction)
        super().__init__(
            num_features=num_features,
            dim=dim,
            num_hot_rows=num_hot_rows,
            num_shared_rows=num_shared_rows,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Shared-table hooks
    # ------------------------------------------------------------------ #
    def _init_shared_tables(self, rng: np.random.Generator) -> None:
        super()._init_shared_tables(rng)
        self.secondary_table = embedding_uniform(
            (self.num_secondary_rows, self.dim), rng, dtype=self.dtype
        )
        self._secondary_optimizer = self._new_row_optimizer()

    @property
    def medium_threshold(self) -> float:
        """Medium features have scores in ``[medium_threshold, hot_threshold)``."""
        return self.hot_threshold * self.medium_fraction

    def _medium_mask(self, flat_ids: np.ndarray) -> np.ndarray:
        scores = self.sketch.query(flat_ids)
        return scores >= self.medium_threshold

    def _shared_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        routes = super()._shared_routes(flat_ids)
        medium = self._medium_mask(flat_ids)
        routes["medium_mask"] = medium
        routes["secondary_rows"] = hash_to_range(
            flat_ids[medium], self.num_secondary_rows, seed=self.hash_seed + 1
        )
        return routes

    def _shared_lookup_routed(self, routes: dict[str, np.ndarray]) -> np.ndarray:
        out = self.shared_table[routes["shared_rows"]].copy()
        medium = routes["medium_mask"]
        if medium.any():
            out[medium] += self.secondary_table[routes["secondary_rows"]]
        return out

    def _shared_update_routed(self, routes: dict[str, np.ndarray], grads: np.ndarray) -> None:
        self._shared_optimizer.update(self.shared_table, routes["shared_rows"], grads)
        medium = routes["medium_mask"]
        if medium.any():
            # Summation pooling: the gradient flows unchanged into both tables.
            self._secondary_optimizer.update(
                self.secondary_table, routes["secondary_rows"], grads[medium]
            )

    def _shared_memory_floats(self) -> int:
        return int(self.shared_table.size + self.secondary_table.size)

    # ------------------------------------------------------------------ #
    # Budget-driven construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        hot_percentage: float = 0.7,
        secondary_share: float = 1.0 / 3.0,
        medium_fraction: float = 0.2,
        slots_per_bucket: int = 4,
        **kwargs,
    ) -> "CafeMultiLevelEmbedding":
        """Split the non-hot budget between the primary and secondary tables."""
        if not 0.0 < secondary_share < 1.0:
            raise ValueError(f"secondary_share must be in (0, 1), got {secondary_share}")
        num_hot, total_shared = CafeEmbedding.plan_budget(budget, hot_percentage, slots_per_bucket)
        num_secondary = max(int(total_shared * secondary_share), 1)
        num_primary = max(total_shared - num_secondary, 1)
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_hot_rows=num_hot,
            num_shared_rows=num_primary,
            num_secondary_rows=num_secondary,
            medium_fraction=medium_fraction,
            slots_per_bucket=slots_per_bucket,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Checkpointing (via the shared-table hooks, so the base class's
    # state_dict/load_state_dict need no knowledge of the extra table)
    # ------------------------------------------------------------------ #
    def _shared_state_dict(self) -> dict[str, np.ndarray]:
        state = super()._shared_state_dict()
        state["secondary_table"] = self.secondary_table.copy()
        return state

    def _load_shared_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super()._load_shared_state_dict(state)
        self.secondary_table = np.asarray(state["secondary_table"], dtype=self.dtype).copy()

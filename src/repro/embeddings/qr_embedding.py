"""Quotient-Remainder trick (Shi et al., KDD 2020) — compositional embeddings.

Each feature id is decomposed into a quotient and a remainder with respect to
a modulus close to sqrt(n); the final embedding combines one row from a
"quotient" table and one from a "remainder" table.  Collisions only occur
when *both* components collide, which greatly reduces the effective collision
rate compared to the single-hash baseline, at the cost of a hard floor on the
memory: the two complementary tables must jointly cover the id space, which
is why the paper reports Q-R can only reach roughly 500× compression on
Criteo (§5.2.1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.errors import MemoryBudgetError
from repro.nn.init import embedding_uniform
from repro.utils.rng import SeedLike, make_rng

_VALID_OPERATIONS = ("add", "multiply", "concat")


class QRTrickEmbedding(TableBackedEmbedding):
    """Compositional embedding with complementary quotient/remainder tables."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_remainder_rows: int,
        operation: str = "add",
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        if operation not in _VALID_OPERATIONS:
            raise ValueError(f"operation must be one of {_VALID_OPERATIONS}, got '{operation}'")
        if num_remainder_rows <= 0:
            raise ValueError(f"num_remainder_rows must be positive, got {num_remainder_rows}")
        generator = make_rng(rng)
        self.operation = operation
        self.num_remainder_rows = int(min(num_remainder_rows, num_features))
        self.num_quotient_rows = int(math.ceil(num_features / self.num_remainder_rows))
        row_dim = dim // 2 if operation == "concat" else dim
        if operation == "concat" and dim % 2 != 0:
            raise ValueError("concat operation requires an even embedding dimension")
        self.row_dim = row_dim
        self.quotient_table = embedding_uniform(
            (self.num_quotient_rows, row_dim), generator, dtype=self.dtype
        )
        self.remainder_table = embedding_uniform(
            (self.num_remainder_rows, row_dim), generator, dtype=self.dtype
        )
        self._quotient_optimizer = self._new_row_optimizer()
        self._remainder_optimizer = self._new_row_optimizer()

    # ------------------------------------------------------------------ #
    # Construction from a budget
    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        operation: str = "add",
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ) -> "QRTrickEmbedding":
        """Pick the remainder-table size so both tables fit in ``budget``.

        The total rows ``r + ceil(n / r)`` is minimized at ``r = sqrt(n)``;
        if even that minimum exceeds the budget the method structurally
        cannot reach the requested compression ratio.
        """
        n, dim = budget.num_features, budget.dim
        row_dim = dim // 2 if operation == "concat" else dim
        max_rows = budget.total_floats // row_dim
        best_r = None
        sqrt_n = int(math.isqrt(n))
        min_total = 2 * math.ceil(math.sqrt(n))
        if min_total > max_rows:
            raise MemoryBudgetError(
                f"Q-R trick needs at least {min_total * row_dim} floats for {n} features "
                f"but the budget is {budget.total_floats} (CR {budget.compression_ratio:.0f}x)"
            )
        # The largest r with r + ceil(n/r) <= max_rows gives the lowest collision
        # rate, so search outward from sqrt(n) upward.
        for r in range(max(sqrt_n, 1), max_rows + 1):
            if r + math.ceil(n / r) <= max_rows:
                best_r = r
            else:
                if best_r is not None:
                    break
        if best_r is None:
            # Fall back to the memory-minimizing split.
            best_r = max(sqrt_n, 1)
        return cls(
            num_features=n,
            dim=dim,
            num_remainder_rows=best_r,
            operation=operation,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Lookup / update
    # ------------------------------------------------------------------ #
    def _decompose(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        remainder = ids % self.num_remainder_rows
        quotient = ids // self.num_remainder_rows
        return quotient, remainder

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        quotient, remainder = self._decompose(flat_ids)
        return {"quotient": quotient, "remainder": remainder}

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Compose each embedding as quotient-table row + remainder-table row
        (the Q-R trick), so distinct ids rarely share the full sum.
        """
        ids = self._check_ids(ids)
        plan = self.plan_for(ids)
        q_vec = self.quotient_table[plan.routes["quotient"]]
        r_vec = self.remainder_table[plan.routes["remainder"]]
        if self.operation == "add":
            out = q_vec + r_vec
        elif self.operation == "multiply":
            out = q_vec * r_vec
        else:
            out = np.concatenate([q_vec, r_vec], axis=-1)
        return out.reshape(plan.ids_shape + (self.dim,))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Scatter each per-lookup gradient into both the quotient and the
        remainder row of the id.
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        quotient, remainder = plan.routes["quotient"], plan.routes["remainder"]
        if self.operation == "add":
            q_grads = flat_grads
            r_grads = flat_grads
        elif self.operation == "multiply":
            q_grads = flat_grads * self.remainder_table[remainder]
            r_grads = flat_grads * self.quotient_table[quotient]
        else:  # concat
            q_grads = flat_grads[:, : self.row_dim]
            r_grads = flat_grads[:, self.row_dim :]
        self._quotient_optimizer.update(self.quotient_table, quotient, q_grads)
        self._remainder_optimizer.update(self.remainder_table, remainder, r_grads)
        self._step += 1

    def memory_floats(self) -> int:
        """Quotient plus remainder tables; no auxiliary structures."""
        return int(self.quotient_table.size + self.remainder_table.size)

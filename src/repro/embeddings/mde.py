"""Mixed-Dimension Embeddings (Ginart et al., 2021) — column compression.

MDE keeps one row per feature but shrinks the *width* of each field's table
according to a popularity-based rule, then projects each narrow embedding up
to the common dimension with a trainable per-field matrix.  The paper uses it
as the representative column-compression comparator (Figure 12) and notes two
consequences that this implementation reproduces:

* the compression ratio is bounded by the original dimension (every feature
  needs at least one column), and
* at large compression ratios the low-rank projection loses semantic
  information, degrading accuracy faster than row compression.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.errors import MemoryBudgetError
from repro.nn.init import embedding_uniform, xavier_uniform
from repro.utils.rng import SeedLike, make_rng


class MixedDimensionEmbedding(TableBackedEmbedding):
    """Per-field narrow embeddings with learned projections to a common dim.

    Parameters
    ----------
    field_cardinalities:
        Number of unique features per field; features are addressed by global
        id (field offsets applied by the caller) exactly like the row-
        compression methods, so MDE is a drop-in replacement in the models.
    temperature:
        The MDE popularity exponent α: fields with larger cardinality get
        proportionally fewer columns (``d_f ∝ card_f^{-α}``).  The original
        paper derives the rule from frequency; like the CAFE paper notes, the
        public implementation uses field cardinality as the proxy.
    """

    def __init__(
        self,
        field_cardinalities: list[int],
        dim: int,
        field_dims: list[int],
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        num_features = int(sum(field_cardinalities))
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        if len(field_dims) != len(field_cardinalities):
            raise ValueError("field_dims and field_cardinalities must have the same length")
        if any(d <= 0 for d in field_dims):
            raise ValueError("every field dimension must be positive")
        if any(d > dim for d in field_dims):
            raise ValueError("field dimensions cannot exceed the output dimension")
        generator = make_rng(rng)
        self.field_cardinalities = [int(c) for c in field_cardinalities]
        self.field_dims = [int(d) for d in field_dims]
        self.field_offsets = np.concatenate([[0], np.cumsum(self.field_cardinalities)]).astype(np.int64)

        self.tables = [
            embedding_uniform((card, fdim), generator, dtype=self.dtype)
            for card, fdim in zip(self.field_cardinalities, self.field_dims)
        ]
        # Identity-like projection when the field already has full width.
        self.projections = [
            np.eye(dim, dtype=self.dtype)
            if fdim == dim
            else xavier_uniform((fdim, dim), generator, dtype=self.dtype)
            for fdim in self.field_dims
        ]
        self._table_optimizers = [self._new_row_optimizer() for _ in self.tables]
        self.projection_lr = self.learning_rate * 0.1

    # ------------------------------------------------------------------ #
    # Budget-driven construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        field_cardinalities: list[int],
        temperature: float = 0.3,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ) -> "MixedDimensionEmbedding":
        """Choose per-field dimensions so the total memory fits ``budget``.

        Field widths follow the MDE popularity rule ``d_f ∝ card_f^{-α}`` and
        are then uniformly scaled (and clipped to ≥ 1) until rows plus
        projection matrices fit the budget.
        """
        n = sum(field_cardinalities)
        if n != budget.num_features:
            raise ValueError("field cardinalities do not sum to the budgeted feature count")
        dim = budget.dim
        cards = np.asarray(field_cardinalities, dtype=np.float64)
        base = (cards / cards.min()) ** (-temperature)

        def total_memory(scale: float) -> tuple[int, list[int]]:
            dims = np.maximum(1, np.floor(scale * base * dim)).astype(int)
            dims = np.minimum(dims, dim)
            rows = int((cards * dims).sum())
            proj = int(sum(d * dim for d in dims if d != dim))
            return rows + proj, dims.tolist()

        minimum, _ = total_memory(scale=1.0 / dim)  # every field at width 1
        if minimum > budget.total_floats:
            raise MemoryBudgetError(
                f"MDE needs at least one column per feature ({minimum} floats) but the budget "
                f"is {budget.total_floats} (CR {budget.compression_ratio:.0f}x)"
            )
        # Binary search the largest scale that fits.
        low, high = 1.0 / dim, 1.0
        best_dims = None
        for _ in range(40):
            mid = (low + high) / 2
            memory, dims = total_memory(mid)
            if memory <= budget.total_floats:
                best_dims = dims
                low = mid
            else:
                high = mid
        if best_dims is None:
            _, best_dims = total_memory(1.0 / dim)
        return cls(
            field_cardinalities=list(field_cardinalities),
            dim=dim,
            field_dims=best_dims,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Lookup / update
    # ------------------------------------------------------------------ #
    def _split_by_field(self, flat_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map global ids to (field index, local id)."""
        fields = np.searchsorted(self.field_offsets, flat_ids, side="right") - 1
        local = flat_ids - self.field_offsets[fields]
        return fields, local

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        fields, local = self._split_by_field(flat_ids)
        return {"fields": fields, "local": local, "present_fields": np.unique(fields)}

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather from the owning field's reduced-dimension table and project
        up to ``dim`` with the field's projection matrix.
        """
        ids = self._check_ids(ids)
        plan = self.plan_for(ids)
        fields, local = plan.routes["fields"], plan.routes["local"]
        out = np.empty((len(plan), self.dim), dtype=self.dtype)
        for field_index in plan.routes["present_fields"]:
            mask = fields == field_index
            rows = self.tables[field_index][local[mask]]
            out[mask] = rows @ self.projections[field_index]
        return out.reshape(plan.ids_shape + (self.dim,))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Back-project each gradient through the field's projection matrix and
        scatter it into the field's reduced-dimension table (the projection
        matrices themselves also receive gradients).
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        fields, local = plan.routes["fields"], plan.routes["local"]
        for field_index in plan.routes["present_fields"]:
            mask = fields == field_index
            table = self.tables[field_index]
            projection = self.projections[field_index]
            rows_idx = local[mask]
            grad_out = flat_grads[mask]
            rows = table[rows_idx]
            # Backprop through "row @ projection".
            grad_rows = grad_out @ projection.T
            grad_projection = rows.T @ grad_out
            self._table_optimizers[field_index].update(table, rows_idx, grad_rows)
            if self.field_dims[field_index] != self.dim:
                projection -= self.projection_lr * grad_projection
        self._step += 1

    def memory_floats(self) -> int:
        """Per-field reduced tables plus their projection matrices."""
        rows = sum(table.size for table in self.tables)
        proj = sum(
            proj.size for proj, fdim in zip(self.projections, self.field_dims) if fdim != self.dim
        )
        return int(rows + proj)

"""Common interface for (compressed) embedding layers.

The models in :mod:`repro.models` treat the embedding layer as an opaque
component with two operations:

* :meth:`CompressedEmbedding.lookup` maps a batch of global feature ids of
  shape ``(batch, fields)`` to embedding vectors ``(batch, fields, dim)``;
* :meth:`CompressedEmbedding.apply_gradients` receives the gradient of the
  loss with respect to those looked-up vectors (same shape) and performs the
  sparse parameter update.

Keeping the embedding storage outside the autograd graph mirrors how large
DLRM systems separate the "sparse" and "dense" optimizers, and it is exactly
the hook CAFE needs: the per-lookup gradient norms are the importance scores
fed into HotSketch (paper §3.1).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.plan import PlanStats, RoutingPlan
from repro.nn.optim import RowOptimizer, make_row_optimizer

#: Table storage dtype used unless a layer opts out.  The paper's memory
#: accounting is in float32-equivalent slots, so float32 storage makes the
#: real memory footprint match the reported one; ``float64`` remains an
#: opt-in for precision-sensitive repro runs.
DEFAULT_DTYPE = np.float32


class CompressedEmbedding:
    """Abstract base class for all embedding schemes in this library."""

    def __init__(self, num_features: int, dim: int, dtype: np.dtype | str = DEFAULT_DTYPE):
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.num_features = int(num_features)
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError(f"dtype must be a float type, got {self.dtype}")
        self._step = 0
        self._cached_plan: RoutingPlan | None = None
        self._routing_version = 0
        self.plan_stats = PlanStats()

    # ------------------------------------------------------------------ #
    # Required interface
    # ------------------------------------------------------------------ #
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Return embeddings for a batch of global feature ids.

        ``ids`` may have any shape; every value must lie in
        ``[0, num_features)``.  The output has shape ``ids.shape + (dim,)``
        and dtype :attr:`dtype`.  Looking up the same id twice in one batch
        returns the same vector twice.  ``lookup`` never mutates parameters,
        but it *does* build and cache the batch's routing plan, so a
        training step should call ``lookup`` before ``apply_gradients`` to
        get the hash/locate pass for free on the update half.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Apply per-lookup gradients; the layer's only mutating operation.

        ``grads`` must have shape ``ids.shape + (dim,)`` — the gradient of
        the loss with respect to each vector the preceding :meth:`lookup`
        returned.  Duplicate ids accumulate (their gradients sum into the
        same row).  Adaptive schemes also fold per-lookup gradient norms
        into their importance statistics here (CAFE's HotSketch insert), so
        the call can move features between representations as a side effect.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def rebalance(self) -> bool:
        """Force one adaptivity pass (row migration), if the scheme has one.

        Adaptive schemes run this periodically from inside
        :meth:`apply_gradients`; exposing it lets a sharded store fan an
        explicit rebalance out across shards on its own schedule.  Returns
        ``True`` if the layer performed (or supports) rebalancing, ``False``
        for static schemes where the call is a no-op.
        """
        return False

    def memory_floats(self) -> int:
        """Total memory footprint in float32-equivalent parameters.

        Includes every auxiliary structure (hash index tables, importance
        arrays, sketches) per the paper's fairness rule in §5.1.4.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------ #
    # Routing plans
    # ------------------------------------------------------------------ #
    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Backend-specific routing arrays for a flat id batch.

        Subclasses that participate in plan caching override this with the
        hashing/locating work that would otherwise run twice per step.
        """
        return {}

    def _routing_token(self) -> object:
        """Identity of the routing-relevant state a cached plan depends on.

        Backends whose routing changes as they train (sketch insertions,
        row migration) bump :attr:`_routing_version` on every such mutation;
        backends with richer invalidation needs can override this.
        """
        return self._routing_version

    def invalidate_plan(self) -> None:
        """Force the next :meth:`plan_for` call to rebuild the routing."""
        self._routing_version += 1
        self._cached_plan = None

    def plan_for(self, ids: np.ndarray) -> RoutingPlan:
        """Return the routing plan for ``ids``, reusing the cached one.

        ``lookup`` builds the plan, ``apply_gradients`` receives the same id
        batch an instant later and gets a cache hit, so the hash + locate
        pass runs once per training step.
        """
        token = self._routing_token()
        cached = self._cached_plan
        if cached is not None and cached.matches(ids, token):
            self.plan_stats.hits += 1
            return cached
        self.plan_stats.misses += 1
        flat_ids = ids.reshape(-1)
        plan = RoutingPlan(
            flat_ids=flat_ids.copy(),
            ids_shape=ids.shape,
            routes=self._build_routes(flat_ids),
            token=token,
        )
        self._cached_plan = plan
        return plan

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def step(self) -> int:
        """Number of gradient applications performed so far."""
        return self._step

    def compression_ratio(self) -> float:
        """Achieved compression ratio versus an uncompressed table."""
        return (self.num_features * self.dim) / max(self.memory_floats(), 1)

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_features):
            raise ValueError(
                f"feature ids must lie in [0, {self.num_features}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        return ids

    def _check_grads(self, ids: np.ndarray, grads: np.ndarray) -> np.ndarray:
        grads = np.asarray(grads)
        if grads.dtype != self.dtype:
            grads = grads.astype(self.dtype)
        expected = ids.shape + (self.dim,)
        if grads.shape != expected:
            raise ValueError(f"gradient shape {grads.shape} does not match {expected}")
        return grads

    @staticmethod
    def _flatten(ids: np.ndarray, grads: np.ndarray | None = None):
        flat_ids = ids.reshape(-1)
        if grads is None:
            return flat_ids, None
        return flat_ids, grads.reshape(flat_ids.shape[0], -1)

    def describe(self) -> dict[str, float | int | str]:
        """Human-readable summary used by experiment reports."""
        return {
            "method": type(self).__name__,
            "num_features": self.num_features,
            "dim": self.dim,
            "dtype": str(self.dtype),
            "memory_floats": self.memory_floats(),
            "compression_ratio": round(self.compression_ratio(), 2),
        }

    # ------------------------------------------------------------------ #
    # Delta-serving protocol (replicated serving tier)
    # ------------------------------------------------------------------ #
    def serving_state(self) -> dict[str, np.ndarray] | None:
        """Arrays that fully determine :meth:`lookup` output, or ``None``.

        The delta-snapshot publisher (:mod:`repro.serving.delta`) ships only
        the rows of these arrays that changed between two store snapshots.
        A backend may participate only if its lookup is a pure function of
        the returned arrays plus *static* configuration (hash seeds, table
        shapes): hash and full embeddings qualify; adaptive schemes whose
        routing itself trains (CAFE's sketch decides which table answers an
        id) must return ``None`` — the publisher then ships the whole shard
        on change, which is always correct.  Optimizer state is deliberately
        not part of serving state: replicas serve, they do not train.
        """
        return None

    def adopt_serving_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Re-point lookup storage at replica-owned arrays.

        ``arrays`` uses the keys of :meth:`serving_state`.  Called on a
        replica-side shard copy during delta cutover; must leave routing
        valid (the arrays have identical shapes, only values differ).
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares no serving state (serving_state() "
            "returned None), cannot adopt arrays"
        )

    # ------------------------------------------------------------------ #
    # Shared-memory buffer protocol (process shard runtime)
    # ------------------------------------------------------------------ #
    def shared_buffers(self) -> dict[str, np.ndarray]:
        """Arrays eligible to live in a shared-memory generation.

        The process shard runtime keeps these arrays in a
        ``multiprocessing.shared_memory`` segment so sealing a snapshot is a
        single ``memcpy`` instead of a pickle round-trip.  Returning ``{}``
        (the default) opts the backend out: it still works under the process
        executor, but snapshots fall back to pickling the whole backend over
        the control pipe.  Backends that return a *subset* of their arrays
        remain correct — anything not listed here is carried by value at
        seal time.
        """
        return {}

    def adopt_shared_buffers(self, buffers: dict[str, np.ndarray]) -> None:
        """Re-point internal storage at externally managed arrays.

        ``buffers`` uses the same keys as :meth:`shared_buffers`.  Routing
        plans stay valid (routes are row indices, independent of the table's
        storage identity), so this must not invalidate the plan cache.
        """
        if buffers:  # pragma: no cover - defensive
            raise NotImplementedError(
                f"{type(self).__name__} declares no shared buffers, cannot adopt "
                f"{sorted(buffers)}"
            )


class TableBackedEmbedding(CompressedEmbedding):
    """Convenience base for schemes storing one or more dense row tables.

    Table-backed schemes own the fused train-step machinery: a named kernel
    backend (see :mod:`repro.kernels`) supplies the segment-sum and
    fused-scatter primitives, and :attr:`fused` switches between the fused
    single-scatter ``apply_gradients`` path and the unfused per-table
    reference path (both routed through the same kernels, so they are
    bit-exact with each other).
    """

    #: Whether ``apply_gradients`` takes the fused single-scatter path.
    fused = True

    def __init__(
        self,
        num_features: int,
        dim: int,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
    ):
        super().__init__(num_features, dim, dtype=dtype)
        self.optimizer_name = optimizer
        self.learning_rate = float(learning_rate)
        self.kernel_backend = "numpy"
        self._kernel_instance = None

    def _new_row_optimizer(self) -> RowOptimizer:
        return make_row_optimizer(self.optimizer_name, self.learning_rate)

    # ------------------------------------------------------------------ #
    # Kernel backend selection
    # ------------------------------------------------------------------ #
    def set_kernel_backend(self, name: str) -> str:
        """Select the kernel backend by name; returns the resolved name.

        ``"auto"`` resolves eagerly to the fastest available backend so the
        choice is recorded (and errors surface) at configuration time, not
        mid-training.
        """
        from repro.kernels import get_kernel_backend, resolve_kernel_backend_name

        resolved = resolve_kernel_backend_name(name)
        self.kernel_backend = resolved
        self._kernel_instance = get_kernel_backend(resolved)
        return resolved

    def _kernels(self):
        """The selected kernel backend instance (lazily bound)."""
        if self._kernel_instance is None:
            from repro.kernels import get_kernel_backend

            self._kernel_instance = get_kernel_backend(self.kernel_backend)
        return self._kernel_instance

    def __getstate__(self):
        # Kernel backend instances may hold unpicklable compiled functions;
        # ship the name and rebind lazily on the other side.
        state = self.__dict__.copy()
        state["_kernel_instance"] = None
        return state

    def fused_apply(self, table: np.ndarray, optimizer: RowOptimizer, scatter, flat_grads: np.ndarray) -> None:
        """One fused segment-sum + optimizer scatter into ``table``.

        ``scatter`` is a :class:`~repro.embeddings.plan.ScatterPlan` whose
        ``rows`` index ``table``; ``flat_grads`` is the full ``(n, dim)``
        per-position gradient matrix the scatter's ``perm`` refers to.
        """
        kernels = self._kernels()
        summed = kernels.segment_sum(flat_grads, scatter.perm, scatter.starts)
        optimizer.fused_apply(table, scatter.rows, summed, kernels)

    def shared_buffers(self) -> dict[str, np.ndarray]:
        """The single row table plus the optimizer's per-row state.

        Applies to subclasses storing exactly one dense table as
        ``self.table`` (hash and full embeddings); multi-table schemes fall
        through to the empty default and use the pickle seal path.
        """
        table = getattr(self, "table", None)
        if not isinstance(table, np.ndarray):
            return {}
        buffers: dict[str, np.ndarray] = {"table": table}
        optimizer = getattr(self, "_optimizer", None)
        if optimizer is not None:
            for key, array in optimizer.shared_buffers(table).items():
                buffers[f"optimizer.{key}"] = array
        return buffers

    def adopt_shared_buffers(self, buffers: dict[str, np.ndarray]) -> None:
        if "table" in buffers:
            self.table = buffers["table"]
        optimizer = getattr(self, "_optimizer", None)
        if optimizer is not None:
            optimizer_buffers = {
                key.split(".", 1)[1]: array
                for key, array in buffers.items()
                if key.startswith("optimizer.")
            }
            if optimizer_buffers:
                optimizer.adopt_shared_buffers(optimizer_buffers)

    # ------------------------------------------------------------------ #
    # Optimizer state in checkpoints
    # ------------------------------------------------------------------ #
    def optimizer_memory_floats(self) -> int:
        """State scalars the row optimizer currently holds (0 if stateless)."""
        optimizer = getattr(self, "_optimizer", None)
        return 0 if optimizer is None else int(optimizer.memory_floats())

    def _optimizer_state_entries(self) -> dict[str, np.ndarray]:
        """Row-optimizer state under ``optimizer.``-prefixed keys.

        Backends merge these into their ``state_dict`` so restoring a
        checkpoint resumes with the same effective per-row learning rates
        (exact accumulators or sketch counters alike).
        """
        optimizer = getattr(self, "_optimizer", None)
        if optimizer is None:
            return {}
        return {
            f"optimizer.{key}": array for key, array in optimizer.state_dict().items()
        }

    def _load_optimizer_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore the ``optimizer.``-prefixed entries of ``state`` (if any).

        Tolerates their absence so checkpoints written before optimizer
        state was serialized keep loading (the optimizer simply restarts
        cold, the pre-existing behaviour).
        """
        optimizer = getattr(self, "_optimizer", None)
        if optimizer is None:
            return
        entries = {
            key.split(".", 1)[1]: array
            for key, array in state.items()
            if key.startswith("optimizer.")
        }
        if entries:
            optimizer.load_state_dict(entries)

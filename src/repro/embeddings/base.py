"""Common interface for (compressed) embedding layers.

The models in :mod:`repro.models` treat the embedding layer as an opaque
component with two operations:

* :meth:`CompressedEmbedding.lookup` maps a batch of global feature ids of
  shape ``(batch, fields)`` to embedding vectors ``(batch, fields, dim)``;
* :meth:`CompressedEmbedding.apply_gradients` receives the gradient of the
  loss with respect to those looked-up vectors (same shape) and performs the
  sparse parameter update.

Keeping the embedding storage outside the autograd graph mirrors how large
DLRM systems separate the "sparse" and "dense" optimizers, and it is exactly
the hook CAFE needs: the per-lookup gradient norms are the importance scores
fed into HotSketch (paper §3.1).
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim import RowOptimizer, make_row_optimizer


class CompressedEmbedding:
    """Abstract base class for all embedding schemes in this library."""

    def __init__(self, num_features: int, dim: int):
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.num_features = int(num_features)
        self.dim = int(dim)
        self._step = 0

    # ------------------------------------------------------------------ #
    # Required interface
    # ------------------------------------------------------------------ #
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Return embeddings for global feature ids of shape ``(..., )``.

        The output shape is ``ids.shape + (dim,)``.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Update parameters given per-lookup gradients.

        ``grads`` must have shape ``ids.shape + (dim,)``.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def memory_floats(self) -> int:
        """Total memory footprint in float32-equivalent parameters.

        Includes every auxiliary structure (hash index tables, importance
        arrays, sketches) per the paper's fairness rule in §5.1.4.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def step(self) -> int:
        """Number of gradient applications performed so far."""
        return self._step

    def compression_ratio(self) -> float:
        """Achieved compression ratio versus an uncompressed table."""
        return (self.num_features * self.dim) / max(self.memory_floats(), 1)

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_features):
            raise ValueError(
                f"feature ids must lie in [0, {self.num_features}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        return ids

    def _check_grads(self, ids: np.ndarray, grads: np.ndarray) -> np.ndarray:
        grads = np.asarray(grads, dtype=np.float64)
        expected = ids.shape + (self.dim,)
        if grads.shape != expected:
            raise ValueError(f"gradient shape {grads.shape} does not match {expected}")
        return grads

    @staticmethod
    def _flatten(ids: np.ndarray, grads: np.ndarray | None = None):
        flat_ids = ids.reshape(-1)
        if grads is None:
            return flat_ids, None
        return flat_ids, grads.reshape(flat_ids.shape[0], -1)

    def describe(self) -> dict[str, float | int | str]:
        """Human-readable summary used by experiment reports."""
        return {
            "method": type(self).__name__,
            "num_features": self.num_features,
            "dim": self.dim,
            "memory_floats": self.memory_floats(),
            "compression_ratio": round(self.compression_ratio(), 2),
        }


class TableBackedEmbedding(CompressedEmbedding):
    """Convenience base for schemes storing one or more dense row tables."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
    ):
        super().__init__(num_features, dim)
        self.optimizer_name = optimizer
        self.learning_rate = float(learning_rate)

    def _new_row_optimizer(self) -> RowOptimizer:
        return make_row_optimizer(self.optimizer_name, self.learning_rate)

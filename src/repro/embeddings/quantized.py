"""Quantized embedding wrapper — the simplest column-compression family.

The paper's related-work section (§6.1) classifies quantization as column
compression with a *fixed* compression ratio determined by the data type
(e.g. INT8 is 4× vs FLOAT32, INT4 is 8×), and notes that it is orthogonal to
row compression and can be combined with it.  This wrapper implements that:
it decorates any row-compression scheme (Full, Hash, CAFE, ...) and stores a
quantized *serving copy* of the looked-up vectors, modelling
quantization-aware serving:

* training updates flow to the underlying (full-precision) scheme unchanged;
* lookups return values round-tripped through ``bits``-bit affine
  quantization, so the model always sees what a quantized deployment would
  serve;
* the reported memory is the wrapped scheme's memory divided by the type
  ratio, plus the per-row scale/offset parameters.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, CompressedEmbedding

_SUPPORTED_BITS = (4, 8, 16)


class QuantizedEmbedding(CompressedEmbedding):
    """Affine (scale + zero-point) fake-quantization around any embedding."""

    def __init__(self, base: CompressedEmbedding, bits: int = 8):
        if bits not in _SUPPORTED_BITS:
            raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
        super().__init__(base.num_features, base.dim, dtype=getattr(base, "dtype", DEFAULT_DTYPE))
        self.base = base
        self.bits = int(bits)
        self.levels = 2**self.bits - 1

    # ------------------------------------------------------------------ #
    # Quantization round trip
    # ------------------------------------------------------------------ #
    def _fake_quantize(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize/dequantize per looked-up vector (row-wise affine)."""
        flat = vectors.reshape(-1, self.dim)
        low = flat.min(axis=1, keepdims=True)
        high = flat.max(axis=1, keepdims=True)
        scale = np.where(high > low, (high - low) / self.levels, 1.0)
        quantized = np.round((flat - low) / scale)
        restored = quantized * scale + low
        return restored.reshape(vectors.shape)

    # ------------------------------------------------------------------ #
    # CompressedEmbedding interface
    # ------------------------------------------------------------------ #
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Serve the base layer's vectors fake-quantized to the configured bit
        width (what a quantized serving copy would return).
        """
        return self._fake_quantize(self.base.lookup(ids))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        # Straight-through estimator: gradients pass to the full-precision store.
        self.base.apply_gradients(ids, grads)
        self._step += 1

    def memory_floats(self) -> int:
        """Serving memory: quantized payload + one scale and offset per row.

        The underlying full-precision tables exist only at training time (the
        same assumption the paper makes when it says quantization has a fixed
        compression ratio given by the data type).
        """
        type_ratio = 32 // self.bits
        base_floats = self.base.memory_floats()
        per_row_overhead = 2 * (base_floats // max(self.dim, 1))
        return max(base_floats // type_ratio + per_row_overhead, 1)

    def describe(self) -> dict[str, float | int | str]:
        info = super().describe()
        info["base_method"] = type(self.base).__name__
        info["bits"] = self.bits
        return info

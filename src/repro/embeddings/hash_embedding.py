"""Hash-trick embedding (Weinberger et al., 2009) — the simplest baseline.

All features are mapped by one hash function into a table with fewer rows
than features; collisions make unrelated features share (and jointly update)
the same embedding vector, which is the source of the accuracy loss the paper
quantifies (§1.2, "Hash-based methods").
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.embeddings.plan import ScatterPlan
from repro.nn.init import embedding_uniform
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike, make_rng


class HashEmbedding(TableBackedEmbedding):
    """Single-hash shared embedding table."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_rows: int,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 17,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        generator = make_rng(rng)
        self.num_rows = int(min(num_rows, num_features))
        self.hash_seed = int(hash_seed)
        self.table = embedding_uniform((self.num_rows, dim), generator, dtype=self.dtype)
        self._optimizer = self._new_row_optimizer()

    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 17,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ) -> "HashEmbedding":
        """Size the table so that its memory fits ``budget`` exactly."""
        rows = budget.rows()
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_rows=rows,
            optimizer=optimizer,
            learning_rate=learning_rate,
            hash_seed=hash_seed,
            dtype=dtype,
            rng=rng,
        )

    def _rows_for(self, ids: np.ndarray) -> np.ndarray:
        return hash_to_range(ids, self.num_rows, seed=self.hash_seed)

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        rows = self._rows_for(flat_ids)
        return {"rows": rows, "scatter": ScatterPlan.from_rows(rows)}

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather each id's single hashed row from the shared table (hash-trick:
        colliding features share one row verbatim); see the base contract.
        """
        ids = self._check_ids(ids)
        plan = self.plan_for(ids)
        return self.table[plan.routes["rows"]].reshape(plan.ids_shape + (self.dim,))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Scatter per-lookup gradients into the hashed rows; colliding
        features accumulate into the same shared row.
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        if self.fused:
            self.fused_apply(self.table, self._optimizer, plan.routes["scatter"], flat_grads)
        else:
            self._optimizer.update(self.table, plan.routes["rows"], flat_grads, self._kernels())
        self._step += 1

    def memory_floats(self) -> int:
        """One ``num_rows x dim`` table; no auxiliary structures."""
        return int(self.table.size)

    def serving_state(self) -> dict[str, np.ndarray]:
        """Lookup is the hashed-row gather: the table alone determines it
        (the hash seed is static configuration), so delta publishes can
        ship changed table rows only.
        """
        return {"table": self.table}

    def adopt_serving_state(self, arrays: dict[str, np.ndarray]) -> None:
        self.table = arrays["table"]

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {
            "table": self.table.copy(),
            "hash_seed": np.asarray(self.hash_seed),
            "step": np.asarray(self._step),
        }
        state.update(self._optimizer_state_entries())
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        table = np.asarray(state["table"], dtype=self.dtype)
        if table.shape != self.table.shape:
            raise ValueError(
                f"checkpoint table shape {table.shape} does not match {self.table.shape}"
            )
        if int(state["hash_seed"]) != self.hash_seed:
            raise ValueError(
                f"checkpoint hash_seed {int(state['hash_seed'])} does not match "
                f"{self.hash_seed}; rows would route differently"
            )
        self.table = table.copy()
        self._step = int(state["step"])
        self._load_optimizer_state(state)
        self.invalidate_plan()

"""Hash-trick embedding (Weinberger et al., 2009) — the simplest baseline.

All features are mapped by one hash function into a table with fewer rows
than features; collisions make unrelated features share (and jointly update)
the same embedding vector, which is the source of the accuracy loss the paper
quantifies (§1.2, "Hash-based methods").
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import TableBackedEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.nn.init import embedding_uniform
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike, make_rng


class HashEmbedding(TableBackedEmbedding):
    """Single-hash shared embedding table."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_rows: int,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 17,
        rng: SeedLike = None,
    ):
        super().__init__(num_features, dim, optimizer=optimizer, learning_rate=learning_rate)
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        generator = make_rng(rng)
        self.num_rows = int(min(num_rows, num_features))
        self.hash_seed = int(hash_seed)
        self.table = embedding_uniform((self.num_rows, dim), generator)
        self._optimizer = self._new_row_optimizer()

    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 17,
        rng: SeedLike = None,
    ) -> "HashEmbedding":
        """Size the table so that its memory fits ``budget`` exactly."""
        rows = budget.rows()
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_rows=rows,
            optimizer=optimizer,
            learning_rate=learning_rate,
            hash_seed=hash_seed,
            rng=rng,
        )

    def _rows_for(self, ids: np.ndarray) -> np.ndarray:
        return hash_to_range(ids, self.num_rows, seed=self.hash_seed)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        return self.table[self._rows_for(ids)]

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        flat_ids, flat_grads = self._flatten(ids, grads)
        rows = self._rows_for(flat_ids)
        self._optimizer.update(self.table, rows, flat_grads)
        self._step += 1

    def memory_floats(self) -> int:
        return int(self.table.size)

"""Uncompressed embedding table — the "ideal" upper baseline in the paper."""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.plan import ScatterPlan
from repro.nn.init import embedding_uniform
from repro.utils.rng import SeedLike, make_rng


class FullEmbedding(TableBackedEmbedding):
    """One exclusive embedding row per feature (no compression).

    Ids map to rows directly, so there is no hashing to cache in a routing
    plan — lookup and update both index the table with the raw ids.
    """

    def __init__(
        self,
        num_features: int,
        dim: int,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        generator = make_rng(rng)
        self.table = embedding_uniform((num_features, dim), generator, dtype=self.dtype)
        self._optimizer = self._new_row_optimizer()

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        # Ids are rows, so the only cacheable routing work is the scatter.
        return {"scatter": ScatterPlan.from_rows(flat_ids)}

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather the id's own row: one uncompressed row per feature."""
        ids = self._check_ids(ids)
        # Build (or reuse) the plan here so apply_gradients consumes the
        # scatter prepared by the forward pass instead of re-sorting.
        self.plan_for(ids)
        return self.table[ids]

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Scatter gradients into each id's private row (duplicates accumulate)."""
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        flat_ids, flat_grads = self._flatten(ids, grads)
        if self.fused:
            plan = self.plan_for(ids)
            self.fused_apply(self.table, self._optimizer, plan.routes["scatter"], flat_grads)
        else:
            self._optimizer.update(self.table, flat_ids, flat_grads, self._kernels())
        self._step += 1

    def memory_floats(self) -> int:
        """The full ``num_features x dim`` table."""
        return int(self.table.size)

    def serving_state(self) -> dict[str, np.ndarray]:
        """Ids index the table directly, so the table alone determines
        lookups and delta publishes can ship changed rows only.
        """
        return {"table": self.table}

    def adopt_serving_state(self, arrays: dict[str, np.ndarray]) -> None:
        self.table = arrays["table"]

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {"table": self.table.copy(), "step": np.asarray(self._step)}
        state.update(self._optimizer_state_entries())
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        table = np.asarray(state["table"], dtype=self.dtype)
        if table.shape != self.table.shape:
            raise ValueError(
                f"checkpoint table shape {table.shape} does not match {self.table.shape}"
            )
        self.table = table.copy()
        self._step = int(state["step"])
        self._load_optimizer_state(state)
        self.invalidate_plan()

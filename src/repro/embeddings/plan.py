"""Routing plans: the hashing/locating work of one embedding batch, made explicit.

Every embedding backend maps a batch of feature ids to storage locations —
hash-table rows, quotient/remainder pairs, sketch slots, exclusive-row
pointers.  The seed implementation recomputed that mapping twice per training
step (once in ``lookup``, once in ``apply_gradients``).  A
:class:`RoutingPlan` captures the mapping once; the layer caches the plan for
the most recent batch and ``apply_gradients`` consumes it, so the SplitMix64
hashing and slot location run once per step — the same
precompute-the-buckets idiom used by tensorized count-sketch implementations.

Plans are invalidated by a *routing token*: any mutation that can change how
ids route (sketch insertion, migration, row reallocation, checkpoint load)
bumps the owning layer's token, and a cached plan is only reused while its
token matches.  Stateless backends (hash, Q-R, MDE) never bump the token, so
their plans stay valid for repeated batches.

The module also provides :class:`FreeRowPool`, an array-backed free-list for
exclusive embedding rows that supports batched claim/release without
Python-level per-row iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.ops import segment_boundaries, stable_order


@dataclass
class ScatterPlan:
    """Fully-resolved scatter of one batch's gradients into table rows.

    Built once per routing plan and consumed by the fused
    ``apply_gradients`` path: a segment sum over ``perm``/``starts``
    collapses the per-lookup gradients into one summed row per unique
    destination, and a single scatter applies them to ``rows``.

    Attributes
    ----------
    perm:
        ``(n,)`` int64 permutation of gradient positions, ordered so every
        destination row's contributions are adjacent.  Within a segment the
        order is batch order, which is what makes the fused segment sum
        bit-exact with the unfused per-table update.
    starts:
        ``(k,)`` int64 first position of each segment in ``perm``.
    rows:
        ``(k,)`` int64 unique destination row per segment, parallel to
        ``starts``.
    """

    perm: np.ndarray
    starts: np.ndarray
    rows: np.ndarray

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @classmethod
    def from_rows(cls, rows_per_position: np.ndarray) -> "ScatterPlan":
        """Build the scatter for one destination row per gradient position.

        Handles the degenerate cases the fused path must survive: an empty
        batch (empty scatter), duplicate ids (positions collapse into one
        segment, batch order preserved), and an all-miss batch where the
        caller pre-filtered every position away.
        """
        rows_per_position = np.asarray(rows_per_position, dtype=np.int64).reshape(-1)
        perm = stable_order(rows_per_position)
        rows, starts = segment_boundaries(rows_per_position[perm])
        return cls(perm=perm, starts=starts, rows=rows)


@dataclass
class RoutingPlan:
    """Precomputed routing of one batch of feature ids.

    Attributes
    ----------
    flat_ids:
        The flattened ``(n,)`` int64 feature ids the plan was built for.
    ids_shape:
        Original shape of the batch (lookup reshapes its output to
        ``ids_shape + (dim,)``).
    routes:
        Backend-specific arrays — e.g. ``{"rows": ...}`` for a hash table,
        ``{"hot_mask": ..., "payloads": ..., "shared_rows": ...}`` for CAFE,
        plus a fully-resolved ``"scatter"`` :class:`ScatterPlan` on fused
        backends.
    token:
        Value of the owning layer's routing token when the plan was built.
    """

    flat_ids: np.ndarray
    ids_shape: tuple[int, ...]
    routes: dict[str, np.ndarray] = field(default_factory=dict)
    token: object = None

    def __len__(self) -> int:
        return int(self.flat_ids.shape[0])

    def matches(self, ids: np.ndarray, token: object) -> bool:
        """True when the plan routes exactly this batch under this token."""
        return (
            self.token == token
            and self.ids_shape == ids.shape
            and self.flat_ids.shape[0] == ids.size
            and np.array_equal(self.flat_ids, ids.reshape(-1))
        )


@dataclass
class PlanStats:
    """Cache behaviour of a layer's routing-plan reuse."""

    hits: int = 0
    misses: int = 0

    @property
    def reuse_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {"hits": self.hits, "misses": self.misses, "reuse_rate": round(self.reuse_rate, 4)}


class FreeRowPool:
    """Array-backed LIFO pool of free exclusive-row indices.

    Mirrors the subset of the ``list`` API the embedding layers and their
    tests rely on (``len``, ``pop``, ``append``, ``remove``, truthiness,
    iteration) while supporting batched :meth:`claim` and :meth:`release`
    with no per-row Python loop.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: np.ndarray | int | None = None):
        if rows is None:
            rows = np.empty(0, dtype=np.int64)
        elif isinstance(rows, (int, np.integer)):
            rows = np.arange(int(rows), dtype=np.int64)
        self._rows = np.asarray(rows, dtype=np.int64).reshape(-1).copy()

    # ------------------------------------------------------------------ #
    # Batched operations (the hot path)
    # ------------------------------------------------------------------ #
    def claim(self, count: int) -> np.ndarray:
        """Remove and return up to ``count`` rows (LIFO order, like pop)."""
        count = min(int(count), self._rows.shape[0])
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        claimed = self._rows[-count:][::-1].copy()
        self._rows = self._rows[:-count]
        return claimed

    def release(self, rows: np.ndarray) -> int:
        """Return valid (non-negative) rows to the pool; reports how many."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        valid = rows[rows >= 0]
        if valid.size:
            self._rows = np.concatenate([self._rows, valid])
        return int(valid.size)

    def to_array(self) -> np.ndarray:
        return self._rows.copy()

    # ------------------------------------------------------------------ #
    # list-compatible API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._rows.shape[0])

    def __bool__(self) -> bool:
        return self._rows.shape[0] > 0

    def __iter__(self):
        return iter(self._rows.tolist())

    def __contains__(self, row: int) -> bool:
        return bool(np.any(self._rows == int(row)))

    def pop(self) -> int:
        if not self._rows.shape[0]:
            raise IndexError("pop from empty FreeRowPool")
        row = int(self._rows[-1])
        self._rows = self._rows[:-1]
        return row

    def append(self, row: int) -> None:
        self._rows = np.concatenate([self._rows, np.asarray([row], dtype=np.int64)])

    def remove(self, row: int) -> None:
        matches = np.nonzero(self._rows == int(row))[0]
        if matches.size == 0:
            raise ValueError(f"row {row} not in free pool")
        self._rows = np.delete(self._rows, matches[0])

    def assert_consistent(self, num_rows: int) -> None:
        """Invariant check: free rows are unique and within ``[0, num_rows)``."""
        if self._rows.size != np.unique(self._rows).size:
            raise AssertionError("free pool contains duplicate rows (double free)")
        if self._rows.size and (self._rows.min() < 0 or self._rows.max() >= num_rows):
            raise AssertionError("free pool contains out-of-range rows")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FreeRowPool(size={len(self)})"

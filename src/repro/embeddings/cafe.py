"""CAFE: the Compact, Adaptive and Fast embedding layer (paper Section 3).

The layer combines three pieces:

* a :class:`~repro.sketch.hotsketch.HotSketch` that accumulates per-feature
  importance scores (L2 norms of the per-lookup gradients) and stores, for
  each currently-hot feature, a pointer to its exclusive embedding row;
* an *exclusive* table with one row per hot feature;
* a *shared* hash table for the long tail of non-hot features.

Migration (§3.3): when a non-hot feature's score crosses the hot threshold
and a free exclusive row exists, the row is initialized from the feature's
current shared embedding and the pointer is written into the sketch slot.
When a hot feature's score falls below the threshold (through decay) or its
slot is evicted by SpaceSaving replacement, the exclusive row is released and
the feature falls back to the shared table.

The hot threshold can be a fixed value (as in the paper's sensitivity study,
Figure 15b) or adaptive: the adaptive controller nudges the threshold so that
the exclusive table stays saturated, which is what the paper describes as the
threshold being "meticulously set, allowing HotSketch to always saturate with
hot features".
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.embeddings.plan import FreeRowPool
from repro.nn.init import embedding_uniform
from repro.sketch.hotsketch import NO_PAYLOAD, HotSketch
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike, make_rng

# Memory cost of the sketch per hot feature: ``slots_per_bucket`` slots of 3
# attributes each (key, score, pointer), as used in the paper's §5.3 memory
# split ("the ratio of memory usage between HotSketch and d dimension
# exclusive embeddings is 12 : d" with 4 slots per bucket).
SKETCH_ATTRIBUTES_PER_SLOT = 3


class CafeEmbedding(TableBackedEmbedding):
    """Hot/cold separated embedding driven by HotSketch."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_hot_rows: int,
        num_shared_rows: int,
        hot_threshold: float | None = None,
        initial_threshold: float = 1.0,
        slots_per_bucket: int = 4,
        decay: float = 0.98,
        decay_interval: int = 200,
        rebalance_interval: int = 20,
        hysteresis: float = 1.1,
        use_frequency: bool = False,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 101,
        sketch_seed: int = 7,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        if num_hot_rows <= 0:
            raise ValueError(f"num_hot_rows must be positive, got {num_hot_rows}")
        if num_shared_rows <= 0:
            raise ValueError(f"num_shared_rows must be positive, got {num_shared_rows}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be ≥ 1, got {hysteresis}")
        generator = make_rng(rng)

        self.num_hot_rows = int(num_hot_rows)
        self.num_shared_rows = int(num_shared_rows)
        self.adaptive_threshold = hot_threshold is None
        self.hot_threshold = float(initial_threshold if hot_threshold is None else hot_threshold)
        self.slots_per_bucket = int(slots_per_bucket)
        self.decay = float(decay)
        self.decay_interval = int(decay_interval)
        self.rebalance_interval = int(rebalance_interval)
        self.hysteresis = float(hysteresis)
        self.use_frequency = bool(use_frequency)
        self.hash_seed = int(hash_seed)

        self.sketch = HotSketch(
            num_buckets=self.num_hot_rows,
            slots_per_bucket=self.slots_per_bucket,
            hot_threshold=self.hot_threshold,
            decay=self.decay,
            seed=sketch_seed,
        )
        self.hot_table = embedding_uniform((self.num_hot_rows, dim), generator, dtype=self.dtype)
        self._hot_optimizer = self._new_row_optimizer()
        self._free_rows = FreeRowPool(self.num_hot_rows)
        self.migrations_in = 0
        self.migrations_out = 0

        self._init_shared_tables(generator)

    # ------------------------------------------------------------------ #
    # Shared-table hooks (overridden by the multi-level variant)
    # ------------------------------------------------------------------ #
    def _init_shared_tables(self, rng: np.random.Generator) -> None:
        self.shared_table = embedding_uniform((self.num_shared_rows, self.dim), rng, dtype=self.dtype)
        self._shared_optimizer = self._new_row_optimizer()

    def _shared_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Routing of non-hot ids through the shared table(s)."""
        return {"shared_rows": hash_to_range(flat_ids, self.num_shared_rows, seed=self.hash_seed)}

    def _shared_lookup_routed(self, routes: dict[str, np.ndarray]) -> np.ndarray:
        return self.shared_table[routes["shared_rows"]]

    def _shared_update_routed(self, routes: dict[str, np.ndarray], grads: np.ndarray) -> None:
        self._shared_optimizer.update(self.shared_table, routes["shared_rows"], grads)

    def _shared_lookup(self, flat_ids: np.ndarray) -> np.ndarray:
        return self._shared_lookup_routed(self._shared_routes(flat_ids))

    def _shared_update(self, flat_ids: np.ndarray, grads: np.ndarray) -> None:
        self._shared_update_routed(self._shared_routes(flat_ids), grads)

    def _shared_memory_floats(self) -> int:
        return int(self.shared_table.size)

    def _shared_state_dict(self) -> dict[str, np.ndarray]:
        return {"shared_table": self.shared_table.copy()}

    def _load_shared_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.shared_table = np.asarray(state["shared_table"], dtype=self.dtype).copy()

    # ------------------------------------------------------------------ #
    # Budget-driven construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        hot_percentage: float = 0.7,
        hot_threshold: float | None = None,
        slots_per_bucket: int = 4,
        decay: float = 0.98,
        decay_interval: int = 1000,
        use_frequency: bool = False,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        rng: SeedLike = None,
        **kwargs,
    ) -> "CafeEmbedding":
        """Split ``budget`` between sketch + exclusive rows and the shared table.

        ``hot_percentage`` is the fraction of the budget spent on the sketch
        plus the exclusive table (the paper's "hot percentage", §5.3, best at
        around 0.7); the rest goes to the shared hash table.
        """
        num_hot, num_shared = cls.plan_budget(budget, hot_percentage, slots_per_bucket)
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_hot_rows=num_hot,
            num_shared_rows=num_shared,
            hot_threshold=hot_threshold,
            slots_per_bucket=slots_per_bucket,
            decay=decay,
            decay_interval=decay_interval,
            use_frequency=use_frequency,
            optimizer=optimizer,
            learning_rate=learning_rate,
            rng=rng,
            **kwargs,
        )

    @staticmethod
    def plan_budget(
        budget: MemoryBudget, hot_percentage: float, slots_per_bucket: int = 4
    ) -> tuple[int, int]:
        """Return ``(num_hot_rows, num_shared_rows)`` for the given split."""
        if not 0.0 < hot_percentage <= 1.0:
            raise ValueError(f"hot_percentage must be in (0, 1], got {hot_percentage}")
        sketch_cost = slots_per_bucket * SKETCH_ATTRIBUTES_PER_SLOT  # floats per hot row
        hot_budget = hot_percentage * budget.total_floats
        num_hot = max(int(hot_budget // (sketch_cost + budget.dim)), 1)
        used_by_hot = num_hot * (sketch_cost + budget.dim)
        remaining = max(budget.total_floats - used_by_hot, 0)
        num_shared = max(int(remaining // budget.dim), 1)
        return num_hot, min(num_shared, budget.num_features)

    # ------------------------------------------------------------------ #
    # Routing plan (shared by lookup and apply_gradients)
    # ------------------------------------------------------------------ #
    def _routing_token(self) -> object:
        # Any sketch insertion can move a feature between the hot and shared
        # paths, so the cached plan is tied to the insertion count as well as
        # to explicit invalidation (migration, checkpoint load).
        return (self._routing_version, self.sketch.total_insertions)

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        payloads = self.sketch.get_payloads(flat_ids)
        hot_mask = payloads != NO_PAYLOAD
        routes = {"payloads": payloads, "hot_mask": hot_mask}
        routes.update(self._shared_routes(flat_ids[~hot_mask]))
        return routes

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather hot features (sketch payload points at an exclusive row) from
        the hot table and the rest from the shared hashed table, per the
        cached routing plan (paper Fig. 4 serving path).
        """
        ids = self._check_ids(ids)
        plan = self.plan_for(ids)
        routes = plan.routes
        hot_mask = routes["hot_mask"]
        out = np.empty((len(plan), self.dim), dtype=self.dtype)
        if hot_mask.any():
            out[hot_mask] = self.hot_table[routes["payloads"][hot_mask]]
        if (~hot_mask).any():
            out[~hot_mask] = self._shared_lookup_routed(routes)
        return out.reshape(plan.ids_shape + (self.dim,))

    # ------------------------------------------------------------------ #
    # Gradient application + sketch maintenance
    # ------------------------------------------------------------------ #
    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Update hot/shared rows, feed gradient norms into HotSketch, and run
        the periodic decay / threshold / migration passes (paper §3).
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        # The plan built by the forward pass is reused here (cache hit), so
        # the bucket hash + slot locate run once per training step.
        plan = self.plan_for(ids)
        flat_ids = plan.flat_ids
        flat_grads = grads.reshape(len(plan), -1)

        # 1. Parameter update using the assignment that produced the forward pass.
        routes = plan.routes
        hot_mask = routes["hot_mask"]
        if hot_mask.any():
            self._hot_optimizer.update(
                self.hot_table, routes["payloads"][hot_mask], flat_grads[hot_mask]
            )
        if (~hot_mask).any():
            self._shared_update_routed(routes, flat_grads[~hot_mask])

        # 2. Importance scores: gradient norms (or raw frequency for the ablation).
        if self.use_frequency:
            scores = np.ones(flat_ids.shape[0], dtype=np.float64)
        else:
            scores = np.linalg.norm(flat_grads, axis=1)

        # 3. Sketch insertion; SpaceSaving replacement may evict hot features.
        evictions = self.sketch.insert(flat_ids, scores)
        if len(evictions):
            self._release_rows(evictions.payloads)

        # 4. Periodic decay, threshold adaptation and migration.
        self._step += 1
        if self.decay < 1.0 and self._step % self.decay_interval == 0:
            self.sketch.apply_decay()
        if self._step % self.rebalance_interval == 0 or self._step == 1:
            if self.adaptive_threshold:
                self._update_threshold()
            self._rebalance()
        self.invalidate_plan()

    # ------------------------------------------------------------------ #
    # Migration machinery (§3.3)
    # ------------------------------------------------------------------ #
    def rebalance(self) -> bool:
        """Run one threshold-adaptation + migration pass immediately.

        The same pass :meth:`apply_gradients` runs every
        ``rebalance_interval`` steps, exposed so a sharded store can fan
        explicit rebalances out across shards on its own schedule.  Safe to
        call at any point between training steps; invalidates any cached
        routing plan.
        """
        if self.adaptive_threshold:
            self._update_threshold()
        self._rebalance()
        self.invalidate_plan()
        return True

    def _release_rows(self, rows: np.ndarray) -> None:
        self.migrations_out += self._free_rows.release(rows)

    def _update_threshold(self) -> None:
        """Track the score of the ``num_hot_rows``-th hottest recorded feature.

        The paper sets a threshold "meticulously ... allowing HotSketch to
        always saturate with hot features"; tracking the k-th largest recorded
        score (k = number of exclusive rows) keeps exactly that property while
        following distribution changes automatically.
        """
        occupied = self.sketch.keys != -1
        scores = self.sketch.scores[occupied]
        if scores.size == 0:
            return
        k = min(self.num_hot_rows, scores.size)
        kth = float(np.partition(scores, -k)[-k])
        if kth > 0:
            self.hot_threshold = kth
            self.sketch.hot_threshold = kth

    def _rebalance(self) -> None:
        """Migrate features across the hot/non-hot boundary (both directions).

        Demotion and promotion use a hysteresis band around the threshold so
        features sitting exactly at the boundary do not thrash between the
        exclusive and shared tables on every call.
        """
        keys = self.sketch.keys
        scores = self.sketch.scores
        payloads = self.sketch.payloads
        occupied = keys != -1

        # Hot -> non-hot: the slot's score fell below the demotion band
        # (after decay or because other features overtook it).
        demote_mask = occupied & (payloads != NO_PAYLOAD) & (scores < self.hot_threshold / self.hysteresis)
        if demote_mask.any():
            released = payloads[demote_mask]
            self.sketch.payloads[demote_mask] = NO_PAYLOAD
            self._release_rows(released)

        if not self._free_rows:
            return

        # Non-hot -> hot: promote the highest-scoring candidates above the
        # threshold into the free rows (demotion uses the lower edge of the
        # hysteresis band, so borderline features do not bounce).  All
        # promotions of one rebalance happen as a single batched
        # shared-lookup + one reset_rows call.
        promote_mask = occupied & (payloads == NO_PAYLOAD) & (scores >= self.hot_threshold)
        if not promote_mask.any():
            return
        buckets, slots = np.nonzero(promote_mask)
        order = np.argsort(scores[buckets, slots], kind="stable")[::-1]
        rows = self._free_rows.claim(order.size)
        if rows.size == 0:
            return
        chosen = order[: rows.size]
        buckets, slots = buckets[chosen], slots[chosen]
        features = keys[buckets, slots]
        self.sketch.payloads[buckets, slots] = rows
        # Initialize from the shared embeddings so training stays smooth.
        self.hot_table[rows] = self._shared_lookup(features)
        self._hot_optimizer.reset_rows(rows)
        self.migrations_in += int(rows.size)
        self.invalidate_plan()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def hot_occupancy(self) -> float:
        """Fraction of exclusive rows currently assigned to a hot feature."""
        return 1.0 - len(self._free_rows) / self.num_hot_rows

    def num_hot_features(self) -> int:
        return self.num_hot_rows - len(self._free_rows)

    def check_row_invariants(self) -> None:
        """Assert free rows + sketch-assigned rows exactly partition the hot table.

        Used by tests to prove rows are never leaked (lost from both sides)
        or double-assigned (present in the pool *and* a sketch slot) across
        insert/evict/rebalance cycles.
        """
        self._free_rows.assert_consistent(self.num_hot_rows)
        assigned = self.sketch.payloads[self.sketch.payloads != NO_PAYLOAD]
        if assigned.size != np.unique(assigned).size:
            raise AssertionError("two sketch slots point at the same exclusive row")
        combined = np.concatenate([assigned, self._free_rows.to_array()])
        if combined.size != self.num_hot_rows or np.unique(combined).size != self.num_hot_rows:
            raise AssertionError("exclusive rows leaked or double-assigned")

    def memory_floats(self) -> int:
        """Hot table + shared table(s) + the HotSketch slots (§5.1.4 fairness)."""
        return int(self.hot_table.size + self._shared_memory_floats() + self.sketch.memory_floats())

    # ------------------------------------------------------------------ #
    # Checkpointing (paper §4, "Fault Tolerance")
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {
            "hot_table": self.hot_table.copy(),
            "free_rows": self._free_rows.to_array(),
            "hot_threshold": np.asarray(self.hot_threshold),
            "step": np.asarray(self._step),
        }
        # Shared-table storage goes through the hook so subclasses with more
        # tables (e.g. the multi-level variant) checkpoint them too.
        state.update(self._shared_state_dict())
        for key, value in self.sketch.state_dict().items():
            state[f"sketch.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.hot_table = np.asarray(state["hot_table"], dtype=self.dtype).copy()
        self._load_shared_state_dict(state)
        self._free_rows = FreeRowPool(np.asarray(state["free_rows"], dtype=np.int64))
        self.hot_threshold = float(state["hot_threshold"])
        self._step = int(state["step"])
        sketch_state = {
            key.split(".", 1)[1]: value for key, value in state.items() if key.startswith("sketch.")
        }
        self.sketch.load_state_dict(sketch_state)
        self.sketch.hot_threshold = self.hot_threshold
        self.invalidate_plan()

"""CAFE: the Compact, Adaptive and Fast embedding layer (paper Section 3).

The layer combines three pieces:

* a :class:`~repro.sketch.hotsketch.HotSketch` that accumulates per-feature
  importance scores (L2 norms of the per-lookup gradients) and stores, for
  each currently-hot feature, a pointer to its exclusive embedding row;
* an *exclusive* table with one row per hot feature;
* a *shared* hash table for the long tail of non-hot features.

Migration (§3.3): when a non-hot feature's score crosses the hot threshold
and a free exclusive row exists, the row is initialized from the feature's
current shared embedding and the pointer is written into the sketch slot.
When a hot feature's score falls below the threshold (through decay) or its
slot is evicted by SpaceSaving replacement, the exclusive row is released and
the feature falls back to the shared table.

The hot threshold can be a fixed value (as in the paper's sensitivity study,
Figure 15b) or adaptive: the adaptive controller nudges the threshold so that
the exclusive table stays saturated, which is what the paper describes as the
threshold being "meticulously set, allowing HotSketch to always saturate with
hot features".

Storage layout: all region tables (``hot_table``, ``shared_table``, and any
subclass extras) are contiguous row-range *views* into one arena matrix.
That turns the train-step hot path into single fused passes — lookup is one
arena gather, and ``apply_gradients`` is one segment-sum + one optimizer
scatter over arena row indices resolved at plan-build time — while every
region keeps its familiar per-table identity for tests, checkpoints and the
unfused reference path.  The fused and unfused paths share the same kernel
backend and the same per-row optimizer state (region optimizers view into
the arena optimizer's state), so they are bit-exact with each other.
"""

from __future__ import annotations

import time

import numpy as np

from repro.embeddings.base import DEFAULT_DTYPE, TableBackedEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.embeddings.plan import FreeRowPool, ScatterPlan
from repro.kernels.ops import stable_order
from repro.nn.init import embedding_uniform
from repro.sketch.hotsketch import NO_PAYLOAD, HotSketch
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike, make_rng

# Memory cost of the sketch per hot feature: ``slots_per_bucket`` slots of 3
# attributes each (key, score, pointer), as used in the paper's §5.3 memory
# split ("the ratio of memory usage between HotSketch and d dimension
# exclusive embeddings is 12 : d" with 4 slots per bucket).
SKETCH_ATTRIBUTES_PER_SLOT = 3


class CafeEmbedding(TableBackedEmbedding):
    """Hot/cold separated embedding driven by HotSketch."""

    def __init__(
        self,
        num_features: int,
        dim: int,
        num_hot_rows: int,
        num_shared_rows: int,
        hot_threshold: float | None = None,
        initial_threshold: float = 1.0,
        slots_per_bucket: int = 4,
        decay: float = 0.98,
        decay_interval: int = 200,
        rebalance_interval: int = 20,
        hysteresis: float = 1.1,
        use_frequency: bool = False,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        hash_seed: int = 101,
        sketch_seed: int = 7,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        rng: SeedLike = None,
    ):
        super().__init__(
            num_features, dim, optimizer=optimizer, learning_rate=learning_rate, dtype=dtype
        )
        if num_hot_rows <= 0:
            raise ValueError(f"num_hot_rows must be positive, got {num_hot_rows}")
        if num_shared_rows <= 0:
            raise ValueError(f"num_shared_rows must be positive, got {num_shared_rows}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be ≥ 1, got {hysteresis}")
        generator = make_rng(rng)

        self.num_hot_rows = int(num_hot_rows)
        self.num_shared_rows = int(num_shared_rows)
        self.adaptive_threshold = hot_threshold is None
        self.hot_threshold = float(initial_threshold if hot_threshold is None else hot_threshold)
        self.slots_per_bucket = int(slots_per_bucket)
        self.decay = float(decay)
        self.decay_interval = int(decay_interval)
        self.rebalance_interval = int(rebalance_interval)
        self.hysteresis = float(hysteresis)
        self.use_frequency = bool(use_frequency)
        self.hash_seed = int(hash_seed)

        self.sketch = HotSketch(
            num_buckets=self.num_hot_rows,
            slots_per_bucket=self.slots_per_bucket,
            hot_threshold=self.hot_threshold,
            decay=self.decay,
            seed=sketch_seed,
        )
        self._build_arena(generator)
        self._arena_optimizer = self._new_row_optimizer()
        self._bind_region_optimizers()
        self._free_rows = FreeRowPool(self.num_hot_rows)
        self.migrations_in = 0
        self.migrations_out = 0
        self._phase_ns = {"locate": 0, "admit": 0, "apply": 0, "sketch": 0}

    # ------------------------------------------------------------------ #
    # Arena layout (region tables are views into one contiguous matrix)
    # ------------------------------------------------------------------ #
    def _arena_regions(self) -> list[tuple[str, int]]:
        """``(attribute_name, num_rows)`` per region, in arena order.

        Subclasses with more tables append to this list; the regions are
        laid out (and their initial values drawn from the RNG) in exactly
        this order, so the per-table initialization matches the historical
        separate-table construction draw for draw.
        """
        return [("hot_table", self.num_hot_rows), ("shared_table", self.num_shared_rows)]

    def _build_arena(self, rng: np.random.Generator) -> None:
        regions = self._arena_regions()
        total = sum(rows for _, rows in regions)
        self._arena = np.empty((total, self.dim), dtype=self.dtype)
        self._region_offsets: dict[str, int] = {}
        offset = 0
        for name, rows in regions:
            self._region_offsets[name] = offset
            self._arena[offset : offset + rows] = embedding_uniform(
                (rows, self.dim), rng, dtype=self.dtype
            )
            offset += rows
        self._bind_arena_views()
        self._shared_offset = self._region_offsets["shared_table"]

    def _bind_arena_views(self) -> None:
        for name, rows in self._arena_regions():
            offset = self._region_offsets[name]
            setattr(self, name, self._arena[offset : offset + rows])

    def _region_optimizer(self, name: str):
        """A per-region optimizer whose per-row state views the arena state.

        The fused path applies one scatter through ``_arena_optimizer``; the
        unfused reference path updates each region through these.  Sharing
        the state arrays (region slices of the arena accumulator) is what
        keeps the two paths interchangeable mid-training.
        """
        optimizer = self._new_row_optimizer()
        arena_state = self._arena_optimizer.shared_buffers(self._arena)
        if arena_state:
            offset = self._region_offsets[name]
            rows = dict(self._arena_regions())[name]
            optimizer.adopt_shared_buffers(
                {key: array[offset : offset + rows] for key, array in arena_state.items()}
            )
        return optimizer

    def _bind_region_optimizers(self) -> None:
        self._hot_optimizer = self._region_optimizer("hot_table")
        self._shared_optimizer = self._region_optimizer("shared_table")

    def __getstate__(self):
        # Region tables are views into the arena and region optimizers view
        # the arena optimizer's state; pickling them by value would sever the
        # aliasing, so they are dropped here and rebuilt in __setstate__.
        state = super().__getstate__()
        for name, _ in self._arena_regions():
            state.pop(name, None)
        for name in ("_hot_optimizer", "_shared_optimizer", "_secondary_optimizer"):
            state.pop(name, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._bind_arena_views()
        self._bind_region_optimizers()

    # ------------------------------------------------------------------ #
    # Shared-table hooks (overridden by the multi-level variant)
    # ------------------------------------------------------------------ #
    def _shared_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Routing of non-hot ids through the shared table(s)."""
        return {"shared_rows": hash_to_range(flat_ids, self.num_shared_rows, seed=self.hash_seed)}

    def _shared_lookup_routed(self, routes: dict[str, np.ndarray]) -> np.ndarray:
        return self.shared_table[routes["shared_rows"]]

    def _shared_update_routed(
        self, routes: dict[str, np.ndarray], grads: np.ndarray, kernels=None
    ) -> None:
        self._shared_optimizer.update(self.shared_table, routes["shared_rows"], grads, kernels)

    def _shared_lookup(self, flat_ids: np.ndarray) -> np.ndarray:
        return self._shared_lookup_routed(self._shared_routes(flat_ids))

    def _shared_update(self, flat_ids: np.ndarray, grads: np.ndarray) -> None:
        self._shared_update_routed(self._shared_routes(flat_ids), grads)

    def _shared_memory_floats(self) -> int:
        return int(self.shared_table.size)

    def _shared_state_dict(self) -> dict[str, np.ndarray]:
        return {"shared_table": self.shared_table.copy()}

    def _load_shared_state_dict(self, state: dict[str, np.ndarray]) -> None:
        shared = np.asarray(state["shared_table"], dtype=self.dtype)
        if shared.shape != self.shared_table.shape:
            raise ValueError(
                f"checkpoint shared_table shape {shared.shape} does not match "
                f"{self.shared_table.shape}"
            )
        self.shared_table[:] = shared

    # ------------------------------------------------------------------ #
    # Fused-scatter hooks (overridden by the multi-level variant)
    # ------------------------------------------------------------------ #
    def _scatter_entries(
        self, arena_rows: np.ndarray, routes: dict[str, np.ndarray]
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """``(positions, rows)`` scatter entries for the fused update.

        Base CAFE scatters each gradient position into exactly one arena row,
        so positions are implicit (``None`` = identity) and no gradient
        gather is needed.  Subclasses where one position updates several rows
        (summation pooling) return an explicit position per entry.
        """
        return None, arena_rows

    def _lookup_fused_extra(self, out: np.ndarray, routes: dict[str, np.ndarray]) -> None:
        """Add contributions beyond the primary arena gather (subclass hook)."""

    # ------------------------------------------------------------------ #
    # Budget-driven construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        budget: MemoryBudget,
        hot_percentage: float = 0.7,
        hot_threshold: float | None = None,
        slots_per_bucket: int = 4,
        decay: float = 0.98,
        decay_interval: int = 1000,
        use_frequency: bool = False,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        rng: SeedLike = None,
        **kwargs,
    ) -> "CafeEmbedding":
        """Split ``budget`` between sketch + exclusive rows and the shared table.

        ``hot_percentage`` is the fraction of the budget spent on the sketch
        plus the exclusive table (the paper's "hot percentage", §5.3, best at
        around 0.7); the rest goes to the shared hash table.
        """
        num_hot, num_shared = cls.plan_budget(budget, hot_percentage, slots_per_bucket)
        return cls(
            num_features=budget.num_features,
            dim=budget.dim,
            num_hot_rows=num_hot,
            num_shared_rows=num_shared,
            hot_threshold=hot_threshold,
            slots_per_bucket=slots_per_bucket,
            decay=decay,
            decay_interval=decay_interval,
            use_frequency=use_frequency,
            optimizer=optimizer,
            learning_rate=learning_rate,
            rng=rng,
            **kwargs,
        )

    @staticmethod
    def plan_budget(
        budget: MemoryBudget, hot_percentage: float, slots_per_bucket: int = 4
    ) -> tuple[int, int]:
        """Return ``(num_hot_rows, num_shared_rows)`` for the given split."""
        if not 0.0 < hot_percentage <= 1.0:
            raise ValueError(f"hot_percentage must be in (0, 1], got {hot_percentage}")
        sketch_cost = slots_per_bucket * SKETCH_ATTRIBUTES_PER_SLOT  # floats per hot row
        hot_budget = hot_percentage * budget.total_floats
        num_hot = max(int(hot_budget // (sketch_cost + budget.dim)), 1)
        used_by_hot = num_hot * (sketch_cost + budget.dim)
        remaining = max(budget.total_floats - used_by_hot, 0)
        num_shared = max(int(remaining // budget.dim), 1)
        return num_hot, min(num_shared, budget.num_features)

    # ------------------------------------------------------------------ #
    # Routing plan (shared by lookup and apply_gradients)
    # ------------------------------------------------------------------ #
    def _routing_token(self) -> object:
        # Any sketch insertion can move a feature between the hot and shared
        # paths, so the cached plan is tied to the insertion count as well as
        # to explicit invalidation (migration, checkpoint load).
        return (self._routing_version, self.sketch.total_insertions)

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        n = flat_ids.shape[0]
        # One locate per *unique* id: sort the batch by id (stably, so ties
        # keep batch order — the property every downstream segment sum relies
        # on for bit-exactness), probe the sketch once per unique id, and
        # broadcast the results back to positions.  The same locate results
        # are reused by the fused sketch insertion in apply_gradients.
        order = stable_order(flat_ids)
        sorted_ids = flat_ids[order]
        boundary = np.empty(n, dtype=bool)
        if n:
            boundary[0] = True
            np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=boundary[1:])
        id_starts = np.flatnonzero(boundary)
        uids = sorted_ids[id_starts]
        # Segment index per sorted position: repeat over run lengths is ~3x
        # cheaper than the cumsum-over-booleans formulation.
        segment_of_sorted = np.repeat(
            np.arange(id_starts.shape[0], dtype=np.int64), np.diff(id_starts, append=n)
        )

        found, buckets, slots = self.sketch.locate(uids)
        payloads_u = np.where(found, self.sketch.payloads[buckets, slots], NO_PAYLOAD)
        hot_u = payloads_u != NO_PAYLOAD

        routes = {
            "order": order,
            "id_starts": id_starts,
            "uids": uids,
            "sketch_found": found,
            "sketch_buckets": buckets,
            "sketch_slots": slots,
            "hot_u": hot_u,
            "segment_of_sorted": segment_of_sorted,
        }

        arena_rows_u = self._arena_rows_unique(uids, hot_u, payloads_u)
        if arena_rows_u is not None:
            # Fast path: every per-unique-id decision (hot payload vs shared
            # hash) is resolved on the ~deduplicated axis, then materialized
            # per position with a single inverse-permutation broadcast.  The
            # per-position masks the unfused reference path wants are derived
            # lazily from these rows (see _ensure_position_routes); the fused
            # scatter needs nothing but the rows themselves.
            arena_rows = np.empty(n, dtype=np.int64)
            arena_rows[order] = arena_rows_u[segment_of_sorted]
            routes["arena_rows"] = arena_rows
            routes["scatter"] = ScatterPlan.from_rows(arena_rows)
            routes["scatter_positions"] = None
            return routes

        # Position-level path (multi-level variant: medium-class routing is
        # inherently per position, so the masks are broadcast up front).
        hot_mask = np.empty(n, dtype=bool)
        hot_mask[order] = hot_u[segment_of_sorted]
        payloads = np.empty(n, dtype=np.int64)
        payloads[order] = payloads_u[segment_of_sorted]
        routes["payloads"] = payloads
        routes["hot_mask"] = hot_mask
        routes.update(self._shared_routes(flat_ids[~hot_mask]))

        arena_rows = np.empty(n, dtype=np.int64)
        arena_rows[hot_mask] = payloads[hot_mask]
        arena_rows[~hot_mask] = self._shared_offset + routes["shared_rows"]
        routes["arena_rows"] = arena_rows

        positions, entry_rows = self._scatter_entries(arena_rows, routes)
        routes["scatter"] = ScatterPlan.from_rows(entry_rows)
        routes["scatter_positions"] = positions
        return routes

    def _arena_rows_unique(
        self, uids: np.ndarray, hot_u: np.ndarray, payloads_u: np.ndarray
    ) -> np.ndarray | None:
        """Arena row per *unique* id, or ``None`` to force position routing.

        Base CAFE's routing is a pure function of the id (hot payload, else
        shared hash), so it can run on the deduplicated axis.  Subclasses
        whose routing needs per-position information return ``None``.
        """
        arena_rows_u = payloads_u.copy()  # hot payloads ARE arena rows (offset 0)
        cold_uids = uids[~hot_u]
        arena_rows_u[~hot_u] = self._shared_offset + hash_to_range(
            cold_uids, self.num_shared_rows, seed=self.hash_seed
        )
        return arena_rows_u

    def _ensure_position_routes(self, routes: dict[str, np.ndarray]) -> np.ndarray:
        """Materialize per-position ``hot_mask``/``payloads``/``shared_rows``.

        The uid-level fast path skips these broadcasts; the unfused reference
        path (and any introspection) derives them here from the arena rows —
        the hot region sits at arena offset 0, so a position is hot exactly
        when its arena row precedes the shared offset, its payload is that
        row, and shared rows are the offset-relative remainder.  Returns the
        hot mask.
        """
        if "hot_mask" not in routes:
            arena_rows = routes["arena_rows"]
            hot_mask = np.empty(arena_rows.shape[0], dtype=bool)
            hot_mask[routes["order"]] = routes["hot_u"][routes["segment_of_sorted"]]
            routes["hot_mask"] = hot_mask
            routes["payloads"] = np.where(hot_mask, arena_rows, NO_PAYLOAD)
            routes["shared_rows"] = arena_rows[~hot_mask] - self._shared_offset
        return routes["hot_mask"]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather hot features (sketch payload points at an exclusive row) from
        the hot table and the rest from the shared hashed table, per the
        cached routing plan (paper Fig. 4 serving path).  With the arena
        layout both cases are one gather over precomputed arena rows.
        """
        ids = self._check_ids(ids)
        start = time.perf_counter_ns()
        plan = self.plan_for(ids)
        self._phase_ns["locate"] += time.perf_counter_ns() - start
        routes = plan.routes
        out = np.take(self._arena, routes["arena_rows"], axis=0)
        self._lookup_fused_extra(out, routes)
        return out.reshape(plan.ids_shape + (self.dim,))

    # ------------------------------------------------------------------ #
    # Gradient application + sketch maintenance
    # ------------------------------------------------------------------ #
    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Update hot/shared rows, feed gradient norms into HotSketch, and run
        the periodic decay / threshold / migration passes (paper §3).
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        # The plan built by the forward pass is reused here (cache hit), so
        # the bucket hash + slot locate run once per training step.
        start = time.perf_counter_ns()
        plan = self.plan_for(ids)
        tick = time.perf_counter_ns()
        self._phase_ns["locate"] += tick - start
        flat_ids = plan.flat_ids
        flat_grads = grads.reshape(len(plan), self.dim)
        routes = plan.routes

        # 1. Parameter update using the assignment that produced the forward
        #    pass: one fused segment-sum + optimizer scatter over the arena,
        #    or the per-region reference path (same kernels, bit-exact).
        if self.fused:
            positions = routes["scatter_positions"]
            values = flat_grads if positions is None else flat_grads[positions]
            self.fused_apply(self._arena, self._arena_optimizer, routes["scatter"], values)
        else:
            hot_mask = self._ensure_position_routes(routes)
            if hot_mask.any():
                self._hot_optimizer.update(
                    self.hot_table,
                    routes["payloads"][hot_mask],
                    flat_grads[hot_mask],
                    self._kernels(),
                )
            if not hot_mask.all():
                self._shared_update_routed(routes, flat_grads[~hot_mask], self._kernels())
        tock = time.perf_counter_ns()
        self._phase_ns["apply"] += tock - tick

        # 2. Importance scores: gradient norms (or raw frequency for the ablation).
        if self.use_frequency:
            scores = np.ones(flat_ids.shape[0], dtype=np.float64)
        else:
            squared = np.einsum("ij,ij->i", flat_grads, flat_grads)
            scores = np.sqrt(squared).astype(np.float64)

        # 3. Sketch insertion; SpaceSaving replacement may evict hot features.
        #    The fused path reuses the plan's per-unique-id locate results and
        #    aggregates duplicate ids with the same stable-sort segment sum
        #    Sketch.insert performs, so both paths mutate the sketch
        #    identically.
        if self.fused:
            if routes["uids"].shape[0]:
                totals = np.add.reduceat(scores[routes["order"]], routes["id_starts"])
                evictions = self.sketch.insert_routed(
                    routes["uids"],
                    totals,
                    routes["sketch_found"],
                    routes["sketch_buckets"],
                    routes["sketch_slots"],
                    self._kernels(),
                )
            else:
                evictions = None
        else:
            evictions = self.sketch.insert(flat_ids, scores)
        if evictions is not None and len(evictions):
            self._release_rows(evictions.payloads)
        tick = time.perf_counter_ns()
        self._phase_ns["sketch"] += tick - tock

        # 4. Periodic decay, threshold adaptation and migration.
        self._step += 1
        if self.decay < 1.0 and self._step % self.decay_interval == 0:
            self.sketch.apply_decay()
        if self._step % self.rebalance_interval == 0 or self._step == 1:
            if self.adaptive_threshold:
                self._update_threshold()
            self._rebalance()
        self.invalidate_plan()
        self._phase_ns["admit"] += time.perf_counter_ns() - tick

    def phase_snapshot(self) -> dict[str, int]:
        """Cumulative nanoseconds spent per train-step phase.

        ``locate`` covers routing-plan construction/reuse (both halves of the
        step), ``apply`` the parameter update, ``sketch`` scoring + sketch
        insertion + row release, and ``admit`` the periodic decay/threshold/
        migration maintenance.  The bench diffs two snapshots to attribute
        per-step cost.
        """
        return dict(self._phase_ns)

    # ------------------------------------------------------------------ #
    # Migration machinery (§3.3)
    # ------------------------------------------------------------------ #
    def rebalance(self) -> bool:
        """Run one threshold-adaptation + migration pass immediately.

        The same pass :meth:`apply_gradients` runs every
        ``rebalance_interval`` steps, exposed so a sharded store can fan
        explicit rebalances out across shards on its own schedule.  Safe to
        call at any point between training steps; invalidates any cached
        routing plan.
        """
        if self.adaptive_threshold:
            self._update_threshold()
        self._rebalance()
        self.invalidate_plan()
        return True

    def _release_rows(self, rows: np.ndarray) -> None:
        self.migrations_out += self._free_rows.release(rows)

    def _update_threshold(self) -> None:
        """Track the score of the ``num_hot_rows``-th hottest recorded feature.

        The paper sets a threshold "meticulously ... allowing HotSketch to
        always saturate with hot features"; tracking the k-th largest recorded
        score (k = number of exclusive rows) keeps exactly that property while
        following distribution changes automatically.
        """
        occupied = self.sketch.keys != -1
        scores = self.sketch.scores[occupied]
        if scores.size == 0:
            return
        k = min(self.num_hot_rows, scores.size)
        kth = float(np.partition(scores, -k)[-k])
        if kth > 0:
            self.hot_threshold = kth
            self.sketch.hot_threshold = kth

    def _rebalance(self) -> None:
        """Migrate features across the hot/non-hot boundary (both directions).

        Demotion and promotion use a hysteresis band around the threshold so
        features sitting exactly at the boundary do not thrash between the
        exclusive and shared tables on every call.
        """
        keys = self.sketch.keys
        scores = self.sketch.scores
        payloads = self.sketch.payloads
        occupied = keys != -1

        # Hot -> non-hot: the slot's score fell below the demotion band
        # (after decay or because other features overtook it).
        demote_mask = occupied & (payloads != NO_PAYLOAD) & (scores < self.hot_threshold / self.hysteresis)
        if demote_mask.any():
            released = payloads[demote_mask]
            self.sketch.payloads[demote_mask] = NO_PAYLOAD
            self._release_rows(released)

        if not self._free_rows:
            return

        # Non-hot -> hot: promote the highest-scoring candidates above the
        # threshold into the free rows (demotion uses the lower edge of the
        # hysteresis band, so borderline features do not bounce).  All
        # promotions of one rebalance happen as a single batched
        # shared-lookup + one reset_rows call.
        promote_mask = occupied & (payloads == NO_PAYLOAD) & (scores >= self.hot_threshold)
        if not promote_mask.any():
            return
        buckets, slots = np.nonzero(promote_mask)
        order = np.argsort(scores[buckets, slots], kind="stable")[::-1]
        rows = self._free_rows.claim(order.size)
        if rows.size == 0:
            return
        chosen = order[: rows.size]
        buckets, slots = buckets[chosen], slots[chosen]
        features = keys[buckets, slots]
        self.sketch.payloads[buckets, slots] = rows
        # Initialize from the shared embeddings so training stays smooth.
        self.hot_table[rows] = self._shared_lookup(features)
        self._hot_optimizer.reset_rows(rows)
        self.migrations_in += int(rows.size)
        self.invalidate_plan()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def hot_occupancy(self) -> float:
        """Fraction of exclusive rows currently assigned to a hot feature."""
        return 1.0 - len(self._free_rows) / self.num_hot_rows

    def num_hot_features(self) -> int:
        return self.num_hot_rows - len(self._free_rows)

    def check_row_invariants(self) -> None:
        """Assert free rows + sketch-assigned rows exactly partition the hot table.

        Used by tests to prove rows are never leaked (lost from both sides)
        or double-assigned (present in the pool *and* a sketch slot) across
        insert/evict/rebalance cycles.
        """
        self._free_rows.assert_consistent(self.num_hot_rows)
        assigned = self.sketch.payloads[self.sketch.payloads != NO_PAYLOAD]
        if assigned.size != np.unique(assigned).size:
            raise AssertionError("two sketch slots point at the same exclusive row")
        combined = np.concatenate([assigned, self._free_rows.to_array()])
        if combined.size != self.num_hot_rows or np.unique(combined).size != self.num_hot_rows:
            raise AssertionError("exclusive rows leaked or double-assigned")

    def memory_floats(self) -> int:
        """Hot table + shared table(s) + the HotSketch slots (§5.1.4 fairness)."""
        return int(self.hot_table.size + self._shared_memory_floats() + self.sketch.memory_floats())

    # ------------------------------------------------------------------ #
    # Checkpointing (paper §4, "Fault Tolerance")
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {
            "hot_table": self.hot_table.copy(),
            "free_rows": self._free_rows.to_array(),
            "hot_threshold": np.asarray(self.hot_threshold),
            "step": np.asarray(self._step),
        }
        # Shared-table storage goes through the hook so subclasses with more
        # tables (e.g. the multi-level variant) checkpoint them too.
        state.update(self._shared_state_dict())
        for key, value in self.sketch.state_dict().items():
            state[f"sketch.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        hot = np.asarray(state["hot_table"], dtype=self.dtype)
        if hot.shape != self.hot_table.shape:
            raise ValueError(
                f"checkpoint hot_table shape {hot.shape} does not match {self.hot_table.shape}"
            )
        self.hot_table[:] = hot
        self._load_shared_state_dict(state)
        self._free_rows = FreeRowPool(np.asarray(state["free_rows"], dtype=np.int64))
        self.hot_threshold = float(state["hot_threshold"])
        self._step = int(state["step"])
        sketch_state = {
            key.split(".", 1)[1]: value for key, value in state.items() if key.startswith("sketch.")
        }
        self.sketch.load_state_dict(sketch_state)
        self.sketch.hot_threshold = self.hot_threshold
        self.invalidate_plan()

"""Memory budgeting shared by all compression methods.

The paper frames compression as an optimization under a memory constraint
``M(E*) ≤ M`` (Equation 2) and reports results against the *compression
ratio* ``CR = M(E) / M(E*)``.  This module turns a requested compression
ratio into a float32-parameter budget and provides the arithmetic each method
uses to size its internal tables, raising :class:`MemoryBudgetError` when a
method's structural floor makes the budget unreachable (e.g. AdaEmbed's
per-feature score array or the Q-R trick's complementary tables).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryBudgetError


@dataclass(frozen=True)
class MemoryBudget:
    """A memory budget for one embedding layer.

    Attributes
    ----------
    num_features:
        Total number of unique categorical features (``n`` in the paper).
    dim:
        Embedding dimension (``d``).
    total_floats:
        Budget in float32-equivalent parameters (``M``).
    """

    num_features: int
    dim: int
    total_floats: int

    @classmethod
    def from_compression_ratio(cls, num_features: int, dim: int, compression_ratio: float) -> "MemoryBudget":
        if compression_ratio < 1:
            raise ValueError(f"compression ratio must be ≥ 1, got {compression_ratio}")
        uncompressed = num_features * dim
        budget = int(uncompressed / compression_ratio)
        if budget < dim:
            # Any method needs at least one embedding row to function.
            budget = dim
        return cls(num_features=num_features, dim=dim, total_floats=budget)

    @property
    def uncompressed_floats(self) -> int:
        return self.num_features * self.dim

    @property
    def compression_ratio(self) -> float:
        return self.uncompressed_floats / max(self.total_floats, 1)

    def rows(self, overhead_floats: int = 0) -> int:
        """How many ``dim``-wide rows fit after subtracting ``overhead_floats``."""
        available = self.total_floats - overhead_floats
        if available < self.dim:
            raise MemoryBudgetError(
                f"memory budget of {self.total_floats} floats cannot hold a single "
                f"{self.dim}-dim embedding row after {overhead_floats} floats of overhead"
            )
        return available // self.dim

    def require(self, needed_floats: int, reason: str) -> None:
        """Raise if the budget cannot cover ``needed_floats``."""
        if needed_floats > self.total_floats:
            raise MemoryBudgetError(
                f"{reason}: needs {needed_floats} floats but the budget is {self.total_floats} "
                f"(CR {self.compression_ratio:.0f}x)"
            )


def max_compression_ratio_qr(num_features: int, dim: int) -> float:
    """The structural ceiling of the Q-R trick's compression ratio.

    The two complementary tables must jointly cover all features, so the
    smallest possible memory is ``2 * sqrt(n) * d`` — matching the paper's
    observation that Q-R "can only compress to around 500×" on Criteo.
    """
    import math

    min_rows = 2 * math.ceil(math.sqrt(num_features))
    return (num_features * dim) / (min_rows * dim)


def max_compression_ratio_adaembed(num_features: int, dim: int, min_rows: int = 1) -> float:
    """The structural ceiling of AdaEmbed's compression ratio.

    AdaEmbed stores one importance score per feature regardless of how few
    embedding rows it keeps, so its memory floor is ``n + min_rows * d``.
    """
    return (num_features * dim) / (num_features + min_rows * dim)

"""Entry point: ``python -m repro.pipeline`` (see :mod:`repro.runtime.cli`)."""

from repro.runtime.cli import build_parser, main, run_pipeline_session

__all__ = ["main", "build_parser", "run_pipeline_session"]

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess/CI
    raise SystemExit(main())

"""Benchmark: AUC versus optimizer-state memory for the sketched optimizer.

One section feeds ``BENCH_embedding.json`` (schema in ``docs/benchmarks.md``):

* ``optimizer_memory`` — trains the same DLRM over the same synthetic Zipf
  CTR workload under row optimizers holding decreasing per-row state:

  - *adagrad*: exact row-wise Adagrad, one accumulator scalar per table row
    (memory fraction 1.0 — the baseline quality and the memory ceiling);
  - *sketched_adagrad* at ``frac=0.5`` and ``frac=0.25``: the accumulator
    lives in a count-min sketch plus an exact heavy-hitter lane sized to
    that fraction of the table rows
    (:class:`repro.nn.optim.SketchedRowAdagrad`).

  Each row records the optimizer's measured state scalars, its fraction of
  the exact baseline, and the held-out AUC.  The ``gate`` object is the
  acceptance criterion: sketched Adagrad at ≤ 0.25x the exact optimizer
  memory must reach ≥ 0.98x the exact-Adagrad AUC — compression of the
  *optimizer* state, not just the table, at near-baseline quality.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.schema import DatasetSchema, FieldSchema
from repro.data.synthetic import SyntheticConfig, SyntheticCTRDataset
from repro.embeddings import create_embedding
from repro.models.dlrm import DLRM
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer

#: The optimizer sweep: exact baseline first, then shrinking sketched state.
OPTIMIZER_SPECS = (
    "adagrad",
    "sketched_adagrad[frac=0.5]",
    "sketched_adagrad[frac=0.25]",
)

#: The acceptance gate: sketched at this memory fraction (or less) ...
GATE_MEMORY_FRACTION = 0.25

#: ... must reach this fraction of the exact-Adagrad AUC.
GATE_AUC_RATIO = 0.98

#: Table compression of the store under test (hash backend): small enough
#: that ids collide and revisit rows, so the accumulator actually matters.
TABLE_COMPRESSION = 4.0


def _schema(config) -> DatasetSchema:
    """A Zipf-skewed multi-field schema sized to the bench config."""
    if config.smoke:
        cards = (50, 400, 2000, 6000)
    else:
        cards = (100, 2000, 12000, 30000)
    fields = [FieldSchema(f"f{i}", card) for i, card in enumerate(cards)]
    return DatasetSchema(
        name="optimizer_memory_bench",
        fields=fields,
        num_numerical=0,
        embedding_dim=config.dim,
        num_days=2,
        zipf_exponent=config.zipf_exponent,
    )


def _train_and_eval(embedding, dataset, batch_size: int, seed: int) -> dict:
    """One day of training + held-out AUC under one row optimizer."""
    schema = dataset.schema
    model = DLRM(embedding, schema.num_fields, schema.num_numerical, rng=seed)
    trainer = Trainer(model, TrainingConfig(batch_size=batch_size, seed=seed))
    start = time.perf_counter()
    steps = 0
    for batch in dataset.day_batches(0, batch_size):
        trainer.train_step(batch)
        steps += 1
    elapsed = time.perf_counter() - start
    auc = trainer.evaluate_auc(dataset.test_batch(2048))
    return {
        "steps": steps,
        "steps_per_s": round(steps / elapsed, 2) if elapsed else 0.0,
        "test_auc": round(float(auc), 4),
    }


def bench_optimizer_memory(config, specs: tuple[str, ...] = OPTIMIZER_SPECS) -> dict:
    """AUC vs optimizer-state memory: exact Adagrad against sketched variants.

    Every run shares the dataset, the table (same backend, same seed, same
    compression) and the dense model seed — the optimizer's accumulator
    representation is the only axis that moves.
    """
    schema = _schema(config)
    dataset = SyntheticCTRDataset(
        schema,
        config=SyntheticConfig(
            samples_per_day=2048 if config.smoke else 8192, seed=config.seed
        ),
    )
    batch_size = 128 if config.smoke else 256

    rows = []
    exact_memory = None
    exact_auc = None
    for spec in specs:
        embedding = create_embedding(
            "hash",
            num_features=schema.num_features,
            dim=schema.embedding_dim,
            compression_ratio=TABLE_COMPRESSION,
            optimizer=spec,
            learning_rate=0.1,
            dtype=config.dtype,
            rng=np.random.default_rng(config.seed + 17),
        )
        metrics = _train_and_eval(embedding, dataset, batch_size, config.seed)
        memory = embedding.optimizer_memory_floats()
        if spec == "adagrad":
            exact_memory = memory
            exact_auc = metrics["test_auc"]
        rows.append(
            {
                "optimizer": spec,
                "optimizer_memory_floats": int(memory),
                "memory_fraction": (
                    round(memory / exact_memory, 4) if exact_memory else None
                ),
                "auc_vs_exact": (
                    round(metrics["test_auc"] / exact_auc, 4) if exact_auc else None
                ),
                **metrics,
            }
        )

    gated = [
        row
        for row in rows
        if row["optimizer"] != "adagrad"
        and row["memory_fraction"] is not None
        and row["memory_fraction"] <= GATE_MEMORY_FRACTION
    ]
    candidate = gated[-1] if gated else None
    measured = candidate["auc_vs_exact"] if candidate else None
    return {
        "table_compression_ratio": TABLE_COMPRESSION,
        "num_features": schema.num_features,
        "exact_optimizer_floats": int(exact_memory or 0),
        "rows": rows,
        "gate": {
            "metric": (
                f"sketched_adagrad AUC / exact adagrad AUC at memory_fraction "
                f"<= {GATE_MEMORY_FRACTION}"
            ),
            "threshold": GATE_AUC_RATIO,
            "memory_fraction_limit": GATE_MEMORY_FRACTION,
            "measured": measured,
            "memory_fraction": candidate["memory_fraction"] if candidate else None,
            "optimizer": candidate["optimizer"] if candidate else None,
            "passed": measured is not None and measured >= GATE_AUC_RATIO,
        },
    }

"""Benchmark for the per-field table-group store.

One section feeds ``BENCH_embedding.json`` (schema in ``docs/benchmarks.md``):

* ``table_group`` — trains the same DLRM over a deliberately heterogeneous
  synthetic schema (a few tiny enum fields, a few mid fields, two Zipf tail
  fields) under two embedding policies holding ~equal total memory:

  - *uniform_cafe*: the pre-table-group architecture — one global CAFE
    table, one compression ratio for every field;
  - *mixed*: a :class:`~repro.store.table_group.TableGroupStore` giving
    tiny fields ``full`` uncompressed tables, mid fields CAFE at a modest
    ratio, and the tail fields a hard-compressed hash table
    (``full:tiny,cafe:mid,hash:tail``).

  The split follows where the signal lives at this workload size: tiny and
  mid features recur every few batches (exact rows and CAFE adaptivity pay
  off), while most tail ids appear at most once — memory parked there is
  wasted, and hash collisions are harmless.  A uniform policy structurally
  cannot express that allocation; that is the scenario axis this store
  opens.  Reported per policy: memory in floats, held-out AUC, AUC per
  100k floats (the adaptive-allocation headline: at equal memory the mixed
  policy should beat uniform CAFE), training throughput, and — for the
  mixed store — per-group lookup timings from the executor stats (the
  tiny ``full`` group answers fastest; the CAFE mid group dominates).
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.schema import DatasetSchema, FieldSchema
from repro.data.synthetic import SyntheticConfig, SyntheticCTRDataset
from repro.embeddings import create_embedding
from repro.models.dlrm import DLRM
from repro.store.table_group import TableGroupStore
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer

#: The spec under test: uncompressed tiny fields, CAFE mids, hashed tails.
MIXED_SPEC = "full:tiny,cafe[cr={mid_cr}]:mid,hash[cr={tail_cr}]:tail"


def _hetero_schema(config) -> DatasetSchema:
    """A field mix with real size diversity (the uniform store's blind spot)."""
    if config.smoke:
        tiny, mid, tail = (6, 24), (400, 700), (4000, 8000)
    else:
        tiny, mid, tail = (8, 48), (800, 1500), (20000, 40000)
    fields = [
        FieldSchema("tiny_a", tiny[0]),
        FieldSchema("tiny_b", tiny[1]),
        FieldSchema("mid_a", mid[0]),
        FieldSchema("mid_b", mid[1]),
        FieldSchema("tail_a", tail[0]),
        FieldSchema("tail_b", tail[1]),
    ]
    return DatasetSchema(
        name="table_group_bench",
        fields=fields,
        num_numerical=0,
        embedding_dim=config.dim,
        num_days=2,
        zipf_exponent=config.zipf_exponent,
    )


def _train_and_eval(store, dataset, batch_size: int, seed: int) -> dict:
    """One day of training + held-out AUC; returns metrics for one policy."""
    schema = dataset.schema
    model = DLRM(store, schema.num_fields, schema.num_numerical, rng=seed)
    trainer = Trainer(model, TrainingConfig(batch_size=batch_size, seed=seed))
    start = time.perf_counter()
    steps = 0
    for batch in dataset.day_batches(0, batch_size):
        trainer.train_step(batch)
        steps += 1
    elapsed = time.perf_counter() - start
    auc = trainer.evaluate_auc(dataset.test_batch(2048))
    return {
        "steps": steps,
        "steps_per_s": round(steps / elapsed, 2) if elapsed else 0.0,
        "test_auc": round(float(auc), 4),
    }


def bench_table_group(
    config,
    tail_cr: float = 40.0,
    mid_cr: float = 2.0,
) -> dict:
    """Mixed per-field policy vs uniform CAFE at ~equal memory_floats."""
    schema = _hetero_schema(config)
    dataset = SyntheticCTRDataset(
        schema,
        config=SyntheticConfig(
            samples_per_day=2048 if config.smoke else 8192, seed=config.seed
        ),
    )
    batch_size = 128 if config.smoke else 256

    mixed_store = TableGroupStore.from_schema(
        schema,
        spec=MIXED_SPEC.format(tail_cr=tail_cr, mid_cr=mid_cr),
        optimizer="adagrad",
        learning_rate=0.1,
        dtype=config.dtype,
        seed=config.seed,
    )
    mixed_memory = mixed_store.memory_floats()
    # Uniform CAFE sized to the same float budget over the whole id space —
    # the equal-memory comparison the adaptive-allocation claim is about.
    uniform_ratio = schema.embedding_parameters / mixed_memory
    uniform = create_embedding(
        "cafe",
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        compression_ratio=uniform_ratio,
        optimizer="adagrad",
        learning_rate=0.1,
        dtype=config.dtype,
        rng=np.random.default_rng(config.seed + 13),
    )

    rows = []
    for policy, store in (("uniform_cafe", uniform), ("mixed", mixed_store)):
        metrics = _train_and_eval(store, dataset, batch_size, config.seed)
        memory = store.memory_floats()
        row = {
            "policy": policy,
            "memory_floats": int(memory),
            "auc_per_100k_floats": round(metrics["test_auc"] / (memory / 1e5), 4),
            **metrics,
        }
        rows.append(row)

    # Per-group lookup timing of the mixed store (recorded by the executor
    # during training): tiny full tables answer in a fraction of the tail
    # group's time, which is the fused planner's win on skew-free fields.
    group_timings = []
    per_shard = mixed_store.executor.stats.per_shard
    for index, group in enumerate(mixed_store.groups):
        timing = per_shard.get(index)
        group_timings.append(
            {
                **group.describe(),
                "avg_task_ms": (
                    round(timing.total_s * 1e3 / timing.calls, 4) if timing else 0.0
                ),
            }
        )

    return {
        "spec": MIXED_SPEC.format(tail_cr=tail_cr, mid_cr=mid_cr),
        "num_fields": schema.num_fields,
        "num_features": schema.num_features,
        "uniform_compression_ratio": round(uniform_ratio, 2),
        "rows": rows,
        "mixed_groups": group_timings,
    }

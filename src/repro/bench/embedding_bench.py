"""Micro-benchmark harness for the embedding hot path.

Times the embedding-layer training step (lookup + apply_gradients, the code
path the routing-plan refactor targets) on the CAFE Zipf workload and
compares it against the pre-refactor reference implementation preserved in
:mod:`repro.bench.legacy`, plus the sharded-store scaling and snapshot
serving benchmarks from :mod:`repro.bench.store_bench`.  Results are written
to ``BENCH_embedding.json``; the file keeps the latest report under
``latest`` and appends every superseded report to a timestamped ``history``
list so the performance trajectory is tracked PR over PR.

Run it with::

    PYTHONPATH=src python -m repro.bench --smoke   # CI-sized
    PYTHONPATH=src python -m repro.bench           # full numbers
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.group_bench import bench_table_group
from repro.bench.legacy import LegacyCafeEmbedding, LegacyHotSketch, LegacyRowSGD
from repro.bench.optim_bench import bench_optimizer_memory
from repro.bench.runtime_bench import (
    bench_online_pipeline,
    bench_replica_serving,
    bench_shard_parallel,
)
from repro.bench.store_bench import bench_serving_throughput, bench_shard_scaling
from repro.embeddings.cafe import CafeEmbedding
from repro.embeddings.hash_embedding import HashEmbedding
from repro.embeddings.memory import MemoryBudget
from repro.sketch.hotsketch import HotSketch
from repro.utils.zipf import ZipfDistribution

DEFAULT_OUTPUT = "BENCH_embedding.json"

#: Where the report envelope and per-section schemas are documented.
BENCH_DOCS = "docs/benchmarks.md"

#: Superseded reports kept in the on-disk history (oldest dropped first);
#: pruned on every write so the envelope stops growing without bound.
MAX_HISTORY = 20


@dataclass(frozen=True)
class BenchConfig:
    """Size of the Zipf training workload driven through each layer."""

    num_features: int = 100_000
    dim: int = 16
    batch_size: int = 2048
    steps: int = 50
    warmup_steps: int = 5
    zipf_exponent: float = 1.05
    compression_ratio: float = 10.0
    dtype: str = "float32"
    seed: int = 0
    smoke: bool = False

    def __post_init__(self):
        if self.steps <= 0:
            raise ValueError(f"steps must be positive, got {self.steps}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.warmup_steps < 0:
            raise ValueError(f"warmup_steps must be non-negative, got {self.warmup_steps}")

    @classmethod
    def smoke_config(cls, **overrides) -> "BenchConfig":
        defaults = dict(num_features=20_000, batch_size=512, steps=8, warmup_steps=2, smoke=True)
        defaults.update(overrides)
        return cls(**defaults)

    def as_dict(self) -> dict:
        return {
            "num_features": self.num_features,
            "dim": self.dim,
            "batch_size": self.batch_size,
            "steps": self.steps,
            "zipf_exponent": self.zipf_exponent,
            "compression_ratio": self.compression_ratio,
            "dtype": self.dtype,
            "seed": self.seed,
            "smoke": self.smoke,
        }


def make_workload(config: BenchConfig) -> tuple[np.ndarray, np.ndarray]:
    """Zipf-distributed id stream + synthetic per-lookup gradients.

    Returns ``(ids, grads)`` of shapes ``(steps, batch)`` and
    ``(steps, batch, dim)`` covering warmup and timed steps.
    """
    total_steps = config.steps + config.warmup_steps
    zipf = ZipfDistribution(config.num_features, config.zipf_exponent)
    ids = zipf.sample(total_steps * config.batch_size, rng=config.seed)
    ids = ids.reshape(total_steps, config.batch_size)
    rng = np.random.default_rng(config.seed + 1)
    grads = rng.normal(scale=0.1, size=(total_steps, config.batch_size, config.dim))
    return ids, grads.astype(np.float32)


def _make_cafe(config: BenchConfig, cls=CafeEmbedding):
    budget = MemoryBudget.from_compression_ratio(
        config.num_features, config.dim, config.compression_ratio
    )
    return cls.from_budget(budget, dtype=config.dtype, rng=config.seed)


def time_train_steps(embedding, ids: np.ndarray, grads: np.ndarray, warmup: int) -> float:
    """Drive lookup + apply_gradients over the workload; returns seconds/step."""
    for step in range(warmup):
        embedding.lookup(ids[step])
        embedding.apply_gradients(ids[step], grads[step])
    timed = ids.shape[0] - warmup
    start = time.perf_counter()
    for step in range(warmup, ids.shape[0]):
        embedding.lookup(ids[step])
        embedding.apply_gradients(ids[step], grads[step])
    return (time.perf_counter() - start) / timed


#: Backwards-compatible alias for external callers of the old private name.
_time_train_steps = time_train_steps

#: The ``cafe_train_step`` throughput gate: fused CAFE must reach at least
#: this fraction of the *pre-fusion* hash baseline's steps/s (the ROADMAP's
#: "cafe trains at ~0.4x hash" gap, closed by the fused scatter).
CAFE_GATE_THRESHOLD = 0.7


def _phase_breakdown_ms(embedding, timed_steps: int, before: dict) -> dict:
    """Per-step phase attribution (milliseconds) from phase_snapshot diffs."""
    after = embedding.phase_snapshot()
    return {
        f"{phase}_ms": round((after[phase] - before[phase]) / timed_steps / 1e6, 4)
        for phase in ("locate", "admit", "apply", "sketch")
    }


def bench_cafe_train_step(config: BenchConfig, hash_result: dict | None = None) -> dict:
    """CAFE train-step throughput: fused path per kernel backend, phase
    breakdown, pre-refactor baseline, and the cafe-vs-hash throughput gate.
    """
    from repro.kernels import available_kernel_backends, kernel_registry_summary

    ids, grads = make_workload(config)
    timed_steps = config.steps

    # One timed run per available kernel backend; numpy is the reference and
    # always first, extra backends (numba) are optional accelerators.
    kernel_rows = []
    numpy_seconds = None
    optional_names = {
        row["name"] for row in kernel_registry_summary() if row.get("optional")
    }
    for backend_name in available_kernel_backends():
        embedding = _make_cafe(config, CafeEmbedding)
        embedding.set_kernel_backend(backend_name)
        for step in range(config.warmup_steps):
            embedding.lookup(ids[step])
            embedding.apply_gradients(ids[step], grads[step])
        before = embedding.phase_snapshot()
        seconds = time_train_steps(
            embedding, ids[config.warmup_steps:], grads[config.warmup_steps:], 0
        )
        row = {
            "kernels": backend_name,
            "steps_per_s": round(1.0 / seconds, 2),
            "rows_per_s": round(config.batch_size / seconds, 1),
            **_phase_breakdown_ms(embedding, timed_steps, before),
        }
        if backend_name in optional_names:
            row["optional"] = True
        kernel_rows.append(row)
        if backend_name == "numpy":
            numpy_seconds = seconds
            numpy_plan_reuse = embedding.plan_stats.reuse_rate
    if numpy_seconds is None:  # numpy is always registered; defensive only
        raise RuntimeError("numpy kernel backend missing from the registry")

    legacy = _make_cafe(config, LegacyCafeEmbedding)
    baseline_seconds = time_train_steps(legacy, ids, grads, config.warmup_steps)

    numpy_row = kernel_rows[0]
    result = {
        # Headline numbers are the always-available numpy fused path.
        "steps_per_s": numpy_row["steps_per_s"],
        "rows_per_s": numpy_row["rows_per_s"],
        "baseline_steps_per_s": round(1.0 / baseline_seconds, 2),
        "speedup_vs_baseline": round(baseline_seconds / numpy_seconds, 3),
        "plan_reuse_rate": numpy_plan_reuse,
        "phases": {
            key: numpy_row[key]
            for key in ("locate_ms", "admit_ms", "apply_ms", "sketch_ms")
        },
        "kernel_backends": kernel_rows,
    }
    if hash_result is not None:
        # The gate compares against the PRE-FUSION hash baseline — the
        # steps/s the ROADMAP's "cafe is ~0.4x hash" gap was measured
        # against.  The fused hash numbers are recorded alongside so the
        # envelope stays honest about what the denominator is.
        hash_baseline = hash_result["baseline_steps_per_s"]
        hash_fused = hash_result["steps_per_s"]
        measured = round(numpy_row["steps_per_s"] / hash_baseline, 3)
        result["gate"] = {
            "metric": "cafe_fused_steps_per_s / hash_prefusion_steps_per_s",
            "threshold": CAFE_GATE_THRESHOLD,
            "measured": measured,
            "passed": measured >= CAFE_GATE_THRESHOLD,
            "hash_baseline_steps_per_s": hash_baseline,
            "hash_fused_steps_per_s": hash_fused,
            "ratio_vs_fused_hash": round(numpy_row["steps_per_s"] / hash_fused, 3),
            "note": (
                "denominator is the pre-fusion hash path (LegacyRowSGD: "
                "np.unique + np.add.at); the fused hash ratio is reported "
                "for context but not gated — CAFE's sketch/admission work "
                "is irreducible relative to a bare hash lookup"
            ),
        }
    return result


def bench_hash_train_step(config: BenchConfig) -> dict:
    """Hash-embedding train-step throughput (the paper's fastest baseline),
    fused vs. the pre-fusion ``np.unique`` + ``np.add.at`` update."""
    ids, grads = make_workload(config)
    rows = max(int(config.num_features / config.compression_ratio), 1)

    def make_hash() -> HashEmbedding:
        return HashEmbedding(
            config.num_features, config.dim, num_rows=rows, dtype=config.dtype, rng=config.seed
        )

    embedding = make_hash()
    seconds = time_train_steps(embedding, ids, grads, config.warmup_steps)
    baseline = make_hash()
    baseline.fused = False
    baseline._optimizer = LegacyRowSGD(baseline.learning_rate)
    baseline_seconds = time_train_steps(baseline, ids, grads, config.warmup_steps)
    return {
        "steps_per_s": round(1.0 / seconds, 2),
        "rows_per_s": round(config.batch_size / seconds, 1),
        "baseline_steps_per_s": round(1.0 / baseline_seconds, 2),
        "speedup_vs_baseline": round(baseline_seconds / seconds, 3),
        "plan_reuse_rate": embedding.plan_stats.reuse_rate,
    }


def bench_hotsketch_insert(config: BenchConfig) -> dict:
    """Raw sketch insertion throughput, vectorized vs. scalar misses."""
    ids, _ = make_workload(config)
    scores = np.abs(np.random.default_rng(config.seed + 2).normal(size=ids.shape)) + 0.01
    num_buckets = max(config.num_features // 100, 16)

    def run(sketch_cls) -> float:
        sketch = sketch_cls(num_buckets=num_buckets, slots_per_bucket=4, hot_threshold=1.0, seed=3)
        start = time.perf_counter()
        for step in range(ids.shape[0]):
            sketch.insert(ids[step], scores[step])
        return time.perf_counter() - start

    seconds = run(HotSketch)
    baseline_seconds = run(LegacyHotSketch)
    total_keys = ids.size
    return {
        "keys_per_s": round(total_keys / seconds, 1),
        "baseline_keys_per_s": round(total_keys / baseline_seconds, 1),
        "speedup_vs_baseline": round(baseline_seconds / seconds, 3),
    }


def bench_environment() -> dict:
    """The host facts a reader needs to judge parallel-scaling numbers."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def run_benchmarks(config: BenchConfig) -> dict:
    """Run every micro-benchmark; returns the JSON-ready report."""
    # Hash runs first: its pre-fusion baseline is the denominator of the
    # cafe_train_step throughput gate.
    hash_result = bench_hash_train_step(config)
    return {
        "schema_version": 2,
        "workload": config.as_dict(),
        "env": bench_environment(),
        "results": {
            "cafe_train_step": bench_cafe_train_step(config, hash_result),
            "hash_train_step": hash_result,
            "hotsketch_insert": bench_hotsketch_insert(config),
            "shard_scaling": bench_shard_scaling(config),
            "serving": bench_serving_throughput(config),
            "shard_parallel": bench_shard_parallel(config),
            "online_pipeline": bench_online_pipeline(config),
            "replica_serving": bench_replica_serving(config),
            "table_group": bench_table_group(config),
            "optimizer_memory": bench_optimizer_memory(config),
        },
    }


def _load_previous(path: Path) -> tuple[dict | None, list[dict]]:
    """Previous ``(latest, history)`` from ``path``, tolerating old formats."""
    if not path.exists():
        return None, []
    try:
        previous = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return None, []
    if not isinstance(previous, dict):
        return None, []
    if "latest" in previous:  # current envelope
        history = previous.get("history", [])
        return previous.get("latest"), history if isinstance(history, list) else []
    if "results" in previous:  # schema_version 1: the report was the file
        return previous, []
    return None, []


def write_report(report: dict, output: str | Path = DEFAULT_OUTPUT) -> Path:
    """Write ``report`` as the latest run, pushing the prior run into history.

    The file is an envelope ``{"latest": ..., "history": [...]}``; each run
    is stamped with a UTC ``recorded_at`` so the perf trajectory across PRs
    survives in one artifact instead of being overwritten.
    """
    path = Path(output)
    previous_latest, history = _load_previous(path)
    if previous_latest is not None:
        history.append(previous_latest)
    history = history[-MAX_HISTORY:]
    stamped = dict(report)
    stamped.setdefault(
        "recorded_at", datetime.now(timezone.utc).isoformat(timespec="seconds")
    )
    envelope = {"latest": stamped, "history": history}
    path.write_text(json.dumps(envelope, indent=2) + "\n", encoding="utf-8")
    return path

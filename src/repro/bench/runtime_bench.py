"""Benchmarks for the shard-parallel runtime and the online pipeline.

Two sections feed ``BENCH_embedding.json`` (schema in ``docs/benchmarks.md``):

* ``shard_parallel`` — lookup fan-out latency of a
  :class:`~repro.store.sharded.ShardedEmbeddingStore` under the serial and
  thread-pool :class:`~repro.runtime.executor.ShardExecutor`, at increasing
  shard counts.  Each row reports two regimes:

  - *simulated-remote*: every shard is wrapped in a
    :class:`~repro.runtime.simulate.LatencySimulatedShard` charging a fixed
    per-operation stall (an RPC round-trip).  Stalls release the GIL, so the
    threaded executor overlaps them and the fan-out speedup approaches the
    shard count — this is the regime the ≥ 1.5x-at-4-shards acceptance
    criterion is measured in.
  - *in-process*: the bare NumPy backends.  On a single core the GIL keeps
    CPU-bound shard work serialized, so this speedup hovers around (or
    below) 1.0 — reported honestly as the cost of thread handoff.

* ``online_pipeline`` — the train→serve loop of
  :class:`~repro.runtime.pipeline.OnlinePipeline` under each executor
  (serial, threads, processes): training throughput, snapshot publish
  latency (for the process executor that is the sealed-generation seal),
  the maximum snapshot staleness observed against the configured cadence,
  and serve-while-train probe latency.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.dlrm import DLRM
from repro.runtime.executor import create_executor
from repro.runtime.pipeline import OnlinePipeline, PipelineConfig
from repro.runtime.simulate import LatencySimulatedShard
from repro.store import ShardedEmbeddingStore
from repro.utils.zipf import ZipfDistribution

#: Simulated per-shard RPC round-trip charged in the simulated-remote regime.
DEFAULT_STALL_MS = 2.0

#: Fields of the synthetic pipeline model (matches the serving benchmark).
PIPELINE_FIELDS = 4


def _build_store(config, num_shards: int, stall_ms: float, executor_kind: str):
    """A hash-backend store, optionally latency-wrapped per shard."""
    from repro.embeddings import create_embedding

    shards = []
    for index in range(num_shards):
        shard = create_embedding(
            "hash",
            num_features=config.num_features,
            dim=config.dim,
            compression_ratio=config.compression_ratio * num_shards,
            rng=np.random.default_rng(config.seed + 7919 * index),
            dtype=config.dtype,
        )
        if stall_ms > 0:
            shard = LatencySimulatedShard(shard, stall_s=stall_ms * 1e-3)
        shards.append(shard)
    return ShardedEmbeddingStore(shards, executor=create_executor(executor_kind))


def _time_lookups(store, ids: np.ndarray, warmup: int) -> float:
    """Seconds per lookup fan-out over the id workload."""
    for step in range(warmup):
        store.lookup(ids[step])
    timed = ids.shape[0] - warmup
    start = time.perf_counter()
    for step in range(warmup, ids.shape[0]):
        store.lookup(ids[step])
    return (time.perf_counter() - start) / timed


def bench_shard_parallel(
    config,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    stall_ms: float = DEFAULT_STALL_MS,
    steps: int = 10,
    warmup: int = 2,
) -> dict:
    """Serial vs threaded lookup fan-out at increasing shard counts."""
    if config.smoke:
        shard_counts = tuple(s for s in shard_counts if s <= 4)
        steps = min(steps, 8)
    zipf = ZipfDistribution(config.num_features, config.zipf_exponent)
    ids = zipf.sample((steps + warmup) * config.batch_size, rng=config.seed + 11)
    ids = ids.reshape(steps + warmup, config.batch_size)

    rows = []
    for num_shards in shard_counts:
        timings: dict[str, float] = {}
        for regime, regime_stall in (("remote", stall_ms), ("in_process", 0.0)):
            for kind in ("serial", "thread"):
                store = _build_store(config, num_shards, regime_stall, kind)
                timings[f"{regime}_{kind}"] = _time_lookups(store, ids, warmup)
                store.executor.close()
        rows.append(
            {
                "num_shards": num_shards,
                "stall_ms": stall_ms,
                "remote_serial_ms": round(timings["remote_serial"] * 1e3, 3),
                "remote_threaded_ms": round(timings["remote_thread"] * 1e3, 3),
                # The acceptance metric: threaded fan-out over stalling
                # shards vs the same shards behind the serial executor.
                "fanout_speedup": round(timings["remote_serial"] / timings["remote_thread"], 3),
                "in_process_serial_ms": round(timings["in_process_serial"] * 1e3, 3),
                "in_process_threaded_ms": round(timings["in_process_thread"] * 1e3, 3),
                "in_process_speedup": round(
                    timings["in_process_serial"] / timings["in_process_thread"], 3
                ),
            }
        )
    return {
        "shard_counts": list(shard_counts),
        "stall_ms": stall_ms,
        "batch_size": config.batch_size,
        "rows": rows,
    }


def bench_online_pipeline(
    config,
    num_shards: int = 2,
    publish_every: int = 10,
    probe_every: int = 3,
) -> dict:
    """Train→serve pipeline throughput, publish latency and staleness bound."""
    from repro.data import SyntheticConfig, SyntheticCTRDataset, make_preset

    max_steps = 20 if config.smoke else 40
    schema = make_preset("criteo", base_cardinality=300, seed=config.seed)
    schema.num_days = 3
    dataset = SyntheticCTRDataset(
        schema, config=SyntheticConfig(samples_per_day=2048, seed=config.seed)
    )

    rows = []
    for kind in ("serial", "threads", "processes"):
        store = ShardedEmbeddingStore.build(
            "cafe",
            num_features=schema.num_features,
            dim=config.dim,
            num_shards=num_shards,
            compression_ratio=config.compression_ratio,
            seed=config.seed,
            dtype=config.dtype,
            executor=create_executor(kind),
        )
        model = DLRM(
            store, num_fields=schema.num_fields, num_numerical=schema.num_numerical,
            rng=config.seed,
        )
        pipeline = OnlinePipeline(
            model,
            config=PipelineConfig(
                publish_every_steps=publish_every,
                probe_every_steps=probe_every,
                serving_micro_batch=64,
                max_steps=max_steps,
            ),
        )
        report = pipeline.run(
            dataset.training_stream(128), probe_batch=dataset.test_batch(128)
        )
        summary = report.as_dict()
        probe = summary["probe"] or {}
        rows.append(
            {
                "executor": kind,
                "steps": summary["steps"],
                "steps_per_s": summary["steps_per_s"],
                "publishes": summary["publishes"],
                "publish_p50_ms": summary["publish_p50_ms"],
                "cadence_steps": summary["cadence_steps"],
                "max_staleness_steps": summary["max_staleness_steps"],
                "staleness_within_cadence": summary["staleness_within_cadence"],
                "probe_p50_ms": probe.get("p50_ms", float("nan")),
                "probe_p95_ms": probe.get("p95_ms", float("nan")),
            }
        )
        store.executor.close()
    return {"num_shards": num_shards, "publish_every": publish_every, "rows": rows}

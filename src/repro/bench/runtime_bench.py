"""Benchmarks for the shard-parallel runtime and the online pipeline.

Two sections feed ``BENCH_embedding.json`` (schema in ``docs/benchmarks.md``):

* ``shard_parallel`` — lookup fan-out latency of a
  :class:`~repro.store.sharded.ShardedEmbeddingStore` under the serial and
  thread-pool :class:`~repro.runtime.executor.ShardExecutor`, at increasing
  shard counts.  Each row reports two regimes:

  - *simulated-remote*: every shard is wrapped in a
    :class:`~repro.runtime.simulate.LatencySimulatedShard` charging a fixed
    per-operation stall (an RPC round-trip).  Stalls release the GIL, so the
    threaded executor overlaps them and the fan-out speedup approaches the
    shard count — this is the regime the ≥ 1.5x-at-4-shards acceptance
    criterion is measured in.
  - *in-process*: the bare NumPy backends.  On a single core the GIL keeps
    CPU-bound shard work serialized, so this speedup hovers around (or
    below) 1.0 — reported honestly as the cost of thread handoff.

* ``online_pipeline`` — the train→serve loop of
  :class:`~repro.runtime.pipeline.OnlinePipeline` under each executor
  (serial, threads, processes): training throughput, snapshot publish
  latency (for the process executor that is the sealed-generation seal),
  the maximum snapshot staleness observed against the configured cadence,
  and serve-while-train probe latency.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.dlrm import DLRM
from repro.runtime.executor import create_executor
from repro.runtime.pipeline import OnlinePipeline, PipelineConfig
from repro.runtime.simulate import LatencySimulatedShard
from repro.store import ShardedEmbeddingStore
from repro.utils.zipf import ZipfDistribution

#: Simulated per-shard RPC round-trip charged in the simulated-remote regime.
DEFAULT_STALL_MS = 2.0

#: Fields of the synthetic pipeline model (matches the serving benchmark).
PIPELINE_FIELDS = 4


def _build_store(config, num_shards: int, stall_ms: float, executor_kind: str):
    """A hash-backend store, optionally latency-wrapped per shard."""
    from repro.embeddings import create_embedding

    shards = []
    for index in range(num_shards):
        shard = create_embedding(
            "hash",
            num_features=config.num_features,
            dim=config.dim,
            compression_ratio=config.compression_ratio * num_shards,
            rng=np.random.default_rng(config.seed + 7919 * index),
            dtype=config.dtype,
        )
        if stall_ms > 0:
            shard = LatencySimulatedShard(shard, stall_s=stall_ms * 1e-3)
        shards.append(shard)
    return ShardedEmbeddingStore(shards, executor=create_executor(executor_kind))


def _time_lookups(store, ids: np.ndarray, warmup: int) -> float:
    """Seconds per lookup fan-out over the id workload."""
    for step in range(warmup):
        store.lookup(ids[step])
    timed = ids.shape[0] - warmup
    start = time.perf_counter()
    for step in range(warmup, ids.shape[0]):
        store.lookup(ids[step])
    return (time.perf_counter() - start) / timed


def bench_shard_parallel(
    config,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    stall_ms: float = DEFAULT_STALL_MS,
    steps: int = 10,
    warmup: int = 2,
) -> dict:
    """Serial vs threaded lookup fan-out at increasing shard counts."""
    if config.smoke:
        shard_counts = tuple(s for s in shard_counts if s <= 4)
        steps = min(steps, 8)
    zipf = ZipfDistribution(config.num_features, config.zipf_exponent)
    ids = zipf.sample((steps + warmup) * config.batch_size, rng=config.seed + 11)
    ids = ids.reshape(steps + warmup, config.batch_size)

    rows = []
    for num_shards in shard_counts:
        timings: dict[str, float] = {}
        for regime, regime_stall in (("remote", stall_ms), ("in_process", 0.0)):
            for kind in ("serial", "thread"):
                store = _build_store(config, num_shards, regime_stall, kind)
                timings[f"{regime}_{kind}"] = _time_lookups(store, ids, warmup)
                store.executor.close()
        rows.append(
            {
                "num_shards": num_shards,
                "stall_ms": stall_ms,
                "remote_serial_ms": round(timings["remote_serial"] * 1e3, 3),
                "remote_threaded_ms": round(timings["remote_thread"] * 1e3, 3),
                # The acceptance metric: threaded fan-out over stalling
                # shards vs the same shards behind the serial executor.
                "fanout_speedup": round(timings["remote_serial"] / timings["remote_thread"], 3),
                "in_process_serial_ms": round(timings["in_process_serial"] * 1e3, 3),
                "in_process_threaded_ms": round(timings["in_process_thread"] * 1e3, 3),
                "in_process_speedup": round(
                    timings["in_process_serial"] / timings["in_process_thread"], 3
                ),
            }
        )
    return {
        "shard_counts": list(shard_counts),
        "stall_ms": stall_ms,
        "batch_size": config.batch_size,
        "rows": rows,
    }


def bench_online_pipeline(
    config,
    num_shards: int = 2,
    publish_every: int = 10,
    probe_every: int = 3,
) -> dict:
    """Train→serve pipeline throughput, publish latency and staleness bound."""
    from repro.data import SyntheticConfig, SyntheticCTRDataset, make_preset

    max_steps = 20 if config.smoke else 40
    schema = make_preset("criteo", base_cardinality=300, seed=config.seed)
    schema.num_days = 3
    dataset = SyntheticCTRDataset(
        schema, config=SyntheticConfig(samples_per_day=2048, seed=config.seed)
    )

    rows = []
    for kind in ("serial", "threads", "processes"):
        store = ShardedEmbeddingStore.build(
            "cafe",
            num_features=schema.num_features,
            dim=config.dim,
            num_shards=num_shards,
            compression_ratio=config.compression_ratio,
            seed=config.seed,
            dtype=config.dtype,
            executor=create_executor(kind),
        )
        model = DLRM(
            store, num_fields=schema.num_fields, num_numerical=schema.num_numerical,
            rng=config.seed,
        )
        pipeline = OnlinePipeline(
            model,
            config=PipelineConfig(
                publish_every_steps=publish_every,
                probe_every_steps=probe_every,
                serving_micro_batch=64,
                max_steps=max_steps,
            ),
        )
        report = pipeline.run(
            dataset.training_stream(128), probe_batch=dataset.test_batch(128)
        )
        summary = report.as_dict()
        probe = summary["probe"] or {}
        rows.append(
            {
                "executor": kind,
                "steps": summary["steps"],
                "steps_per_s": summary["steps_per_s"],
                "publishes": summary["publishes"],
                "publish_p50_ms": summary["publish_p50_ms"],
                "cadence_steps": summary["cadence_steps"],
                "max_staleness_steps": summary["max_staleness_steps"],
                "staleness_within_cadence": summary["staleness_within_cadence"],
                "probe_p50_ms": probe.get("p50_ms", float("nan")),
                "probe_p95_ms": probe.get("p95_ms", float("nan")),
            }
        )
        store.executor.close()
    return {"num_shards": num_shards, "publish_every": publish_every, "rows": rows}


# --------------------------------------------------------------------------- #
# Replicated serving tier
# --------------------------------------------------------------------------- #
#: Serving-table scale for the delta-publish gate: the gate compares payload
#: protocols, so the sparse state must dominate the per-publish constant
#: (dense-network copy, snapshot bookkeeping) the way it does in production.
GATE_FEATURES = 600_000
GATE_COMPRESSION = 2.0
GATE_IDS_PER_ROUND = 2048

#: Deterministic per-batch service time for the virtual-time replays:
#: ``base + per_row * rows`` seconds.  Fixed (not measured) so the recorded
#: scaling and burst numbers are queueing physics, not host speed.
SERVICE_MODEL = (0.004, 0.00002)


def _replica_model(config, seed_offset: int = 0, num_features: int | None = None,
                   compression_ratio: float | None = None):
    """One hash-backed DLRM for the replica benchmarks (hash has a row-local
    serving state, so the delta path is exercised end to end)."""
    store = ShardedEmbeddingStore.build(
        "hash",
        num_features=num_features or config.num_features,
        dim=config.dim,
        num_shards=2,
        compression_ratio=compression_ratio or config.compression_ratio,
        seed=config.seed + seed_offset,
        dtype=config.dtype,
    )
    return DLRM(store, num_fields=PIPELINE_FIELDS, num_numerical=0, rng=config.seed)


def _replica_traffic(config, steps: int):
    zipf = ZipfDistribution(config.num_features, config.zipf_exponent)
    ids = zipf.sample(steps * config.batch_size, rng=config.seed + 31)
    usable = config.batch_size - config.batch_size % PIPELINE_FIELDS
    return ids.reshape(steps, config.batch_size)[:, :usable].reshape(
        steps, -1, PIPELINE_FIELDS
    )


def _train_rounds(model, ids_rounds, rng):
    for ids in ids_rounds:
        grads = rng.normal(scale=0.05, size=(*ids.shape, model.store.dim)).astype(
            model.store.dtype
        )
        model.store.lookup(ids)
        model.store.apply_gradients(ids, grads)


def _bench_delta_publish(config, rounds: int) -> dict:
    """Delta vs always-full publish latency on identically-seeded chains.

    Both tiers see byte-identical training traffic between publishes (same
    seeds, same hot set), so the only difference is the payload protocol —
    exactly the comparison the ≤ 0.5x p50 gate is about.
    """
    from repro.serving.replica import ReplicaTier

    zipf = ZipfDistribution(GATE_FEATURES, config.zipf_exponent)
    ids = zipf.sample(rounds * GATE_IDS_PER_ROUND, rng=config.seed + 31)
    traffic = ids.reshape(rounds, -1, PIPELINE_FIELDS)
    latencies: dict[str, list[float]] = {}
    stats: dict[str, dict] = {}
    for mode, rebase_every in (("full", 1), ("delta", 0)):
        model = _replica_model(
            config, num_features=GATE_FEATURES, compression_ratio=GATE_COMPRESSION
        )
        tier = ReplicaTier(model, num_replicas=1, rebase_every=rebase_every)
        rng = np.random.default_rng(config.seed + 47)
        tier.publish()  # bootstrap base (not timed: both modes pay it)
        per_publish = []
        for step_ids in traffic:
            _train_rounds(model, [step_ids], rng)
            start = time.perf_counter()
            tier.publish()
            per_publish.append(time.perf_counter() - start)
        latencies[mode] = per_publish
        stats[mode] = tier.publisher.stats.as_dict()
        model.store.executor.close()

    full_p50 = float(np.percentile(latencies["full"], 50.0) * 1e3)
    delta_p50 = float(np.percentile(latencies["delta"], 50.0) * 1e3)
    measured = round(delta_p50 / full_p50, 4) if full_p50 else None
    threshold = 0.5
    return {
        "rounds": rounds,
        "ids_per_round": GATE_IDS_PER_ROUND,
        "table_rows_per_shard": int(GATE_FEATURES / GATE_COMPRESSION / 2),
        "full_p50_ms": round(full_p50, 4),
        "delta_p50_ms": round(delta_p50, 4),
        "full_rows_shipped": stats["full"]["rows_shipped"],
        "delta_rows_shipped": stats["delta"]["rows_shipped"],
        "delta_stats": stats["delta"],
        "gate": {
            "metric": "delta_publish_p50_over_full_p50",
            "threshold": threshold,
            "measured": measured,
            "full_p50_ms": round(full_p50, 4),
            "delta_p50_ms": round(delta_p50, 4),
            "passed": measured is not None and measured <= threshold,
        },
    }


def _calibrated_service_model(replica, rows: int = 256) -> tuple[float, float]:
    """``(base_s, per_row_s)`` fit from two real forward passes, so the
    virtual-time replays below are grounded in this host's compute."""
    rng = np.random.default_rng(13)
    small = rng.integers(0, 50, size=(16, PIPELINE_FIELDS))
    large = rng.integers(0, 50, size=(rows, PIPELINE_FIELDS))
    replica.serve_batch(small)  # warmup
    _, t_small = replica.serve_batch(small)
    _, t_large = replica.serve_batch(large)
    per_row = max((t_large - t_small) / (rows - 16), 1e-7)
    base = max(t_small - 16 * per_row, 1e-5)
    return base, per_row


def bench_replica_serving(config, rounds: int | None = None) -> dict:
    """The replicated-tier benchmark: delta-publish gate, replica-count
    scaling, and p99-under-burst with/without the SLO controller."""
    from repro.serving.replica import ReplicaSet, ReplicaTier
    from repro.serving.slo import SLOController
    from repro.serving.traffic import TrafficConfig, TrafficGenerator, run_workload

    rounds = rounds if rounds is not None else (4 if config.smoke else 12)
    delta_publish = _bench_delta_publish(config, rounds)

    # One published model drives both replay studies.
    model = _replica_model(config, seed_offset=1)
    rng = np.random.default_rng(config.seed + 53)
    _train_rounds(model, _replica_traffic(config, 2), rng)

    class _TraceSchema:
        field_cardinalities = [config.num_features // PIPELINE_FIELDS] * PIPELINE_FIELDS
        num_numerical = 0

        @staticmethod
        def to_global_ids(per_field):
            width = config.num_features // PIPELINE_FIELDS
            return per_field + width * np.arange(PIPELINE_FIELDS)[None, :]

    micro_batch = 32
    publisher_model = model

    def fresh_set(num_replicas: int) -> ReplicaSet:
        tier = ReplicaTier(publisher_model, num_replicas=num_replicas,
                           max_batch_size=micro_batch)
        tier.publish()
        return tier.replicas

    base_s, per_row_s = SERVICE_MODEL
    calibrated = _calibrated_service_model(fresh_set(1).replicas[0])
    capacity_rps = micro_batch / (base_s + per_row_s * micro_batch)

    # Replica-count scaling: arrival rate saturates even the largest fleet,
    # so throughput is a capacity measurement, not an arrival-rate echo.
    counts = (1, 2) if config.smoke else (1, 2, 4)
    scaling_duration = 0.25 if config.smoke else 0.5
    scaling_rows = []
    base_throughput = None
    for count in counts:
        trace = TrafficGenerator(
            _TraceSchema(),
            TrafficConfig.from_pattern(
                "zipf",
                duration_s=scaling_duration,
                base_rate=capacity_rps * (max(counts) + 0.5),
                seed=config.seed,
            ),
        ).trace()
        report = run_workload(
            fresh_set(count), trace, service_model=(base_s, per_row_s)
        )
        if base_throughput is None:
            base_throughput = report.throughput_rps or 1.0
        scaling_rows.append(
            {
                "replicas": count,
                "throughput_rps": report.throughput_rps,
                "speedup_vs_1": round(report.throughput_rps / base_throughput, 3),
                "overall_p99_ms": report.overall["p99_ms"],
            }
        )

    # p99 under a flash crowd, fixed batch vs SLO-controlled batch.
    service_ms = (base_s + per_row_s * micro_batch) * 1e3
    target_p99_ms = max(10.0, round(8.0 * service_ms, 2))
    # 55% baseline utilization on two replicas, a 4x flash crowd: more than
    # the baseline batch can absorb, within reach of two batch doublings —
    # the regime the controller is for.
    burst_config = TrafficConfig.from_pattern(
        "zipf-burst",
        duration_s=2.0 if config.smoke else 4.0,
        base_rate=0.55 * 2 * capacity_rps,
        burst_magnitude=4.0,
        diurnal_amplitude=0.0,
        straggler_fraction=0.0,
        seed=config.seed + 3,
    )
    burst_trace = TrafficGenerator(_TraceSchema(), burst_config).trace()
    burst = {}
    for label, controller in (
        ("fixed_batch", None),
        ("slo_controlled", SLOController(target_p99_ms, micro_batch=micro_batch)),
    ):
        report = run_workload(
            fresh_set(2), burst_trace,
            controller=controller, service_model=(base_s, per_row_s),
        )
        burst[label] = {
            "peak_window_p99_ms": round(report.peak_window_p99_ms(), 3),
            "overall_p99_ms": report.overall["p99_ms"],
            "controller": report.controller,
        }
    model.store.executor.close()

    return {
        "micro_batch": micro_batch,
        "service_model": {
            "base_ms": round(base_s * 1e3, 4),
            "per_row_us": round(per_row_s * 1e6, 4),
            "calibrated_base_ms": round(calibrated[0] * 1e3, 4),
            "calibrated_per_row_us": round(calibrated[1] * 1e6, 4),
        },
        "delta_publish": delta_publish,
        "replica_scaling": {"rows": scaling_rows},
        "burst_slo": {
            "pattern": burst_config.pattern,
            "burst_magnitude": burst_config.burst_magnitude,
            "target_p99_ms": target_p99_ms,
            **burst,
        },
    }

"""Pre-refactor reference implementations used as benchmark baselines.

These classes preserve the seed implementation's per-key Python loops and
duplicated hash/locate work so the micro-benchmark can report the speedup of
the vectorized routing-plan engine against a faithful "before" on identical
workloads.  They are *not* part of the library API and must never be used by
experiments — only :mod:`repro.bench` imports them.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.cafe import CafeEmbedding
from repro.embeddings.plan import RoutingPlan
from repro.sketch.hotsketch import EMPTY_KEY, NO_PAYLOAD, EvictionBatch, HotSketch


class LegacyHotSketch(HotSketch):
    """HotSketch with the seed's scalar miss-handling loop."""

    def _insert_misses(
        self, keys: np.ndarray, scores: np.ndarray, buckets: np.ndarray
    ) -> EvictionBatch:
        evicted_keys: list[int] = []
        evicted_payloads: list[int] = []
        for key, score, bucket in zip(keys, scores, buckets):
            bucket_keys = self.keys[bucket]
            empty = np.nonzero(bucket_keys == EMPTY_KEY)[0]
            if empty.size > 0:
                slot = int(empty[0])
                self.keys[bucket, slot] = key
                self.scores[bucket, slot] = score
                self.payloads[bucket, slot] = NO_PAYLOAD
                continue
            slot = int(np.argmin(self.scores[bucket]))
            old_key = int(self.keys[bucket, slot])
            old_payload = int(self.payloads[bucket, slot])
            if old_payload != NO_PAYLOAD:
                evicted_keys.append(old_key)
                evicted_payloads.append(old_payload)
            self.keys[bucket, slot] = key
            self.scores[bucket, slot] += score
            self.payloads[bucket, slot] = NO_PAYLOAD
        return EvictionBatch(
            np.asarray(evicted_keys, dtype=np.int64),
            np.asarray(evicted_payloads, dtype=np.int64),
        )


class LegacyRowSGD:
    """The pre-fusion row-wise SGD update: ``np.unique`` + ``np.add.at``.

    This is the aggregation idiom every ``apply_gradients`` used before the
    fused scatter landed — an O(n log n) unique, an ``np.add.at`` scatter-add
    (the slow buffered ufunc path), and a fancy-indexed apply.  Swapping it
    into a current embedding gives the honest "before" for the fused-path
    speedup and the ``cafe_train_step`` gate's hash baseline.
    """

    def __init__(self, lr: float):
        self.lr = float(lr)

    def update(self, table, rows, grads, kernels=None) -> None:
        unique_rows, inverse = np.unique(rows, return_inverse=True)
        summed = np.zeros((unique_rows.shape[0], grads.shape[1]), dtype=table.dtype)
        np.add.at(summed, inverse, grads)
        table[unique_rows] -= self.lr * summed

    def reset_rows(self, rows) -> None:
        pass

    def shared_buffers(self) -> dict:
        return {}

    def adopt_shared_buffers(self, views: dict) -> None:
        pass


class LegacyCafeEmbedding(CafeEmbedding):
    """CAFE with the seed's per-key loops and no routing-plan reuse."""

    #: The seed had no fused scatter: per-region updates, per-step re-locate.
    fused = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Swap in the scalar sketch, keeping the configured geometry.
        self.sketch = LegacyHotSketch(
            num_buckets=self.num_hot_rows,
            slots_per_bucket=self.slots_per_bucket,
            hot_threshold=self.hot_threshold,
            decay=self.decay,
            seed=self.sketch.seed,
        )

    def plan_for(self, ids: np.ndarray) -> RoutingPlan:
        # The seed recomputed routing in lookup AND apply_gradients: model
        # that by discarding the cached plan before every request.
        self._cached_plan = None
        return super().plan_for(ids)

    def _release_rows(self, rows: np.ndarray) -> None:
        for row in rows.tolist():
            if row >= 0:
                self._free_rows.append(int(row))
                self.migrations_out += 1

    def _rebalance(self) -> None:
        keys = self.sketch.keys
        scores = self.sketch.scores
        payloads = self.sketch.payloads
        occupied = keys != -1

        demote_mask = (
            occupied & (payloads != NO_PAYLOAD) & (scores < self.hot_threshold / self.hysteresis)
        )
        if demote_mask.any():
            released = payloads[demote_mask]
            self.sketch.payloads[demote_mask] = NO_PAYLOAD
            self._release_rows(released)

        if not self._free_rows:
            return

        promote_mask = occupied & (payloads == NO_PAYLOAD) & (scores >= self.hot_threshold)
        if not promote_mask.any():
            return
        buckets, slots = np.nonzero(promote_mask)
        order = np.argsort(scores[buckets, slots])[::-1]
        for index in order:
            if not self._free_rows:
                break
            bucket, slot = int(buckets[index]), int(slots[index])
            row = self._free_rows.pop()
            feature = int(keys[bucket, slot])
            self.sketch.payloads[bucket, slot] = row
            self.hot_table[row] = self._shared_lookup(np.asarray([feature]))[0]
            self._hot_optimizer.reset_rows(np.asarray([row]))
            self.migrations_in += 1

"""Micro-benchmarks tracking the embedding hot path PR over PR."""

from repro.bench.embedding_bench import (
    DEFAULT_OUTPUT,
    BenchConfig,
    bench_cafe_train_step,
    bench_hash_train_step,
    bench_hotsketch_insert,
    make_workload,
    run_benchmarks,
    write_report,
)

__all__ = [
    "DEFAULT_OUTPUT",
    "BenchConfig",
    "bench_cafe_train_step",
    "bench_hash_train_step",
    "bench_hotsketch_insert",
    "make_workload",
    "run_benchmarks",
    "write_report",
]

"""Micro-benchmarks tracking the embedding hot path PR over PR."""

from repro.bench.embedding_bench import (
    BENCH_DOCS,
    DEFAULT_OUTPUT,
    BenchConfig,
    bench_cafe_train_step,
    bench_hash_train_step,
    bench_hotsketch_insert,
    make_workload,
    run_benchmarks,
    write_report,
)
from repro.bench.group_bench import bench_table_group
from repro.bench.runtime_bench import bench_online_pipeline, bench_shard_parallel

__all__ = [
    "BENCH_DOCS",
    "DEFAULT_OUTPUT",
    "BenchConfig",
    "bench_cafe_train_step",
    "bench_hash_train_step",
    "bench_hotsketch_insert",
    "make_workload",
    "run_benchmarks",
    "write_report",
    "bench_shard_parallel",
    "bench_online_pipeline",
    "bench_table_group",
]

"""Benchmarks for the sharded store and the snapshot serving path.

Two sections feed ``BENCH_embedding.json``:

* ``shard_scaling`` — embedding train-step throughput of a
  :class:`~repro.store.sharded.ShardedEmbeddingStore` at increasing shard
  counts, per backend **and per executor** (``serial`` / ``threads`` /
  ``processes``).  The serial rows measure partitioning overhead; the
  threaded rows are honestly GIL-bound (CPU work serializes, so expect
  ≈ 1.0 or below); the process rows are where real scaling can appear —
  each shard lives in a pinned worker with shared-memory tables, so on a
  machine with enough cores the N-shard store approaches N× one shard.
  The section's ``gate`` object records the acceptance metric (process
  executor, hash backend, 4 shards vs 1) alongside the host ``cpu_count``
  so a reader can tell a real regression from a core-starved runner.
* ``serving`` — request throughput and p50/p95/p99 latency of the
  micro-batching engine over a copy-on-write store snapshot, at several
  micro-batch sizes.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.models.dlrm import DLRM
from repro.runtime.executor import create_executor
from repro.serving.engine import ServingEngine
from repro.store import ShardedEmbeddingStore
from repro.utils.zipf import ZipfDistribution

#: Fields of the synthetic serving model (numerical-free DLRM).
SERVING_FIELDS = 4


#: Executors the scaling benchmark sweeps; each gets its own 1-shard baseline.
SCALING_EXECUTORS = ("serial", "threads", "processes")

#: The acceptance gate: process-executor speedup at this shard count vs 1.
GATE_SHARDS = 4
GATE_THRESHOLD = 2.0

#: The gradient-exchange gate: dense / sketched payload bytes per step at
#: :data:`GATE_SHARDS` shards must reach this reduction factor.
GRAD_EXCHANGE_THRESHOLD = 2.0


def _shard_scaling_gate(
    measured: dict[tuple[str, str, int], float],
    methods: tuple[str, ...],
) -> dict:
    """The ``gate`` object recorded next to the shard-scaling rows.

    ``measured`` maps ``(method, executor, num_shards) -> seconds/step``.
    The gate compares the process executor at :data:`GATE_SHARDS` shards
    against its own 1-shard baseline, per method; ``cpu_constrained`` flags
    hosts that physically cannot reach the threshold (fewer cores than
    shards), which is how CI distinguishes "regression" from "small runner".
    """
    cpu_count = os.cpu_count() or 1
    per_method = {}
    for method in methods:
        base = measured.get((method, "processes", 1))
        scaled = measured.get((method, "processes", GATE_SHARDS))
        if base is None or scaled is None:
            continue
        per_method[method] = {"speedup_vs_one_shard": round(base / scaled, 3)}
    hash_entry = per_method.get("hash")
    measured_speedup = hash_entry["speedup_vs_one_shard"] if hash_entry else None
    return {
        "metric": f"hash shards={GATE_SHARDS} processes speedup vs 1 shard",
        "executor": "processes",
        "num_shards": GATE_SHARDS,
        "threshold": GATE_THRESHOLD,
        "measured": measured_speedup,
        "cpu_count": cpu_count,
        "cpu_constrained": cpu_count < GATE_SHARDS,
        "passed": measured_speedup is not None and measured_speedup >= GATE_THRESHOLD,
        "per_method": per_method,
    }


def bench_shard_scaling(
    config,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    methods: tuple[str, ...] = ("hash", "cafe"),
    executors: tuple[str, ...] = SCALING_EXECUTORS,
) -> dict:
    """Train-step throughput per backend, executor and shard count."""
    from repro.bench.embedding_bench import make_workload, time_train_steps

    if config.smoke:
        shard_counts = tuple(s for s in shard_counts if s <= 2)
    ids, grads = make_workload(config)
    rows = []
    measured: dict[tuple[str, str, int], float] = {}
    for method in methods:
        for executor_kind in executors:
            baseline_seconds = None
            for num_shards in shard_counts:
                store = ShardedEmbeddingStore.build(
                    method,
                    num_features=config.num_features,
                    dim=config.dim,
                    num_shards=num_shards,
                    compression_ratio=config.compression_ratio,
                    seed=config.seed,
                    dtype=config.dtype,
                    executor=create_executor(executor_kind),
                )
                try:
                    seconds = time_train_steps(store, ids, grads, config.warmup_steps)
                finally:
                    store.executor.close()
                if baseline_seconds is None:
                    baseline_seconds = seconds
                measured[(method, executor_kind, num_shards)] = seconds
                rows.append(
                    {
                        "method": method,
                        "executor": executor_kind,
                        "num_shards": num_shards,
                        "steps_per_s": round(1.0 / seconds, 2),
                        "rows_per_s": round(config.batch_size / seconds, 1),
                        # vs the same executor's 1-shard run; < 1 means the
                        # partition pass (or the fan-out) costs throughput.
                        "relative_throughput": round(baseline_seconds / seconds, 3),
                        "plan_reuse_rate": store.plan_stats.reuse_rate,
                    }
                )
    return {
        "shard_counts": list(shard_counts),
        "executors": list(executors),
        "rows": rows,
        "gate": _shard_scaling_gate(measured, methods),
        "grad_exchange": bench_grad_exchange(config),
    }


def bench_grad_exchange(
    config, num_shards: int = GATE_SHARDS, max_steps: int = 8
) -> dict:
    """Exchange payload bytes per train step, dense vs sketched, same workload.

    The byte accounting is the payload size crossing the trainer→shard
    boundary (``ExecutorStats.record_grad_exchange``) — actual shm traffic
    under the process executor, the identically-sized in-process handoff
    otherwise — so a serial run measures the same number the process runtime
    ships, without paying worker startup in the benchmark.
    """
    from repro.bench.embedding_bench import make_workload

    ids, grads = make_workload(config)
    steps = min(ids.shape[0], max_steps)
    rows = []
    measured: dict[str, float] = {}
    for mode in ("dense", "sketched"):
        store = ShardedEmbeddingStore.build(
            "hash",
            num_features=config.num_features,
            dim=config.dim,
            num_shards=num_shards,
            compression_ratio=config.compression_ratio,
            seed=config.seed,
            dtype=config.dtype,
            grad_exchange=mode,
        )
        try:
            for step in range(steps):
                store.lookup(ids[step])
                store.apply_gradients(ids[step], grads[step])
            bytes_per_step = store.executor.stats.grad_bytes_per_step
        finally:
            store.executor.close()
        measured[mode] = bytes_per_step
        rows.append(
            {
                "mode": mode,
                "num_shards": num_shards,
                "steps": steps,
                "grad_bytes_per_step": round(bytes_per_step, 1),
            }
        )
    reduction = (
        round(measured["dense"] / measured["sketched"], 3)
        if measured.get("sketched")
        else None
    )
    return {
        "rows": rows,
        "gate": {
            "metric": (
                f"dense / sketched grad_bytes_per_step at {num_shards} shards"
            ),
            "num_shards": num_shards,
            "threshold": GRAD_EXCHANGE_THRESHOLD,
            "measured": reduction,
            "passed": reduction is not None and reduction >= GRAD_EXCHANGE_THRESHOLD,
        },
    }


def bench_serving_throughput(
    config,
    micro_batches: tuple[int, ...] = (1, 16, 64, 256),
    num_shards: int = 2,
    warmup_requests: int = 32,
) -> dict:
    """Requests/s and tail latency of snapshot serving per micro-batch size."""
    if config.smoke:
        micro_batches = tuple(m for m in micro_batches if m <= 64)
    num_requests = min(config.steps * config.batch_size, 2048 if config.smoke else 8192)
    zipf = ZipfDistribution(config.num_features, config.zipf_exponent)
    categorical = zipf.sample(num_requests * SERVING_FIELDS, rng=config.seed + 5)
    categorical = categorical.reshape(num_requests, SERVING_FIELDS)

    store = ShardedEmbeddingStore.build(
        "cafe",
        num_features=config.num_features,
        dim=config.dim,
        num_shards=num_shards,
        compression_ratio=config.compression_ratio,
        seed=config.seed,
        dtype=config.dtype,
    )
    model = DLRM(store, num_fields=SERVING_FIELDS, num_numerical=0, rng=config.seed)

    rows = []
    for micro_batch in micro_batches:
        engine = ServingEngine(model, max_batch_size=micro_batch)
        for row in range(min(warmup_requests, num_requests)):
            engine.submit(categorical[row])
        engine.flush()
        engine.latency.reset()

        start = time.perf_counter()
        for row in range(num_requests):
            engine.submit(categorical[row])
        engine.flush()
        elapsed = time.perf_counter() - start

        stats = engine.latency.summary()
        rows.append(
            {
                "micro_batch": micro_batch,
                "requests_per_s": round(num_requests / elapsed, 1),
                "p50_ms": stats["p50_ms"],
                "p95_ms": stats["p95_ms"],
                "p99_ms": stats["p99_ms"],
            }
        )
    return {"num_shards": num_shards, "requests": int(num_requests), "rows": rows}

"""Benchmarks for the sharded store and the snapshot serving path.

Two sections feed ``BENCH_embedding.json``:

* ``shard_scaling`` — embedding train-step throughput of a
  :class:`~repro.store.sharded.ShardedEmbeddingStore` at increasing shard
  counts, per backend.  In-process sharding buys no parallelism (the shards
  run sequentially on one core), so the interesting quantity is the
  *overhead* of partitioning: how close an N-shard store stays to the
  single-shard baseline that PR 1 optimized.
* ``serving`` — request throughput and p50/p95/p99 latency of the
  micro-batching engine over a copy-on-write store snapshot, at several
  micro-batch sizes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.dlrm import DLRM
from repro.serving.engine import ServingEngine
from repro.store import ShardedEmbeddingStore
from repro.utils.zipf import ZipfDistribution

#: Fields of the synthetic serving model (numerical-free DLRM).
SERVING_FIELDS = 4


def bench_shard_scaling(
    config,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    methods: tuple[str, ...] = ("hash", "cafe"),
) -> dict:
    """Train-step throughput of the sharded store per backend and shard count."""
    from repro.bench.embedding_bench import make_workload, _time_train_steps

    if config.smoke:
        shard_counts = tuple(s for s in shard_counts if s <= 2)
    ids, grads = make_workload(config)
    rows = []
    for method in methods:
        baseline_seconds = None
        for num_shards in shard_counts:
            store = ShardedEmbeddingStore.build(
                method,
                num_features=config.num_features,
                dim=config.dim,
                num_shards=num_shards,
                compression_ratio=config.compression_ratio,
                seed=config.seed,
                dtype=config.dtype,
            )
            seconds = _time_train_steps(store, ids, grads, config.warmup_steps)
            if baseline_seconds is None:
                baseline_seconds = seconds
            rows.append(
                {
                    "method": method,
                    "num_shards": num_shards,
                    "steps_per_s": round(1.0 / seconds, 2),
                    "rows_per_s": round(config.batch_size / seconds, 1),
                    # < 1 means the partition pass costs throughput vs 1 shard.
                    "relative_throughput": round(baseline_seconds / seconds, 3),
                    "plan_reuse_rate": store.plan_stats.reuse_rate,
                }
            )
    return {"shard_counts": list(shard_counts), "rows": rows}


def bench_serving_throughput(
    config,
    micro_batches: tuple[int, ...] = (1, 16, 64, 256),
    num_shards: int = 2,
    warmup_requests: int = 32,
) -> dict:
    """Requests/s and tail latency of snapshot serving per micro-batch size."""
    if config.smoke:
        micro_batches = tuple(m for m in micro_batches if m <= 64)
    num_requests = min(config.steps * config.batch_size, 2048 if config.smoke else 8192)
    zipf = ZipfDistribution(config.num_features, config.zipf_exponent)
    categorical = zipf.sample(num_requests * SERVING_FIELDS, rng=config.seed + 5)
    categorical = categorical.reshape(num_requests, SERVING_FIELDS)

    store = ShardedEmbeddingStore.build(
        "cafe",
        num_features=config.num_features,
        dim=config.dim,
        num_shards=num_shards,
        compression_ratio=config.compression_ratio,
        seed=config.seed,
        dtype=config.dtype,
    )
    model = DLRM(store, num_fields=SERVING_FIELDS, num_numerical=0, rng=config.seed)

    rows = []
    for micro_batch in micro_batches:
        engine = ServingEngine(model, max_batch_size=micro_batch)
        for row in range(min(warmup_requests, num_requests)):
            engine.submit(categorical[row])
        engine.flush()
        engine.latency.reset()

        start = time.perf_counter()
        for row in range(num_requests):
            engine.submit(categorical[row])
        engine.flush()
        elapsed = time.perf_counter() - start

        stats = engine.latency.summary()
        rows.append(
            {
                "micro_batch": micro_batch,
                "requests_per_s": round(num_requests / elapsed, 1),
                "p50_ms": stats["p50_ms"],
                "p95_ms": stats["p95_ms"],
                "p99_ms": stats["p99_ms"],
            }
        )
    return {"num_shards": num_shards, "requests": int(num_requests), "rows": rows}

"""CLI entry point: ``python -m repro.bench [--smoke] [--output PATH]``."""

from __future__ import annotations

import argparse
import json

from repro.bench.embedding_bench import (
    BENCH_DOCS,
    DEFAULT_OUTPUT,
    BenchConfig,
    run_benchmarks,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Embedding hot-path micro-benchmarks (writes BENCH_embedding.json)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workload: small batches, few steps")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"report path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--steps", type=int, default=None, help="timed steps per benchmark")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--num-features", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--dtype", default=None, choices=["float32", "float64"])
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    overrides = {
        key: value
        for key, value in {
            "steps": args.steps,
            "batch_size": args.batch_size,
            "num_features": args.num_features,
            "dim": args.dim,
            "dtype": args.dtype,
            "seed": args.seed,
        }.items()
        if value is not None
    }
    try:
        config = BenchConfig.smoke_config(**overrides) if args.smoke else BenchConfig(**overrides)
    except ValueError as exc:
        parser.error(str(exc))
    report = run_benchmarks(config)
    try:
        path = write_report(report, args.output)
    except OSError as exc:
        print(json.dumps(report, indent=2))
        parser.error(f"cannot write report to '{args.output}': {exc}")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")
    print(f"envelope schema and how to compare runs: {BENCH_DOCS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Classic SpaceSaving (Metwally et al., 2005).

HotSketch is derived from SpaceSaving by dropping the global sorted structure
and hash index in favour of hashed buckets.  The exact algorithm is kept here
as (a) an accuracy reference for the HotSketch evaluation (Figure 18) and (b)
a reusable top-k component for the data-analysis utilities.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.sketch.base import Sketch


@dataclass(order=True)
class _Entry:
    score: float
    key: int = field(compare=False)
    valid: bool = field(default=True, compare=False)


class SpaceSaving(Sketch):
    """Exact SpaceSaving with ``capacity`` monitored keys.

    Implemented with a dictionary plus a lazily-rebuilt min-heap, which gives
    amortized O(log capacity) updates — not the O(1) Stream-Summary of the
    original paper, but functionally identical estimates, which is all the
    comparison experiments need.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._scores: dict[int, float] = {}
        self._heap: list[_Entry] = []
        self._entries: dict[int, _Entry] = {}

    def _push(self, key: int, score: float) -> None:
        entry = _Entry(score=score, key=key)
        self._entries[key] = entry
        heapq.heappush(self._heap, entry)

    def _invalidate(self, key: int) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry.valid = False

    def _pop_min(self) -> tuple[int, float]:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.valid and entry.key in self._scores:
                return entry.key, self._scores[entry.key]
        raise RuntimeError("SpaceSaving heap unexpectedly empty")  # pragma: no cover

    def insert(self, keys: np.ndarray, scores: np.ndarray | None = None) -> None:
        keys, scores = self._normalize_inputs(keys, scores)
        for key, score in zip(keys.tolist(), scores.tolist()):
            if key in self._scores:
                self._scores[key] += score
                self._invalidate(key)
                self._push(key, self._scores[key])
            elif len(self._scores) < self.capacity:
                self._scores[key] = score
                self._push(key, score)
            else:
                min_key, min_score = self._pop_min()
                del self._scores[min_key]
                self._invalidate(min_key)
                self._scores[key] = min_score + score
                self._push(key, min_score + score)

    def query(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        flat = keys.reshape(-1)
        out = np.asarray([self._scores.get(int(k), 0.0) for k in flat], dtype=np.float64)
        return out.reshape(keys.shape)

    def top_k(self, k: int) -> np.ndarray:
        ordered = sorted(self._scores.items(), key=lambda item: item[1], reverse=True)
        return np.asarray([key for key, _ in ordered[:k]], dtype=np.int64)

    def memory_floats(self) -> int:
        # Key + score + the hash-table/linked-list overhead the paper calls
        # out (it "doubles the memory usage"): 4 attributes per monitored key.
        return int(self.capacity * 4)

"""Common interface for streaming sketches."""

from __future__ import annotations

import numpy as np

from repro.kernels.ops import segment_boundaries, stable_order


class Sketch:
    """Base class for frequency / importance sketches over integer keys.

    All sketches in this package support batched insertion of ``(key, score)``
    pairs and batched point queries, because the training loop feeds them one
    mini-batch of feature ids at a time.
    """

    def insert(self, keys: np.ndarray, scores: np.ndarray | None = None) -> None:
        """Add ``scores`` (default: 1 per key) to the recorded keys."""
        raise NotImplementedError  # pragma: no cover - abstract

    def query(self, keys: np.ndarray) -> np.ndarray:
        """Return the estimated score of each key."""
        raise NotImplementedError  # pragma: no cover - abstract

    def memory_floats(self) -> int:
        """Memory footprint expressed in float32-equivalent parameter slots.

        The paper's §5.1.4 counts auxiliary structures towards the memory
        budget; expressing every structure in the same unit (one float32)
        keeps the compression-ratio accounting comparable across methods.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    @staticmethod
    def _normalize_inputs(
        keys: np.ndarray, scores: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if scores is None:
            scores = np.ones(keys.shape[0], dtype=np.float64)
        else:
            scores = np.asarray(scores, dtype=np.float64).reshape(-1)
            if scores.shape[0] != keys.shape[0]:
                raise ValueError(
                    f"keys and scores must have the same length, got {keys.shape[0]} and {scores.shape[0]}"
                )
        return keys, scores

    @staticmethod
    def aggregate_duplicates(keys: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sum scores of duplicate keys; returns unique keys and their totals.

        Totals are formed by a stable key sort followed by a segment sum
        (``np.add.reduceat``), summing each key's scores in input order.
        This is the same aggregation the fused embedding path performs from
        its routing plan, which keeps the two bit-exact with each other.
        """
        if keys.shape[0] == 0:
            return keys, scores
        order = stable_order(keys)
        unique_keys, starts = segment_boundaries(keys[order])
        totals = np.add.reduceat(scores[order], starts)
        return unique_keys, totals

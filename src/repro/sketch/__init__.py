"""Streaming sketches: HotSketch (the paper's contribution) plus references."""

from repro.sketch.analysis import (
    expected_bucket_noise,
    optimal_slots_per_bucket,
    retention_probability_grid,
    retention_probability_uniform,
    retention_probability_zipf,
)
from repro.sketch.base import Sketch
from repro.sketch.cm_sketch import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.csvec import CSVec
from repro.sketch.decay import DecaySchedule, NoDecay, PeriodicDecay
from repro.sketch.hotsketch import EMPTY_KEY, NO_PAYLOAD, EvictionBatch, HotSketch
from repro.sketch.spacesaving import SpaceSaving

__all__ = [
    "Sketch",
    "HotSketch",
    "EvictionBatch",
    "EMPTY_KEY",
    "NO_PAYLOAD",
    "SpaceSaving",
    "CountMinSketch",
    "CountSketch",
    "CSVec",
    "DecaySchedule",
    "NoDecay",
    "PeriodicDecay",
    "retention_probability_uniform",
    "retention_probability_zipf",
    "retention_probability_grid",
    "optimal_slots_per_bucket",
    "expected_bucket_noise",
]

"""Analytical results from the paper's Section 3.5.1.

These functions evaluate the probability bounds of Theorems 3.1 and 3.3 and
the optimal slots-per-bucket rule of Corollary 3.5 so the numerical analysis
of Figure 7 can be regenerated and the HotSketch configuration choices can be
validated against theory in tests and benchmarks.
"""

from __future__ import annotations

import numpy as np


def retention_probability_uniform(gamma: float, num_buckets: int, slots_per_bucket: int) -> float:
    """Theorem 3.1: lower bound on holding a feature with score ≥ γ‖a‖₁.

    No distribution assumption; the bound is ``1 - (1-γ) / ((c-1) γ w)`` and is
    clipped to [0, 1].
    """
    _validate(gamma, num_buckets, slots_per_bucket)
    bound = 1.0 - (1.0 - gamma) / ((slots_per_bucket - 1) * gamma * num_buckets)
    return float(np.clip(bound, 0.0, 1.0))


def retention_probability_zipf(
    gamma: float,
    zipf_exponent: float,
    num_buckets: int,
    slots_per_bucket: int,
    eta_grid: np.ndarray | None = None,
) -> float:
    """Theorem 3.3: lower bound under a Zipf(z) score distribution.

    The theorem states ``Pr > sup_{η>0} 3^{-η} (1 - η / ((c-1) γ (η w)^z))``;
    the supremum is approximated by maximizing over ``eta_grid``.
    """
    _validate(gamma, num_buckets, slots_per_bucket)
    if zipf_exponent <= 1.0:
        raise ValueError(f"the Zipf bound requires z > 1, got {zipf_exponent}")
    if eta_grid is None:
        eta_grid = np.logspace(-4, 2, 2000)
    eta = np.asarray(eta_grid, dtype=np.float64)
    eta = eta[eta > 0]
    values = 3.0**-eta * (
        1.0
        - eta / ((slots_per_bucket - 1) * gamma * (eta * num_buckets) ** zipf_exponent)
    )
    return float(np.clip(values.max(), 0.0, 1.0))


def retention_probability_grid(
    gammas: np.ndarray,
    zipf_exponents: np.ndarray,
    num_buckets: int,
    slots_per_bucket: int,
) -> np.ndarray:
    """Evaluate Theorem 3.3 over a (z, γ) grid — the data behind Figure 7.

    Returns an array of shape ``(len(zipf_exponents), len(gammas))`` matching
    the figure's orientation (skewness on the y-axis, hotness on the x-axis).
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    zipf_exponents = np.asarray(zipf_exponents, dtype=np.float64)
    grid = np.zeros((zipf_exponents.size, gammas.size))
    for i, z in enumerate(zipf_exponents):
        for j, gamma in enumerate(gammas):
            grid[i, j] = retention_probability_zipf(gamma, z, num_buckets, slots_per_bucket)
    return grid


def optimal_slots_per_bucket(zipf_exponent: float) -> float:
    """Corollary 3.5: the recommended ``c* = 1 + 1/(z-1)`` for Zipf(z) data."""
    if zipf_exponent <= 1.0:
        raise ValueError(f"the optimal-c rule requires z > 1, got {zipf_exponent}")
    return 1.0 + 1.0 / (zipf_exponent - 1.0)


def expected_bucket_noise(
    total_score: float, num_hot: int, zipf_exponent: float, num_buckets: int
) -> float:
    """Lemma 3.2: expected non-hot score mass landing in one bucket.

    ``E[f̂] ≤ ‖a‖₁ · k'^(1-z) / w`` for ``z > 1``.
    """
    if zipf_exponent <= 1.0:
        raise ValueError(f"the bucket-noise bound requires z > 1, got {zipf_exponent}")
    if num_hot <= 0 or num_buckets <= 0:
        raise ValueError("num_hot and num_buckets must be positive")
    return float(total_score * num_hot ** (1.0 - zipf_exponent) / num_buckets)


def _validate(gamma: float, num_buckets: int, slots_per_bucket: int) -> None:
    if not 0 < gamma < 1:
        raise ValueError(f"gamma must be in (0, 1), got {gamma}")
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    if slots_per_bucket <= 1:
        raise ValueError(f"slots_per_bucket must exceed 1 for the bounds, got {slots_per_bucket}")

"""HotSketch: the bucketized SpaceSaving sketch at the heart of CAFE.

The structure (paper §3.2) is an array of ``w`` buckets with ``c`` slots each.
Every slot stores a feature id and its accumulated importance score; a single
hash places each feature in one bucket.  Insertion follows SpaceSaving
semantics *within the bucket*:

1. if the feature is already recorded, add its score;
2. else, if the bucket has an empty slot, claim it;
3. else, overwrite the slot with the minimum score and add the new score on
   top of the old one (the classic SpaceSaving over-estimate).

On top of the basic sketch this implementation adds the pieces CAFE needs:

* an optional *payload* per slot (CAFE stores the pointer to the feature's
  exclusive embedding row there, exactly as described in §3.1);
* eviction reporting, so the embedding layer can reclaim rows whose owner was
  pushed out of the sketch;
* periodic score decay (§3.3) to track shifting distributions;
* hot / medium classification thresholds (§3.3, §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.ops import stable_order
from repro.sketch.base import Sketch
from repro.utils.hashing import hash_to_bucket

EMPTY_KEY = np.int64(-1)
NO_PAYLOAD = np.int64(-1)

#: Word views for per-row boolean reductions, keyed by row width in bytes.
_ROW_VIEW_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _row_any(matrix: np.ndarray) -> np.ndarray:
    """``matrix.any(axis=1)`` for a small-width C-contiguous bool matrix.

    numpy's boolean ``any`` reduction over a tiny trailing axis costs ~10x a
    flat compare; viewing each row's bytes as one unsigned word and testing
    it against zero gives the same answer in a single vectorized pass.
    Falls back to ``any`` for widths without a matching word dtype.
    """
    dtype = _ROW_VIEW_DTYPES.get(matrix.shape[1] if matrix.ndim == 2 else 0)
    if dtype is None or not matrix.flags.c_contiguous:
        return matrix.any(axis=1)
    return matrix.view(dtype).ravel() != 0


@dataclass
class EvictionBatch:
    """Features displaced from the sketch during one insert call."""

    keys: np.ndarray
    payloads: np.ndarray

    def __len__(self) -> int:
        return int(self.keys.shape[0])


class HotSketch(Sketch):
    """Bucketized SpaceSaving sketch for tracking feature importance.

    Parameters
    ----------
    num_buckets:
        ``w`` in the paper.  The CAFE implementation sets this to the number
        of exclusive (hot) embedding rows.
    slots_per_bucket:
        ``c`` in the paper; 4 by default, following §4.
    hot_threshold:
        Importance score above which a feature is reported as *hot*.
    medium_threshold:
        Optional lower threshold for the multi-level variant (§3.4); features
        with scores in ``[medium_threshold, hot_threshold)`` are *medium*.
    decay:
        Multiplicative decay applied to all scores by :meth:`apply_decay`
        (typically called every ``decay_interval`` insertions by the caller).
    seed:
        Seed of the bucket hash function.
    """

    def __init__(
        self,
        num_buckets: int,
        slots_per_bucket: int = 4,
        hot_threshold: float = 500.0,
        medium_threshold: float | None = None,
        decay: float = 1.0,
        seed: int = 0,
    ):
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        if slots_per_bucket <= 0:
            raise ValueError(f"slots_per_bucket must be positive, got {slots_per_bucket}")
        if hot_threshold <= 0:
            raise ValueError(f"hot_threshold must be positive, got {hot_threshold}")
        if medium_threshold is not None and not 0 < medium_threshold <= hot_threshold:
            raise ValueError("medium_threshold must lie in (0, hot_threshold]")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")

        self.num_buckets = int(num_buckets)
        self.slots_per_bucket = int(slots_per_bucket)
        self.hot_threshold = float(hot_threshold)
        self.medium_threshold = float(medium_threshold) if medium_threshold is not None else None
        self.decay = float(decay)
        self.seed = int(seed)

        shape = (self.num_buckets, self.slots_per_bucket)
        self.keys = np.full(shape, EMPTY_KEY, dtype=np.int64)
        self.scores = np.zeros(shape, dtype=np.float64)
        self.payloads = np.full(shape, NO_PAYLOAD, dtype=np.int64)
        self.total_insertions = 0

    # ------------------------------------------------------------------ #
    # Core sketch operations
    # ------------------------------------------------------------------ #
    def insert(self, keys: np.ndarray, scores: np.ndarray | None = None) -> EvictionBatch:
        """Insert a batch of ``(key, score)`` pairs.

        Duplicate keys within the batch are aggregated first (their scores are
        summed), which both matches the logical stream semantics and makes the
        per-bucket work proportional to the number of distinct features per
        batch.  Returns the features evicted by SpaceSaving replacement along
        with their payloads so the caller can release external resources.
        """
        keys, scores = self._normalize_inputs(keys, scores)
        if keys.size == 0:
            return EvictionBatch(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        keys, scores = self.aggregate_duplicates(keys, scores)
        self.total_insertions += int(keys.size)

        buckets = hash_to_bucket(keys, self.num_buckets, seed=self.seed)

        # Phase 1 (vectorized): add scores of features already present.
        slot_match = np.take(self.keys, buckets, axis=0) == keys[:, None]  # (n, c)
        found = _row_any(slot_match)
        if found.any():
            slot_idx = slot_match[found].argmax(axis=1)
            np.add.at(self.scores, (buckets[found], slot_idx), scores[found])

        missing = ~found
        if not missing.any():
            return EvictionBatch(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        return self._insert_misses(keys[missing], scores[missing], buckets[missing])

    def insert_routed(
        self,
        keys: np.ndarray,
        scores: np.ndarray,
        found: np.ndarray,
        buckets: np.ndarray,
        slots: np.ndarray,
        kernels=None,
    ) -> EvictionBatch:
        """Insert pre-aggregated, pre-located ``(key, score)`` pairs.

        The fused embedding path already holds the locate results of the
        current batch in its routing plan (and the plan token guarantees the
        sketch has not mutated since they were taken), so re-probing here
        would be pure waste.  ``keys`` must be unique, sorted ascending, with
        summed float64 scores; ``(found, buckets, slots)`` must equal
        ``self.locate(keys)`` against the sketch's current state.  Produces
        bit-identical state to :meth:`insert` on the equivalent raw stream.

        ``kernels`` is an optional :class:`~repro.kernels.KernelBackend`
        whose ``sketch_insert`` applies the found-slot score adds.
        """
        if keys.shape[0] == 0:
            return EvictionBatch(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        self.total_insertions += int(keys.shape[0])

        if found.any():
            lin = buckets[found] * self.slots_per_bucket + slots[found]
            add = scores[found]
            if kernels is None:
                self.scores.ravel()[lin] += add
            else:
                kernels.sketch_insert(self.scores.ravel(), lin, add)

        missing = ~found
        if not missing.any():
            return EvictionBatch(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        return self._insert_misses(keys[missing], scores[missing], buckets[missing])

    def _insert_misses(
        self, keys: np.ndarray, scores: np.ndarray, buckets: np.ndarray
    ) -> EvictionBatch:
        """Empty-slot claim / SpaceSaving replacement for keys not yet recorded.

        Misses are grouped by bucket and processed in *rounds*: round ``r``
        handles the ``r``-th miss of every bucket simultaneously, so each
        round touches distinct buckets and is fully vectorized (segmented
        empty-slot claim, then argmin replacement for full buckets).  The
        number of rounds is the maximum number of misses sharing one bucket
        in this batch — typically 1 — not the number of keys.  The steady
        state (no empty slots, nothing reportable rarely skipped) takes the
        branch-free fast paths: round 0 selects via the segment starts
        directly, and all slot state is addressed through flat views.
        """
        c = self.slots_per_bucket
        order = stable_order(buckets)
        keys, scores, buckets = keys[order], scores[order], buckets[order]
        n = buckets.shape[0]
        new_segment = np.empty(n, dtype=bool)
        new_segment[0] = True
        np.not_equal(buckets[1:], buckets[:-1], out=new_segment[1:])
        segment_starts = np.flatnonzero(new_segment)

        # Misses sharing a bucket sit consecutively after the sort, so the
        # ``r``-th miss of each segment lives at ``segment_starts + r`` where
        # the segment is long enough; no per-element rank array is needed.
        counts = None
        rounds = 1
        if segment_starts.shape[0] != n:
            counts = np.diff(segment_starts, append=n)
            rounds = int(counts.max())

        flat_keys = self.keys.ravel()
        flat_scores = self.scores.ravel()
        flat_payloads = self.payloads.ravel()

        evicted_keys: list[np.ndarray] = []
        evicted_payloads: list[np.ndarray] = []
        for rank in range(rounds):
            sel = segment_starts if rank == 0 else segment_starts[counts > rank] + rank
            bucket = buckets[sel]  # distinct buckets within one round
            score = scores[sel]

            empty = np.take(self.keys, bucket, axis=0) == EMPTY_KEY  # (m, c)
            has_empty = _row_any(empty)
            any_empty = bool(has_empty.any())
            # First empty slot where available, minimum-score slot otherwise.
            if any_empty:
                slot = np.where(
                    has_empty,
                    empty.argmax(axis=1),
                    np.take(self.scores, bucket, axis=0).argmin(axis=1),
                )
            else:
                slot = np.take(self.scores, bucket, axis=0).argmin(axis=1)
            lin = bucket * c + slot

            old_payloads = flat_payloads[lin]
            if any_empty:
                reportable = ~has_empty & (old_payloads != NO_PAYLOAD)
            else:
                reportable = old_payloads != NO_PAYLOAD
            if reportable.any():
                evicted_keys.append(flat_keys[lin[reportable]].copy())
                evicted_payloads.append(old_payloads[reportable].copy())

            # SpaceSaving: a replacement inherits the displaced minimum score.
            if any_empty:
                flat_scores[lin] = np.where(has_empty, score, flat_scores[lin] + score)
            else:
                flat_scores[lin] += score
            flat_keys[lin] = keys[sel]
            flat_payloads[lin] = NO_PAYLOAD

        if not evicted_keys:
            return EvictionBatch(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        return EvictionBatch(np.concatenate(evicted_keys), np.concatenate(evicted_payloads))

    def query(self, keys: np.ndarray) -> np.ndarray:
        """Estimated importance score for each key (0 if not recorded)."""
        keys = np.asarray(keys, dtype=np.int64)
        flat = keys.reshape(-1)
        buckets = hash_to_bucket(flat, self.num_buckets, seed=self.seed)
        slot_match = np.take(self.keys, buckets, axis=0) == flat[:, None]
        scores = np.where(slot_match, np.take(self.scores, buckets, axis=0), 0.0).max(axis=1)
        scores = np.where(_row_any(slot_match), scores, 0.0)
        return scores.reshape(keys.shape)

    def locate(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(found, buckets, slots)`` for each key.

        ``slots`` is only meaningful where ``found`` is True.  This is the
        low-level accessor the CAFE embedding layer uses to read and write
        slot payloads in bulk.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        buckets = hash_to_bucket(keys, self.num_buckets, seed=self.seed)
        slot_match = np.take(self.keys, buckets, axis=0) == keys[:, None]
        found = _row_any(slot_match)
        slots = slot_match.argmax(axis=1)
        return found, buckets, slots

    # ------------------------------------------------------------------ #
    # Payload management (embedding pointers)
    # ------------------------------------------------------------------ #
    def get_payloads(self, keys: np.ndarray) -> np.ndarray:
        """Payload of each key, or ``NO_PAYLOAD`` when absent/unset."""
        found, buckets, slots = self.locate(keys)
        payloads = np.where(found, self.payloads[buckets, slots], NO_PAYLOAD)
        return payloads

    def set_payload(self, key: int, payload: int) -> bool:
        """Attach ``payload`` to ``key``'s slot; returns False if absent."""
        found, buckets, slots = self.locate(np.asarray([key]))
        if not found[0]:
            return False
        self.payloads[buckets[0], slots[0]] = np.int64(payload)
        return True

    def clear_payload(self, key: int) -> int:
        """Remove and return ``key``'s payload (``NO_PAYLOAD`` if none)."""
        found, buckets, slots = self.locate(np.asarray([key]))
        if not found[0]:
            return int(NO_PAYLOAD)
        old = int(self.payloads[buckets[0], slots[0]])
        self.payloads[buckets[0], slots[0]] = NO_PAYLOAD
        return old

    # ------------------------------------------------------------------ #
    # Classification, decay, reporting
    # ------------------------------------------------------------------ #
    def classify(self, keys: np.ndarray) -> np.ndarray:
        """Classify keys: 2 = hot, 1 = medium, 0 = cold.

        Medium exists only when ``medium_threshold`` was configured; otherwise
        the result contains only 0 and 2.
        """
        scores = self.query(keys)
        labels = np.zeros(scores.shape, dtype=np.int8)
        if self.medium_threshold is not None:
            labels[scores >= self.medium_threshold] = 1
        labels[scores >= self.hot_threshold] = 2
        return labels

    def is_hot(self, keys: np.ndarray) -> np.ndarray:
        return self.query(keys) >= self.hot_threshold

    def apply_decay(self) -> None:
        """Multiply every recorded score by the decay coefficient (§3.3)."""
        if self.decay < 1.0:
            self.scores *= self.decay

    def hot_features(self) -> tuple[np.ndarray, np.ndarray]:
        """All recorded features with score ≥ hot threshold, with scores."""
        mask = (self.keys != EMPTY_KEY) & (self.scores >= self.hot_threshold)
        return self.keys[mask], self.scores[mask]

    def top_k(self, k: int) -> np.ndarray:
        """The ``k`` recorded features with the largest scores."""
        mask = self.keys != EMPTY_KEY
        keys = self.keys[mask]
        scores = self.scores[mask]
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(scores)[::-1]
        return keys[order[:k]]

    def occupancy(self) -> float:
        """Fraction of slots currently holding a feature."""
        return float((self.keys != EMPTY_KEY).mean())

    # ------------------------------------------------------------------ #
    # Merging (sharded stores)
    # ------------------------------------------------------------------ #
    def merge(self, other: "HotSketch") -> "HotSketch":
        """Merge two sketches into a new one (SpaceSaving bucket merge).

        Both sketches must share ``(num_buckets, slots_per_bucket, seed)`` so
        that every key hashes to the same bucket in both.  Per bucket, the
        slot union is formed, scores of keys recorded in both sketches are
        summed, and the ``slots_per_bucket`` highest-scoring keys survive —
        the standard mergeability argument for SpaceSaving summaries.  This
        is what lets a sharded store expose one global hot-feature view from
        per-shard sketches.

        Payloads from ``self`` are preserved where their key survives;
        ``other``'s payloads are dropped, because exclusive-row pointers are
        only meaningful inside the embedding layer that owns them.
        Thresholds and decay of the result are taken from ``self``.
        """
        if not isinstance(other, HotSketch):
            raise TypeError(f"can only merge HotSketch with HotSketch, got {type(other).__name__}")
        if (self.num_buckets, self.slots_per_bucket, self.seed) != (
            other.num_buckets,
            other.slots_per_bucket,
            other.seed,
        ):
            raise ValueError(
                "sketches must agree on (num_buckets, slots_per_bucket, seed) to merge: "
                f"({self.num_buckets}, {self.slots_per_bucket}, {self.seed}) vs "
                f"({other.num_buckets}, {other.slots_per_bucket}, {other.seed})"
            )

        c = self.slots_per_bucket
        keys = np.concatenate([self.keys, other.keys], axis=1)  # (w, 2c)
        scores = np.concatenate([self.scores, other.scores], axis=1)
        payloads = np.concatenate(
            [self.payloads, np.full_like(other.payloads, NO_PAYLOAD)], axis=1
        )

        # Sort each bucket row by key so duplicates become adjacent, then fold
        # each duplicate pair leftward (keys are unique within one sketch's
        # bucket, so a key appears at most twice).
        order = np.argsort(keys, axis=1, kind="stable")
        keys = np.take_along_axis(keys, order, axis=1)
        scores = np.take_along_axis(scores, order, axis=1)
        payloads = np.take_along_axis(payloads, order, axis=1)
        for j in range(1, 2 * c):
            dup = (keys[:, j] == keys[:, j - 1]) & (keys[:, j] != EMPTY_KEY)
            if not dup.any():
                continue
            scores[dup, j] += scores[dup, j - 1]
            keep_prev = dup & (payloads[:, j] == NO_PAYLOAD)
            payloads[keep_prev, j] = payloads[keep_prev, j - 1]
            keys[dup, j - 1] = EMPTY_KEY
            scores[dup, j - 1] = 0.0
            payloads[dup, j - 1] = NO_PAYLOAD

        # Keep the c highest-scoring occupied slots per bucket.
        rank = np.where(keys == EMPTY_KEY, -np.inf, scores)
        top = np.argsort(-rank, axis=1, kind="stable")[:, :c]
        merged = HotSketch(
            num_buckets=self.num_buckets,
            slots_per_bucket=c,
            hot_threshold=self.hot_threshold,
            medium_threshold=self.medium_threshold,
            decay=self.decay,
            seed=self.seed,
        )
        merged.keys = np.take_along_axis(keys, top, axis=1)
        empty = merged.keys == EMPTY_KEY
        merged.scores = np.where(empty, 0.0, np.take_along_axis(scores, top, axis=1))
        merged.payloads = np.where(empty, NO_PAYLOAD, np.take_along_axis(payloads, top, axis=1))
        merged.total_insertions = self.total_insertions + other.total_insertions
        return merged

    @classmethod
    def merge_all(cls, sketches: "list[HotSketch] | tuple[HotSketch, ...]") -> "HotSketch":
        """Fold :meth:`merge` over a non-empty sequence of sketches."""
        sketches = list(sketches)
        if not sketches:
            raise ValueError("merge_all requires at least one sketch")
        merged = sketches[0]
        for other in sketches[1:]:
            merged = merged.merge(other)
        return merged

    def memory_floats(self) -> int:
        """Each slot stores a key, a score and a payload: 3 attributes.

        The paper's §5.3 memory accounting ("each slot 3 attributes", ratio
        ``12 : d`` between a 4-slot-per-hot-feature sketch and ``d``-dim
        exclusive embeddings) corresponds to counting every attribute as one
        float32-equivalent, which is what this returns.
        """
        return int(self.num_buckets * self.slots_per_bucket * 3)

    # ------------------------------------------------------------------ #
    # Checkpointing (paper §4, "Fault Tolerance")
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            "keys": self.keys.copy(),
            "scores": self.scores.copy(),
            "payloads": self.payloads.copy(),
            "total_insertions": np.asarray(self.total_insertions),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        keys = np.asarray(state["keys"], dtype=np.int64)
        if keys.shape != self.keys.shape:
            raise ValueError(f"sketch shape mismatch: {keys.shape} vs {self.keys.shape}")
        self.keys = keys.copy()
        self.scores = np.asarray(state["scores"], dtype=np.float64).copy()
        self.payloads = np.asarray(state["payloads"], dtype=np.int64).copy()
        self.total_insertions = int(state["total_insertions"])

"""Count sketch (Charikar et al., 2002) — unbiased frequency estimation."""

from __future__ import annotations

import numpy as np

from repro.sketch.base import Sketch
from repro.utils.hashing import hash_to_range, mix64


class CountSketch(Sketch):
    """Count sketch with median-of-rows estimation and ±1 sign hashing."""

    def __init__(self, width: int, depth: int = 3, seed: int = 0):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        if depth % 2 == 0:
            raise ValueError("depth should be odd so the median is well-defined")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.counters = np.zeros((self.depth, self.width), dtype=np.float64)

    def _positions_and_signs(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        positions = np.stack(
            [hash_to_range(keys, self.width, seed=self.seed + row) for row in range(self.depth)],
            axis=0,
        )
        signs = np.stack(
            [
                np.where(mix64(keys, seed=self.seed + 1000 + row) & np.uint64(1), 1.0, -1.0)
                for row in range(self.depth)
            ],
            axis=0,
        )
        return positions, signs

    def insert(self, keys: np.ndarray, scores: np.ndarray | None = None) -> None:
        keys, scores = self._normalize_inputs(keys, scores)
        if keys.size == 0:
            return
        positions, signs = self._positions_and_signs(keys)
        for row in range(self.depth):
            np.add.at(self.counters[row], positions[row], signs[row] * scores)

    def query(self, keys: np.ndarray) -> np.ndarray:
        keys_arr = np.asarray(keys, dtype=np.int64)
        flat = keys_arr.reshape(-1)
        positions, signs = self._positions_and_signs(flat)
        estimates = np.stack(
            [signs[row] * self.counters[row, positions[row]] for row in range(self.depth)], axis=0
        )
        return np.median(estimates, axis=0).reshape(keys_arr.shape)

    def memory_floats(self) -> int:
        return int(self.width * self.depth)

"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

Used as a counter-based comparison point for HotSketch in the sketch
evaluation and as the frequency estimator for the frequency-based importance
ablation in Figure 15(d).
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import Sketch
from repro.utils.hashing import hash_to_range


class CountMinSketch(Sketch):
    """Standard Count-Min sketch with ``depth`` rows of ``width`` counters."""

    def __init__(self, width: int, depth: int = 3, seed: int = 0):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.counters = np.zeros((self.depth, self.width), dtype=np.float64)

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        return np.stack(
            [hash_to_range(keys, self.width, seed=self.seed + row) for row in range(self.depth)],
            axis=0,
        )

    def insert(self, keys: np.ndarray, scores: np.ndarray | None = None) -> None:
        keys, scores = self._normalize_inputs(keys, scores)
        if keys.size == 0:
            return
        positions = self._positions(keys)
        for row in range(self.depth):
            np.add.at(self.counters[row], positions[row], scores)

    def query(self, keys: np.ndarray) -> np.ndarray:
        keys_arr = np.asarray(keys, dtype=np.int64)
        flat = keys_arr.reshape(-1)
        positions = self._positions(flat)
        estimates = np.stack([self.counters[row, positions[row]] for row in range(self.depth)], axis=0)
        return estimates.min(axis=0).reshape(keys_arr.shape)

    def memory_floats(self) -> int:
        return int(self.width * self.depth)

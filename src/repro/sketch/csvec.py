"""CSVec — a mergeable count-sketch over *vectors* keyed by integer ids.

Classic :class:`~repro.sketch.count_sketch.CountSketch` summarises a stream
of scalar scores.  Gradient exchange and sketched optimizer state need the
same trick over *rows*: every key carries a ``dim``-vector (a gradient), the
sketch folds ``sign(key) * vector`` into ``depth × width`` bucket rows, and
an individual key's vector is recovered as the component-wise median over
depth.  Because the fold is linear, two sketches built from disjoint (or
overlapping) sub-streams merge by plain addition — the property the
process-parallel runtime uses to combine per-shard gradient sketches into
one global view, mirroring ``HotSketch.merge``.

Alongside the signed vector table the sketch keeps an *unsigned* count-min
mass table (one scalar per bucket) accumulating the L2 mass each key
inserted.  ``estimate_mass`` (min over depth) is a monotone overestimate,
which makes it safe for heavy-hitter *selection*: a genuinely heavy key can
never be under-ranked below its true mass.

Hashing follows the repo idiom exactly (SplitMix64 ``hash_to_range``
positions per depth row, ``mix64 & 1`` signs), so a CSVec built anywhere in
the system with the same ``(width, depth, dim, seed)`` is bucket-compatible
and therefore mergeable.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import hash_to_range, mix64


class CSVec:
    """Mergeable vector count-sketch with heavy-hitter mass tracking.

    Parameters
    ----------
    width:
        Buckets per depth row.  Total state is ``depth * width * dim``
        floats for the vector table plus ``depth * width`` for the mass
        counters.
    dim:
        Length of the vectors being folded (the embedding dimension).
    depth:
        Number of independent hash rows; must be odd so the median is
        well-defined.
    seed:
        Hash-family seed.  Two sketches merge only if ``width``, ``depth``,
        ``dim`` and ``seed`` all match.
    dtype:
        Table dtype.  ``float64`` (default) for in-core accumulation;
        the gradient-exchange wire format uses ``float32``.
    kernels:
        Optional :class:`repro.kernels.KernelBackend` supplying the
        ``sketch_fold`` / ``sketch_recover`` ops; ``None`` uses the inline
        numpy reference (bit-identical to the numpy backend).
    """

    def __init__(
        self,
        width: int,
        dim: int,
        depth: int = 3,
        seed: int = 0,
        dtype=np.float64,
        kernels=None,
    ):
        if width <= 0 or depth <= 0 or dim <= 0:
            raise ValueError("width, depth and dim must be positive")
        if depth % 2 == 0:
            raise ValueError("depth should be odd so the median is well-defined")
        self.width = int(width)
        self.depth = int(depth)
        self.dim = int(dim)
        self.seed = int(seed)
        self.dtype = np.dtype(dtype)
        self.table = np.zeros((self.depth, self.width, self.dim), dtype=self.dtype)
        self.counts = np.zeros((self.depth, self.width), dtype=self.dtype)
        self._kernels = kernels

    # ------------------------------------------------------------------ #
    # Hashing (identical idiom to CountSketch so seeds are portable)
    # ------------------------------------------------------------------ #
    def positions_and_signs(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(depth, n)`` bucket positions and ±1 signs for ``keys``."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        positions = np.stack(
            [hash_to_range(keys, self.width, seed=self.seed + row) for row in range(self.depth)],
            axis=0,
        )
        signs = np.stack(
            [
                np.where(mix64(keys, seed=self.seed + 1000 + row) & np.uint64(1), 1.0, -1.0)
                for row in range(self.depth)
            ],
            axis=0,
        ).astype(self.dtype)
        return positions, signs

    # ------------------------------------------------------------------ #
    # Fold / recover
    # ------------------------------------------------------------------ #
    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Fold ``values[i]`` (a ``dim``-vector) under ``keys[i]``.

        Duplicate keys are fine — linearity sums their vectors, which is
        exactly the semantics gradient exchange wants.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=self.dtype).reshape(keys.size, self.dim)
        if keys.size == 0:
            return
        positions, signs = self.positions_and_signs(keys)
        if self._kernels is not None:
            self._kernels.sketch_fold(self.table, positions, signs, values)
        else:
            for row in range(self.depth):
                np.add.at(self.table[row], positions[row], signs[row][:, None] * values)
        mass = np.sqrt((values.astype(np.float64) ** 2).sum(axis=1)).astype(self.dtype)
        for row in range(self.depth):
            np.add.at(self.counts[row], positions[row], mass)

    def query(self, keys: np.ndarray) -> np.ndarray:
        """Estimate the folded vector for each key: median over depth rows."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return np.zeros((0, self.dim), dtype=self.dtype)
        positions, signs = self.positions_and_signs(keys)
        if self._kernels is not None:
            estimates = self._kernels.sketch_recover(self.table, positions, signs)
        else:
            estimates = np.stack(
                [signs[row][:, None] * self.table[row, positions[row]] for row in range(self.depth)],
                axis=0,
            )
        return np.median(estimates, axis=0).astype(self.dtype)

    def estimate_mass(self, keys: np.ndarray) -> np.ndarray:
        """Count-min overestimate of each key's accumulated L2 mass."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return np.zeros(0, dtype=self.dtype)
        positions, _ = self.positions_and_signs(keys)
        estimates = np.stack(
            [self.counts[row, positions[row]] for row in range(self.depth)], axis=0
        )
        return estimates.min(axis=0)

    def heavy_hitters(self, keys: np.ndarray, top_k: int) -> np.ndarray:
        """Indices (into ``keys``) of the ``top_k`` keys by estimated mass.

        Deterministic: ties break toward the earlier key (stable sort), so
        every executor ranks the same candidates identically.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        top_k = int(min(max(top_k, 0), keys.size))
        if top_k == 0:
            return np.zeros(0, dtype=np.int64)
        mass = self.estimate_mass(keys)
        order = np.argsort(-mass, kind="stable")
        return np.sort(order[:top_k])

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def compatible_with(self, other: "CSVec") -> bool:
        return (
            self.width == other.width
            and self.depth == other.depth
            and self.dim == other.dim
            and self.seed == other.seed
        )

    def merge(self, other: "CSVec") -> "CSVec":
        """Fold ``other`` into this sketch in place (merge = add)."""
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge CSVecs with different (width, depth, dim, seed): "
                f"({self.width}, {self.depth}, {self.dim}, {self.seed}) vs "
                f"({other.width}, {other.depth}, {other.dim}, {other.seed})"
            )
        self.table += other.table
        self.counts += other.counts
        return self

    @classmethod
    def merge_all(cls, sketches: list["CSVec"]) -> "CSVec":
        """Merge ``sketches`` into one fresh sketch (inputs untouched)."""
        if not sketches:
            raise ValueError("merge_all needs at least one sketch")
        merged = sketches[0].spawn()
        for sketch in sketches:
            merged.merge(sketch)
        return merged

    def spawn(self) -> "CSVec":
        """An empty sketch with identical parameters (merge-compatible)."""
        return CSVec(
            self.width,
            self.dim,
            depth=self.depth,
            seed=self.seed,
            dtype=self.dtype,
            kernels=self._kernels,
        )

    # ------------------------------------------------------------------ #
    # Accounting / state
    # ------------------------------------------------------------------ #
    def memory_floats(self) -> int:
        """Table + mass-counter floats (the wire/footprint size)."""
        return int(self.depth * self.width * self.dim + self.depth * self.width)

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The raw state for shipping or checkpointing."""
        return {"table": self.table, "counts": self.counts}

    @classmethod
    def from_state(
        cls,
        table: np.ndarray,
        counts: np.ndarray,
        seed: int,
        kernels=None,
    ) -> "CSVec":
        """Rebuild a sketch around shipped ``table``/``counts`` arrays.

        The arrays are adopted (not copied): the wire decoder hands the
        arena views straight in, queries never mutate.
        """
        depth, width, dim = table.shape
        sketch = cls(width, dim, depth=depth, seed=seed, dtype=table.dtype, kernels=kernels)
        sketch.table = np.ascontiguousarray(table, dtype=sketch.dtype)
        sketch.counts = np.ascontiguousarray(counts, dtype=sketch.dtype)
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CSVec(width={self.width}, depth={self.depth}, dim={self.dim}, "
            f"seed={self.seed}, dtype={self.dtype.name})"
        )

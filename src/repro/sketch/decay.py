"""Score-decay policies for adaptive sketches (paper §3.3).

The paper decays HotSketch scores periodically so features that were hot in
an old distribution can fall below the threshold and yield their exclusive
embeddings.  The policy object decides *when* to decay; the sketch itself
implements *how* (multiplying its score array).
"""

from __future__ import annotations


class DecaySchedule:
    """Base class: decides after which steps to apply decay."""

    def should_decay(self, step: int) -> bool:
        raise NotImplementedError  # pragma: no cover - abstract


class NoDecay(DecaySchedule):
    """Never decay — suitable for stationary (offline) distributions."""

    def should_decay(self, step: int) -> bool:
        return False


class PeriodicDecay(DecaySchedule):
    """Decay every ``interval`` training iterations."""

    def __init__(self, interval: int):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = int(interval)

    def should_decay(self, step: int) -> bool:
        return step > 0 and step % self.interval == 0

"""Library-wide exception types."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class MemoryBudgetError(ConfigurationError):
    """Raised when an embedding method cannot satisfy a memory budget.

    The paper notes that some baselines have hard floors on how far they can
    compress (AdaEmbed stores a score per feature, the Q-R trick needs at
    least the square root of the cardinality, MDE needs one dimension per
    feature).  Those limits surface as this exception.
    """


class DataError(ReproError):
    """Raised for malformed or inconsistent dataset inputs."""


class ShardWorkerCrashed(ReproError):
    """Raised when a shard worker process dies instead of answering a request.

    The process executor detects the death (closed pipe or reaped process)
    and converts it into this error so callers see which worker and which
    operation failed rather than hanging on a read from a dead pipe.
    """

"""Library-wide exception types."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class MemoryBudgetError(ConfigurationError):
    """Raised when an embedding method cannot satisfy a memory budget.

    The paper notes that some baselines have hard floors on how far they can
    compress (AdaEmbed stores a score per feature, the Q-R trick needs at
    least the square root of the cardinality, MDE needs one dimension per
    feature).  Those limits surface as this exception.
    """


class DataError(ReproError):
    """Raised for malformed or inconsistent dataset inputs."""


class DeltaProtocolError(ReproError):
    """Base class for violations of the delta-snapshot publish protocol.

    Replicas raise these instead of silently serving stale or corrupt
    parameters: every payload names the version it produces and (for
    deltas) the exact base version it applies to, and a replica refuses
    anything that does not extend its current version by that chain.
    """


class VersionRegressionError(DeltaProtocolError):
    """A replica received a payload at or below its current version.

    Duplicate delivery and replays are refused loudly — re-applying a delta
    would double-scatter rows, and re-applying an old full snapshot would
    roll served parameters back without anyone noticing.
    """


class DeltaChainGapError(DeltaProtocolError):
    """A delta's base version is ahead of the replica (dropped publish).

    The chain has a hole: one or more intermediate deltas never arrived,
    so applying this one would serve silently wrong rows.  The remedy is a
    full-snapshot rebase, which the error message spells out.
    """


class ShardWorkerCrashed(ReproError):
    """Raised when a shard worker process dies instead of answering a request.

    The process executor detects the death (closed pipe or reaped process)
    and converts it into this error so callers see which worker and which
    operation failed rather than hanging on a read from a dead pipe.
    """

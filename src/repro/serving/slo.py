"""SLO controller: hold serving p99 under a target by resizing micro-batches.

The micro-batch size is the serving tier's one cheap knob, and it pulls in
opposite directions depending on load:

* **Under overload** (a flash crowd has arrivals outrunning service), the
  queue grows without bound and p99 explodes.  Per-batch compute is roughly
  ``base + per_row * rows``, so *larger* batches amortize the base cost and
  raise sustainable throughput — growing the batch is what drains the queue
  and brings p99 back down.
* **Under light load**, big batches just sit waiting to fill (or for the
  batching timeout); *small* batches dispatch sooner and minimize latency.

:class:`SLOController` implements exactly that hysteresis loop: observe the
recent p99 once per window, grow multiplicatively while over target, decay
back toward the configured baseline once comfortably under it (the
``headroom`` guard keeps it from oscillating around the target).
"""

from __future__ import annotations

from typing import Any


class SLOController:
    """Window-by-window micro-batch adaptation against a p99 target.

    ``observe(p99_ms)`` is called once per traffic window with the recent
    tail latency and returns the micro-batch size to use from now on.  The
    caller (the workload driver, or a serving loop) applies it via
    :meth:`~repro.serving.replica.ReplicaSet.set_max_batch_size`.
    """

    def __init__(
        self,
        target_p99_ms: float,
        micro_batch: int = 64,
        min_batch: int = 1,
        max_batch: int = 4096,
        grow: float = 2.0,
        shrink: float = 0.5,
        headroom: float = 0.5,
    ):
        if target_p99_ms <= 0:
            raise ValueError(f"target_p99_ms must be positive, got {target_p99_ms}")
        if not (0 < min_batch <= micro_batch <= max_batch):
            raise ValueError(
                f"need 0 < min_batch <= micro_batch <= max_batch, got "
                f"{min_batch}/{micro_batch}/{max_batch}"
            )
        if grow <= 1.0 or not (0.0 < shrink < 1.0) or not (0.0 < headroom < 1.0):
            raise ValueError(
                f"need grow > 1, 0 < shrink < 1, 0 < headroom < 1; got "
                f"grow={grow}, shrink={shrink}, headroom={headroom}"
            )
        self.target_p99_ms = float(target_p99_ms)
        self.baseline = int(micro_batch)
        self.micro_batch = int(micro_batch)
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.headroom = float(headroom)
        self.windows = 0
        self.adaptations = 0
        self.history: list[dict[str, float | int]] = []

    def observe(self, p99_ms: float) -> int:
        """One control step: fold in a window's p99, return the batch size."""
        self.windows += 1
        before = self.micro_batch
        if p99_ms > self.target_p99_ms:
            grown = int(self.micro_batch * self.grow)
            self.micro_batch = min(self.max_batch, max(grown, self.micro_batch + 1))
        elif p99_ms < self.headroom * self.target_p99_ms and self.micro_batch > self.baseline:
            shrunk = int(self.micro_batch * self.shrink)
            self.micro_batch = max(self.baseline, self.min_batch, shrunk)
        if self.micro_batch != before:
            self.adaptations += 1
        self.history.append(
            {"window": self.windows, "p99_ms": round(float(p99_ms), 4), "micro_batch": self.micro_batch}
        )
        return self.micro_batch

    def summary(self) -> dict[str, Any]:
        return {
            "target_p99_ms": self.target_p99_ms,
            "baseline_micro_batch": self.baseline,
            "final_micro_batch": self.micro_batch,
            "windows": self.windows,
            "adaptations": self.adaptations,
            "max_micro_batch_used": max(
                (entry["micro_batch"] for entry in self.history), default=self.baseline
            ),
        }

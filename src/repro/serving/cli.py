"""``python -m repro.serve`` — deprecated shim over the consolidated CLI.

The serving replay now lives behind the declarative front door:
``python -m repro serve --config c.json`` (see :mod:`repro.api.cli`).  This
module keeps the historical flag surface working by mapping its arguments
onto a :class:`~repro.api.config.SystemConfig` and running the same
:class:`~repro.api.session.Session` the new CLI runs, while :func:`main`
emits a single :class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import json
import warnings
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="[deprecated: use `python -m repro serve --config ...`] "
                    "Serve model predictions from an embedding-store snapshot",
    )
    parser.add_argument("--dataset", default="criteo",
                        choices=["avazu", "criteo", "kdd12", "criteotb"])
    parser.add_argument("--model", default="dlrm", choices=["dlrm", "wdl", "dcn"])
    parser.add_argument("--method", default="cafe",
                        help="embedding backend for every shard (default: cafe)")
    parser.add_argument("--num-shards", type=int, default=1,
                        help="hash-partitioned shards in the store (default: 1)")
    parser.add_argument("--compression-ratio", type=float, default=10.0)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    parser.add_argument("--train-batches", type=int, default=20,
                        help="warm-up training steps before the snapshot (default: 20)")
    parser.add_argument("--requests", type=int, default=1000,
                        help="single-example requests to replay (default: 1000)")
    parser.add_argument("--micro-batch", type=int, default=64,
                        help="max rows coalesced into one forward pass (default: 64)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this path")
    return parser


def config_from_args(args: argparse.Namespace):
    """Map the legacy flag surface onto a :class:`SystemConfig`."""
    from repro.api.config import SystemConfig

    return SystemConfig.from_dict(
        {
            "seed": args.seed,
            "data": {"dataset": args.dataset, "scale": args.scale},
            "store": {
                "spec": args.method,
                "compression_ratio": args.compression_ratio,
                "num_shards": args.num_shards,
            },
            "model": {"name": args.model},
            "serve": {
                "micro_batch": args.micro_batch,
                "requests": args.requests,
                "warmup_steps": args.train_batches,
            },
        }
    )


def run_serving_session(args: argparse.Namespace) -> dict:
    """Train briefly, snapshot, replay the request stream; returns the
    legacy-shaped report."""
    from repro.api.session import build

    session = build(config_from_args(args))
    report = session.serve()
    return {
        "workload": {
            "dataset": args.dataset,
            "model": args.model,
            "method": args.method,
            "num_shards": args.num_shards,
            "compression_ratio": args.compression_ratio,
            "scale": args.scale,
            "train_batches": args.train_batches,
            "requests": args.requests,
            "micro_batch": args.micro_batch,
            "seed": args.seed,
        },
        "store": report["store"],
        "serving": report["serving"],
    }


def main(argv: list[str] | None = None) -> int:
    warnings.warn(
        "`python -m repro.serve` is deprecated; use "
        "`python -m repro serve --config path.json` (repro.api.cli)",
        DeprecationWarning,
        stacklevel=2,
    )
    args = build_parser().parse_args(argv)
    report = run_serving_session(args)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
        print(f"\nwrote {args.output}")
    return 0

"""``python -m repro.serve`` — replay a request stream through the engine.

Builds a synthetic dataset preset, trains a model briefly so the embedding
store holds non-trivial state, snapshots it, and replays a single-example
request stream through the micro-batching engine.  Prints a JSON report with
throughput and p50/p95/p99 latency — the zero-to-serving demonstration of
the store + snapshot + engine stack.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.experiments.common import build_dataset, get_scale
from repro.models import create_model
from repro.serving.engine import ServingEngine
from repro.store import ShardedEmbeddingStore
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Serve model predictions from an embedding-store snapshot",
    )
    parser.add_argument("--dataset", default="criteo",
                        choices=["avazu", "criteo", "kdd12", "criteotb"])
    parser.add_argument("--model", default="dlrm", choices=["dlrm", "wdl", "dcn"])
    parser.add_argument("--method", default="cafe",
                        help="embedding backend for every shard (default: cafe)")
    parser.add_argument("--num-shards", type=int, default=1,
                        help="hash-partitioned shards in the store (default: 1)")
    parser.add_argument("--compression-ratio", type=float, default=10.0)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    parser.add_argument("--train-batches", type=int, default=20,
                        help="warm-up training steps before the snapshot (default: 20)")
    parser.add_argument("--requests", type=int, default=1000,
                        help="single-example requests to replay (default: 1000)")
    parser.add_argument("--micro-batch", type=int, default=64,
                        help="max rows coalesced into one forward pass (default: 64)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this path")
    return parser


def run_serving_session(args: argparse.Namespace) -> dict:
    """Train briefly, snapshot, replay the request stream; returns the report."""
    spec = get_scale(args.scale)
    dataset = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
    schema = dataset.schema
    extra = {}
    if args.method == "mde":
        extra["field_cardinalities"] = schema.field_cardinalities
    store = ShardedEmbeddingStore.build(
        args.method,
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        num_shards=args.num_shards,
        compression_ratio=args.compression_ratio,
        seed=args.seed,
        **extra,
    )
    model = create_model(
        args.model, store, num_fields=schema.num_fields, num_numerical=schema.num_numerical,
        rng=args.seed,
    )
    trainer = Trainer(model, TrainingConfig(batch_size=spec.batch_size, seed=args.seed))
    trainer.train_stream(dataset.training_stream(spec.batch_size), max_steps=args.train_batches)

    engine = ServingEngine(model, max_batch_size=args.micro_batch)
    replay = dataset.test_batch(num_samples=args.requests)
    import time

    start = time.perf_counter()
    for row in range(len(replay)):
        numerical = replay.numerical[row] if schema.num_numerical else None
        engine.submit(replay.categorical[row], numerical)
    engine.flush()
    elapsed = time.perf_counter() - start

    stats = engine.stats()
    return {
        "workload": {
            "dataset": args.dataset,
            "model": args.model,
            "method": args.method,
            "num_shards": args.num_shards,
            "compression_ratio": args.compression_ratio,
            "scale": args.scale,
            "train_batches": args.train_batches,
            "requests": len(replay),
            "micro_batch": args.micro_batch,
            "seed": args.seed,
        },
        "store": store.describe(),
        "serving": stats | {"requests_per_s": round(len(replay) / elapsed, 1)},
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    report = run_serving_session(args)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
        print(f"\nwrote {args.output}")
    return 0

"""Snapshot-backed inference serving with request micro-batching.

The engine separates the *serving* path from the *training* path that shares
a process with it:

* On :meth:`ServingEngine.refresh` the engine takes a copy-on-write
  :class:`~repro.store.snapshot.StoreSnapshot` of the model's embedding
  store and a frozen copy of the dense network, so in-flight requests see
  one consistent parameter version while online training keeps mutating the
  live store.
* Incoming requests queue up and are executed as one batched forward pass
  once ``max_batch_size`` rows are pending (or on an explicit
  :meth:`ServingEngine.flush`) — the standard micro-batching trade of a
  little queueing latency for a large throughput win on vectorized
  backends.
* Per-request wall times feed a :class:`~repro.serving.stats.
  LatencyTracker`, giving the p50/p95/p99 columns the fig13 experiment and
  ``python -m repro.serve`` report.
"""

from __future__ import annotations

import copy
import time
from collections import deque

import numpy as np

from repro.serving.stats import LatencyTracker


class PendingPrediction:
    """Future-like handle for one submitted request."""

    __slots__ = ("rows", "submitted_at", "probabilities", "latency_s")

    def __init__(self, rows: int, submitted_at: float):
        self.rows = int(rows)
        self.submitted_at = float(submitted_at)
        self.probabilities: np.ndarray | None = None
        self.latency_s: float | None = None

    @property
    def done(self) -> bool:
        return self.probabilities is not None

    def result(self) -> np.ndarray:
        if self.probabilities is None:
            raise RuntimeError("request not served yet; call ServingEngine.flush()")
        return self.probabilities


class ServingEngine:
    """Micro-batching prediction server over embedding-store snapshots.

    Consistency model: every request is answered from the engine's current
    :class:`~repro.store.snapshot.StoreSnapshot` and frozen dense network —
    training the live store between :meth:`refresh` calls never changes
    served answers (the copy-on-write contract).  The engine itself is not
    internally locked: drive one engine from one thread, or synchronize
    callers externally.  Serving *while* another thread trains is safe
    because reads go through the immutable snapshot, not the live store;
    :class:`~repro.runtime.pipeline.OnlinePipeline` builds the train→publish
    loop on exactly this guarantee.
    """

    def __init__(self, model, max_batch_size: int = 256):
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        self.model = model
        self.max_batch_size = int(max_batch_size)
        self.latency = LatencyTracker()
        self._pending: deque[PendingPrediction] = deque()
        self._pending_categorical: deque[np.ndarray] = deque()
        self._pending_numerical: deque[np.ndarray | None] = deque()
        self._pending_rows = 0
        self.micro_batches = 0
        self.requests_served = 0
        self.rows_served = 0
        self.snapshot = None
        self._frozen_model = None
        self.refresh()

    # ------------------------------------------------------------------ #
    # Snapshot management
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Re-snapshot the store and freeze the dense network ("publish").

        Call after (or periodically during) training to publish the newest
        parameters.  Requests already queued are flushed first so no request
        spans two parameter versions.  The snapshot half is O(1)
        copy-on-write; the dense network is deep-copied (it is small), so
        publish latency is dominated by that copy, not by table sizes.
        """
        if self._pending_rows:
            self.flush()
        store = getattr(self.model, "store", None) or self.model.embedding
        self.snapshot = store.snapshot()
        # Deep-copy the dense network but splice the snapshot in where the
        # model references its store/embedding, so the frozen model's forward
        # reads embeddings from the snapshot without copying any table.
        memo = {id(store): self.snapshot, id(self.model.embedding): self.snapshot}
        self._frozen_model = copy.deepcopy(self.model, memo)

    @property
    def snapshot_version(self) -> int:
        return self.snapshot.version if self.snapshot is not None else 0

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(self, categorical: np.ndarray, numerical: np.ndarray | None = None) -> PendingPrediction:
        """Queue one request (a single example or a small row block).

        The request executes when the queue reaches ``max_batch_size`` rows
        or on :meth:`flush`; the returned handle fills in then.
        """
        categorical = np.asarray(categorical, dtype=np.int64)
        if categorical.ndim == 1:
            categorical = categorical[None, :]
        if numerical is not None:
            numerical = np.asarray(numerical, dtype=np.float64)
            if numerical.ndim == 1:
                numerical = numerical[None, :]
        pending = PendingPrediction(categorical.shape[0], time.perf_counter())
        self._pending.append(pending)
        self._pending_categorical.append(categorical)
        self._pending_numerical.append(numerical)
        self._pending_rows += pending.rows
        if self._pending_rows >= self.max_batch_size:
            self.flush()
        return pending

    def flush(self) -> int:
        """Serve every queued request in micro-batches; returns rows served."""
        served = 0
        while self._pending:
            served += self._serve_one_micro_batch()
        return served

    def predict(self, categorical: np.ndarray, numerical: np.ndarray | None = None) -> np.ndarray:
        """Synchronous convenience: submit one request and serve it now."""
        pending = self.submit(categorical, numerical)
        if not pending.done:
            self.flush()
        return pending.result()

    def _serve_one_micro_batch(self) -> int:
        """Execute one forward pass over up to ``max_batch_size`` queued rows."""
        requests: list[PendingPrediction] = []
        categorical: list[np.ndarray] = []
        numerical: list[np.ndarray | None] = []
        rows = 0
        while self._pending and (rows == 0 or rows + self._pending[0].rows <= self.max_batch_size):
            requests.append(self._pending.popleft())
            categorical.append(self._pending_categorical.popleft())
            numerical.append(self._pending_numerical.popleft())
            rows += requests[-1].rows
        self._pending_rows -= rows

        cat = np.concatenate(categorical, axis=0)
        num = None
        if any(n is not None for n in numerical):
            # Requests that omitted numerical features get zeros at the
            # model's expected width so mixed micro-batches still serve.
            width = getattr(self._frozen_model, "num_numerical", 0)
            num = np.concatenate(
                [
                    n if n is not None else np.zeros((c.shape[0], width))
                    for n, c in zip(numerical, categorical)
                ],
                axis=0,
            )
        probabilities = self._frozen_model.predict_proba(cat, num)
        completed_at = time.perf_counter()

        offset = 0
        for pending in requests:
            pending.probabilities = probabilities[offset: offset + pending.rows]
            pending.latency_s = completed_at - pending.submitted_at
            self.latency.record(pending.latency_s)
            offset += pending.rows
        self.micro_batches += 1
        self.requests_served += len(requests)
        self.rows_served += rows
        return rows

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float | int]:
        """Latency percentiles plus micro-batching behaviour."""
        summary = self.latency.summary()
        summary["requests_served"] = self.requests_served
        summary["micro_batches"] = self.micro_batches
        summary["avg_micro_batch_rows"] = (
            round(self.rows_served / self.micro_batches, 2) if self.micro_batches else 0.0
        )
        summary["snapshot_version"] = self.snapshot_version
        return summary

"""Serving: snapshot-backed inference with micro-batching and tail-latency stats."""

from repro.serving.engine import PendingPrediction, ServingEngine
from repro.serving.stats import PERCENTILES, LatencyTracker

__all__ = ["ServingEngine", "PendingPrediction", "LatencyTracker", "PERCENTILES"]

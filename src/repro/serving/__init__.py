"""Serving: snapshot-backed inference, delta-fed replicas, traffic replay."""

from repro.serving.delta import (
    STORE_SLOT,
    DeltaSnapshotPublisher,
    RowDelta,
    ShardUpdate,
    SnapshotPayload,
)
from repro.serving.engine import PendingPrediction, ServingEngine
from repro.serving.replica import ROUTER_POLICIES, Replica, ReplicaSet, ReplicaTier
from repro.serving.slo import SLOController
from repro.serving.stats import PERCENTILES, LatencyTracker
from repro.serving.traffic import (
    TRAFFIC_PATTERNS,
    Request,
    TrafficConfig,
    TrafficGenerator,
    WorkloadReport,
    run_workload,
)

__all__ = [
    "ServingEngine",
    "PendingPrediction",
    "LatencyTracker",
    "PERCENTILES",
    "DeltaSnapshotPublisher",
    "SnapshotPayload",
    "ShardUpdate",
    "RowDelta",
    "STORE_SLOT",
    "Replica",
    "ReplicaSet",
    "ReplicaTier",
    "ROUTER_POLICIES",
    "SLOController",
    "TrafficConfig",
    "TrafficGenerator",
    "TRAFFIC_PATTERNS",
    "Request",
    "WorkloadReport",
    "run_workload",
]

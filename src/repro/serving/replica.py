"""Replicated serving: N snapshot replicas behind a router.

One :class:`~repro.serving.engine.ServingEngine` tops out at one core's
forward-pass throughput.  The replicated tier scales horizontally: a
:class:`ReplicaSet` holds N :class:`Replica` instances — each a private,
micro-batching serving engine — and routes requests across them
(round-robin, or least-loaded by queued rows).  Replicas are fed by the
:class:`~repro.serving.delta.DeltaSnapshotPublisher`: a *full* payload
rebuilds a replica's entire view, a *delta* payload patches only the rows
training touched, and every payload is versioned so the chain is checked,
not assumed.

Cutover is atomic and all-or-nothing per replica: a payload is staged into
a completely new view (fresh shard list, fresh spliced dense network) while
readers keep using the current one, and the switch is a single reference
assignment — a replica that stalls (or dies) mid-cutover keeps serving the
old version, never a half-applied one.  Version checks happen before any
staging, so a refused payload (duplicate, replay, or a gap from a dropped
delta) raises one of the :mod:`repro.errors` delta-protocol errors and
leaves the replica exactly as it was.

Replicas deliberately *materialize* their state (deep copies / patched
array copies) instead of aliasing the publisher's frozen snapshots: a
replica models a process on another machine, so applying a payload pays
the real shipping cost — that is what the delta-vs-full bench gate
measures.  To keep a delta apply O(delta rows) rather than O(table), each
replica double-buffers: the state displaced by a cutover is kept as a
spare, and the next delta patches the spare in place (replaying the one
delta batch it is behind) instead of copying the whole table.  The
resulting contract: an installed view is immutable while it is current
and throughout the cutover that replaces it; once it is two versions old
its arrays may be recycled.  Memory cost is ~2x the table per replica.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from typing import Any, Callable

import numpy as np

from repro.errors import DeltaChainGapError, DeltaProtocolError, VersionRegressionError
from repro.serving.delta import (
    STORE_SLOT,
    DeltaSnapshotPublisher,
    SnapshotPayload,
    serving_state_of,
)
from repro.serving.engine import PendingPrediction
from repro.serving.stats import LatencyTracker
from repro.store.snapshot import StoreSnapshot

#: Router policies a :class:`ReplicaSet` understands.
ROUTER_POLICIES = ("round_robin", "least_loaded")


class _Published:
    """One installed parameter version: the atomic unit readers see.

    Readers grab the current ``_Published`` once per operation; because the
    view and the dense model travel inside one object swapped by a single
    reference assignment, no request can ever mix two versions.
    """

    __slots__ = ("view", "model", "version", "step")

    def __init__(self, view: Any, model: Any, version: int, step: int):
        self.view = view
        self.model = model
        self.version = int(version)
        self.step = int(step)


class Replica:
    """One serving replica: a micro-batching engine over shipped payloads.

    Unlike :class:`~repro.serving.engine.ServingEngine`, a replica never
    touches the live model — it owns private copies of everything it
    serves, built from :class:`~repro.serving.delta.SnapshotPayload`
    objects via :meth:`apply`.

    ``before_cutover`` is a fault-injection hook: when set, it is called
    after a payload is fully staged but *before* the atomic switch, with
    ``(replica, payload)``.  Tests use it to stall or crash a replica
    mid-cutover and assert readers keep seeing the old version.
    """

    def __init__(self, index: int = 0, max_batch_size: int = 64):
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        self.index = int(index)
        self.max_batch_size = int(max_batch_size)
        self.latency = LatencyTracker()
        self.before_cutover: Callable[["Replica", SnapshotPayload], None] | None = None
        self._serving: _Published | None = None
        #: Replica-private shard objects (only for StoreSnapshot payloads;
        #: generic snapshots are served whole and cannot take row deltas).
        self._shards: list[Any] | None = None
        self._meta: dict[str, Any] | None = None
        #: Double-buffer spares: shard index -> (displaced serving state, the
        #: row-delta batch that superseded it).  Consumed (popped) while
        #: staging, so an aborted cutover can never leave a corrupted spare —
        #: the retry just falls back to the copy-on-write patch path.
        self._spare: dict[int, tuple[dict[str, Any], Any]] = {}
        self._pending: deque[PendingPrediction] = deque()
        self._pending_categorical: deque[np.ndarray] = deque()
        self._pending_numerical: deque[np.ndarray | None] = deque()
        self._pending_rows = 0
        self.micro_batches = 0
        self.requests_served = 0
        self.rows_served = 0
        self.full_applies = 0
        self.delta_applies = 0
        self.rows_applied = 0

    # ------------------------------------------------------------------ #
    # Payload ingestion
    # ------------------------------------------------------------------ #
    @property
    def ready(self) -> bool:
        return self._serving is not None

    @property
    def version(self) -> int:
        return self._serving.version if self._serving is not None else 0

    @property
    def step(self) -> int:
        return self._serving.step if self._serving is not None else 0

    def apply(self, payload: SnapshotPayload) -> None:
        """Stage ``payload`` into a new view and cut over atomically.

        Raises :class:`~repro.errors.VersionRegressionError` for duplicate
        or out-of-order payloads and :class:`~repro.errors.
        DeltaChainGapError` when a delta's base proves an earlier publish
        was dropped.  On any raise the replica is untouched and keeps
        serving its current version.
        """
        self._check_version(payload)
        if payload.kind == "full":
            view, shards, meta = self._stage_full(payload)
            spares: dict[int, tuple[dict[str, Any], Any]] = {}
        else:
            view, shards, meta, spares = self._stage_delta(payload)
        model = copy.deepcopy(payload.dense_model, memo={id(STORE_SLOT): view})
        if self._pending_rows:
            # No queued request may span two parameter versions.
            self.flush()
        if self.before_cutover is not None:
            self.before_cutover(self, payload)
        # The actual cutover: one reference assignment, all-or-nothing.
        self._serving = _Published(view, model, payload.version, payload.step)
        self._shards = shards
        self._meta = meta
        if payload.kind == "full":
            # A full rebuild severs the delta lineage the spares depend on.
            self._spare.clear()
            self.full_applies += 1
        else:
            self._spare.update(spares)
            self.delta_applies += 1
            self.rows_applied += payload.payload_rows

    def _check_version(self, payload: SnapshotPayload) -> None:
        current = self.version
        if payload.kind == "full":
            if self._serving is not None and payload.version <= current:
                raise VersionRegressionError(
                    f"replica {self.index} is at version {current} but received a "
                    f"full snapshot for version {payload.version}; refusing the "
                    "duplicate/rollback (replays must never silently rewind "
                    "served parameters)"
                )
            return
        if payload.kind != "delta":
            raise DeltaProtocolError(
                f"replica {self.index} received unknown payload kind "
                f"{payload.kind!r}; expected 'full' or 'delta'"
            )
        if self._serving is None:
            raise DeltaChainGapError(
                f"replica {self.index} has no base snapshot but received delta "
                f"v{payload.base_version}->v{payload.version}; ship a full "
                "snapshot first"
            )
        if payload.version <= current:
            raise VersionRegressionError(
                f"replica {self.index} is at version {current} but received "
                f"delta v{payload.base_version}->v{payload.version}; refusing "
                "the duplicate (re-applying a delta would corrupt served rows)"
            )
        if payload.base_version != current:
            missing = payload.base_version - current
            raise DeltaChainGapError(
                f"replica {self.index} is at version {current} but delta "
                f"v{payload.base_version}->v{payload.version} needs base "
                f"{payload.base_version}: {missing} intermediate publish(es) "
                "were dropped; request a full-snapshot rebase instead of "
                "serving silently stale rows"
            )

    def _stage_full(self, payload: SnapshotPayload):
        snapshot = payload.snapshot
        if isinstance(snapshot, StoreSnapshot):
            # Materialize private shard copies: the replica models a remote
            # process, so a full payload pays the whole-table shipping cost.
            shards = [copy.deepcopy(shard) for shard in snapshot.shards]
            meta = {
                "shard_seed": snapshot.shard_seed,
                "dim": snapshot.dim,
                "num_features": snapshot.num_features,
                "dtype": snapshot.dtype,
            }
            view = StoreSnapshot(
                shards=shards,
                version=payload.version,
                step=payload.step,
                **meta,
            )
            return view, shards, meta
        # Generic snapshot (e.g. TableGroupSnapshot): served whole.
        return copy.deepcopy(snapshot), None, None

    def _stage_delta(self, payload: SnapshotPayload):
        if self._shards is None:
            raise DeltaProtocolError(
                f"replica {self.index} serves a whole-snapshot view that "
                "cannot take row deltas; the publisher must send full "
                "payloads for this store type"
            )
        shards = list(self._shards)
        spares: dict[int, tuple[dict[str, Any], Any]] = {}
        for update in payload.updates:
            if update.replacement is not None:
                self._spare.pop(update.index, None)
                shards[update.index] = copy.deepcopy(update.replacement)
                continue
            shards[update.index], displaced = self._patch_shard(
                shards[update.index], update.index, update.row_deltas
            )
            spares[update.index] = (displaced, update.row_deltas)
        view = StoreSnapshot(
            shards=shards,
            version=payload.version,
            step=payload.step,
            **self._meta,
        )
        return view, shards, self._meta, spares

    def _patch_shard(self, shard: Any, index: int, row_deltas):
        """Patch one shard into a new object; the current view is untouched.

        Double-buffered: when a spare (the state displaced two cutovers ago,
        plus the delta batch it missed) is available, the spare's arrays are
        brought current and patched in place — O(delta rows).  Without a
        spare (first delta after a full/replacement, or after an aborted
        cutover consumed it) the touched arrays are copied first —
        O(table) once, re-seeding the buffer pair.  Either way the arrays a
        reader can observe (the current view and every view newer than the
        spare) are never written.  Returns ``(patched_shard, displaced
        state)``; the displaced state becomes the next spare once the
        cutover commits.
        """
        state = serving_state_of(shard)
        if state is None:
            raise DeltaProtocolError(
                f"replica {self.index} received row deltas for a shard with no "
                "serving state; the publisher should have shipped a replacement"
            )
        spare = self._spare.pop(index, None)
        new_state = dict(state)
        fresh: dict[str, Any] = {}
        if spare is not None:
            spare_state, pending = spare
            # Only keys the pending batch re-wrote got fresh arrays at the
            # last patch; other spare keys still alias live views.
            for delta in pending:
                fresh.setdefault(delta.key, spare_state[delta.key])
                fresh[delta.key][delta.rows] = delta.values
        for delta in row_deltas:
            target = fresh.get(delta.key)
            if target is None:
                target = new_state[delta.key].copy()
                fresh[delta.key] = target
            target[delta.rows] = delta.values
        new_state.update(fresh)
        patched = copy.copy(shard)  # routing/config shared, storage re-pointed
        patched.adopt_serving_state(new_state)
        return patched, dict(state)

    # ------------------------------------------------------------------ #
    # Request path (micro-batching, same discipline as ServingEngine)
    # ------------------------------------------------------------------ #
    def _require_ready(self) -> _Published:
        serving = self._serving
        if serving is None:
            raise RuntimeError(
                f"replica {self.index} has no published snapshot; apply a full "
                "payload before serving"
            )
        return serving

    def submit(
        self, categorical: np.ndarray, numerical: np.ndarray | None = None
    ) -> PendingPrediction:
        """Queue one request; it executes when the micro-batch fills or on
        :meth:`flush`."""
        self._require_ready()
        categorical = np.asarray(categorical, dtype=np.int64)
        if categorical.ndim == 1:
            categorical = categorical[None, :]
        if numerical is not None:
            numerical = np.asarray(numerical, dtype=np.float64)
            if numerical.ndim == 1:
                numerical = numerical[None, :]
        pending = PendingPrediction(categorical.shape[0], time.perf_counter())
        self._pending.append(pending)
        self._pending_categorical.append(categorical)
        self._pending_numerical.append(numerical)
        self._pending_rows += pending.rows
        if self._pending_rows >= self.max_batch_size:
            self.flush()
        return pending

    def flush(self) -> int:
        """Serve every queued request in micro-batches; returns rows served."""
        served = 0
        while self._pending:
            served += self._serve_one_micro_batch()
        return served

    def predict(
        self, categorical: np.ndarray, numerical: np.ndarray | None = None
    ) -> np.ndarray:
        """Synchronous convenience: submit one request and serve it now."""
        pending = self.submit(categorical, numerical)
        if not pending.done:
            self.flush()
        return pending.result()

    def serve_batch(
        self, categorical: np.ndarray, numerical: np.ndarray | None = None
    ) -> tuple[np.ndarray, float]:
        """One direct forward pass: ``(probabilities, compute_seconds)``.

        The virtual-time workload driver uses this to run its own queueing
        simulation around real (or modeled) per-batch compute times.
        """
        serving = self._require_ready()
        start = time.perf_counter()
        probabilities = serving.model.predict_proba(categorical, numerical)
        return probabilities, time.perf_counter() - start

    def _serve_one_micro_batch(self) -> int:
        serving = self._require_ready()
        requests: list[PendingPrediction] = []
        categorical: list[np.ndarray] = []
        numerical: list[np.ndarray | None] = []
        rows = 0
        while self._pending and (
            rows == 0 or rows + self._pending[0].rows <= self.max_batch_size
        ):
            requests.append(self._pending.popleft())
            categorical.append(self._pending_categorical.popleft())
            numerical.append(self._pending_numerical.popleft())
            rows += requests[-1].rows
        self._pending_rows -= rows

        cat = np.concatenate(categorical, axis=0)
        num = None
        if any(n is not None for n in numerical):
            width = getattr(serving.model, "num_numerical", 0)
            num = np.concatenate(
                [
                    n if n is not None else np.zeros((c.shape[0], width))
                    for n, c in zip(numerical, categorical)
                ],
                axis=0,
            )
        probabilities = serving.model.predict_proba(cat, num)
        completed_at = time.perf_counter()

        offset = 0
        for pending in requests:
            pending.probabilities = probabilities[offset: offset + pending.rows]
            pending.latency_s = completed_at - pending.submitted_at
            self.latency.record(pending.latency_s)
            offset += pending.rows
        self.micro_batches += 1
        self.requests_served += len(requests)
        self.rows_served += rows
        return rows

    @property
    def queued_rows(self) -> int:
        """Rows waiting in the micro-batch queue (the least-loaded signal)."""
        return self._pending_rows

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        summary = self.latency.summary()
        summary.update(
            index=self.index,
            version=self.version,
            step=self.step,
            requests_served=self.requests_served,
            micro_batches=self.micro_batches,
            full_applies=self.full_applies,
            delta_applies=self.delta_applies,
            rows_applied=self.rows_applied,
        )
        return summary


class ReplicaSet:
    """N replicas behind one router.

    ``policy`` picks the routing discipline: ``"round_robin"`` spreads
    requests evenly; ``"least_loaded"`` sends each request to the replica
    with the fewest queued rows (ties break to the lowest index), which
    absorbs stragglers and uneven request sizes.
    """

    def __init__(
        self,
        num_replicas: int,
        max_batch_size: int = 64,
        policy: str = "round_robin",
    ):
        if num_replicas <= 0:
            raise ValueError(f"num_replicas must be positive, got {num_replicas}")
        if policy not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {policy!r}; expected one of {ROUTER_POLICIES}"
            )
        self.replicas = [Replica(i, max_batch_size) for i in range(num_replicas)]
        self.policy = policy
        self._next = 0

    def __len__(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(self, payload: SnapshotPayload) -> None:
        """Apply one payload to every replica (errors name the replica)."""
        for replica in self.replicas:
            replica.apply(payload)

    def versions(self) -> list[int]:
        return [replica.version for replica in self.replicas]

    @property
    def ready(self) -> bool:
        """True once every replica has a published snapshot to serve."""
        return all(replica.ready for replica in self.replicas)

    @property
    def version(self) -> int:
        """The lowest replica version (what the whole set is guaranteed at)."""
        return min(self.versions())

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self) -> Replica:
        """Pick the replica the next request goes to."""
        if self.policy == "least_loaded":
            return min(self.replicas, key=lambda r: (r.queued_rows, r.index))
        replica = self.replicas[self._next]
        self._next = (self._next + 1) % len(self.replicas)
        return replica

    def submit(
        self, categorical: np.ndarray, numerical: np.ndarray | None = None
    ) -> PendingPrediction:
        return self.route().submit(categorical, numerical)

    def predict(
        self, categorical: np.ndarray, numerical: np.ndarray | None = None
    ) -> np.ndarray:
        return self.route().predict(categorical, numerical)

    def flush(self) -> int:
        return sum(replica.flush() for replica in self.replicas)

    def set_max_batch_size(self, max_batch_size: int) -> None:
        """Retarget every replica's micro-batch (the SLO controller's lever)."""
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        for replica in self.replicas:
            replica.max_batch_size = int(max_batch_size)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        per_replica = [replica.stats() for replica in self.replicas]
        return {
            "num_replicas": len(self.replicas),
            "policy": self.policy,
            "versions": self.versions(),
            "requests_served": sum(r["requests_served"] for r in per_replica),
            "replicas": per_replica,
        }


class ReplicaTier:
    """Publisher + replica set as one unit (what the pipeline drives).

    ``publish()`` extracts the next payload from the live model and fans it
    out to every replica; requests go through the set's router.
    """

    def __init__(
        self,
        model: Any,
        num_replicas: int = 2,
        max_batch_size: int = 64,
        policy: str = "round_robin",
        rebase_every: int = 8,
    ):
        self.publisher = DeltaSnapshotPublisher(model, rebase_every=rebase_every)
        self.replicas = ReplicaSet(
            num_replicas, max_batch_size=max_batch_size, policy=policy
        )

    def publish(self) -> SnapshotPayload:
        start = time.perf_counter()
        payload = self.publisher.publish()
        self.replicas.publish(payload)
        self.publisher.stats.publish_latencies_s.append(time.perf_counter() - start)
        return payload

    def submit(self, categorical, numerical=None) -> PendingPrediction:
        return self.replicas.submit(categorical, numerical)

    def predict(self, categorical, numerical=None) -> np.ndarray:
        return self.replicas.predict(categorical, numerical)

    def flush(self) -> int:
        return self.replicas.flush()

    @property
    def version(self) -> int:
        return self.replicas.version

    @property
    def ready(self) -> bool:
        return self.replicas.ready

    def stats(self) -> dict[str, Any]:
        stats = self.replicas.stats()
        stats["publisher"] = self.publisher.stats.as_dict()
        return stats

"""Workload generation and replay for the replicated serving tier.

Serving claims are only as good as the traffic they were measured under.
This module generates *adversarially realistic* request streams and replays
them through a :class:`~repro.serving.replica.ReplicaSet` in **virtual
time**, so results are about queueing physics, not about how fast the test
host happens to be:

* **Zipfian users** — a small hot set issues most requests (the same skew
  CAFE exploits on the training side);
* **diurnal cycle** — the arrival rate swings sinusoidally across the
  trace, like a day of real traffic;
* **flash-crowd bursts** — a configurable window multiplies the rate,
  the scenario that breaks fixed-size micro-batching;
* **slow-client stragglers** — a fraction of requests carries extra
  client-side delay, inflating the tail the way real networks do.

The driver (:func:`run_workload`) simulates a single arrival queue feeding
N replicas: arrivals follow the trace's (inhomogeneous Poisson) timestamps,
batches dispatch when the micro-batch fills or a batching timeout expires,
and each replica serves sequentially (``busy_until`` per replica).  Batch
compute times are *measured* from the real forward pass by default, or
supplied as a deterministic ``service_model`` for reproducible fault tests.
An optional :class:`~repro.serving.slo.SLOController` is consulted once per
window and resizes the micro-batch mid-run.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.serving.slo import SLOController
from repro.serving.stats import LatencyTracker
from repro.utils.hashing import hash_to_range
from repro.utils.rng import SeedLike, make_rng

#: Named presets ``--traffic`` accepts; each is a set of config overrides.
TRAFFIC_PATTERNS: dict[str, dict[str, float]] = {
    "uniform": {"zipf_exponent": 0.0, "diurnal_amplitude": 0.0, "burst_magnitude": 1.0},
    "zipf": {"diurnal_amplitude": 0.0, "burst_magnitude": 1.0},
    "zipf-diurnal": {"burst_magnitude": 1.0},
    "zipf-burst": {"burst_magnitude": 8.0},
}


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one generated workload (all times are virtual seconds)."""

    pattern: str = "zipf"
    duration_s: float = 4.0
    base_rate: float = 2000.0
    num_users: int = 5000
    zipf_exponent: float = 1.1
    diurnal_amplitude: float = 0.5
    #: Diurnal period; ``0`` means one full cycle over the whole trace.
    diurnal_period_s: float = 0.0
    burst_start_frac: float = 0.5
    burst_duration_frac: float = 0.25
    burst_magnitude: float = 1.0
    straggler_fraction: float = 0.01
    straggler_delay_ms: float = 25.0
    max_requests: int = 250_000
    seed: int = 0

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if self.num_users <= 0:
            raise ValueError(f"num_users must be positive, got {self.num_users}")
        if self.zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {self.zipf_exponent}")
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise ValueError(
                f"diurnal_amplitude must lie in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.burst_magnitude < 1.0:
            raise ValueError(
                f"burst_magnitude must be >= 1 (1 disables), got {self.burst_magnitude}"
            )
        if not (0.0 <= self.burst_start_frac <= 1.0) or not (
            0.0 <= self.burst_duration_frac <= 1.0
        ):
            raise ValueError("burst window fractions must lie in [0, 1]")
        if not (0.0 <= self.straggler_fraction <= 1.0):
            raise ValueError(
                f"straggler_fraction must lie in [0, 1], got {self.straggler_fraction}"
            )

    @classmethod
    def from_pattern(cls, name: str, **overrides) -> "TrafficConfig":
        """Build from a named preset; explicit overrides win."""
        lowered = name.lower()
        if lowered not in TRAFFIC_PATTERNS:
            raise ValueError(
                f"unknown traffic pattern {name!r}; expected one of "
                f"{sorted(TRAFFIC_PATTERNS)}"
            )
        merged = {"pattern": lowered, **TRAFFIC_PATTERNS[lowered], **overrides}
        return cls(**merged)

    def burst_window(self) -> tuple[float, float]:
        """The ``(start_s, end_s)`` of the flash-crowd window."""
        start = self.burst_start_frac * self.duration_s
        return start, start + self.burst_duration_frac * self.duration_s

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (requests/s) at virtual time ``t``."""
        rate = self.base_rate
        if self.diurnal_amplitude:
            period = self.diurnal_period_s or self.duration_s
            rate *= 1.0 + self.diurnal_amplitude * math.sin(2.0 * math.pi * t / period)
        if self.burst_magnitude > 1.0:
            start, end = self.burst_window()
            if start <= t < end:
                rate *= self.burst_magnitude
        return max(rate, 1e-6)


@dataclass(frozen=True)
class Request:
    """One arriving request: a single example row plus client behaviour."""

    arrival_s: float
    user: int
    categorical: np.ndarray
    numerical: np.ndarray | None
    straggler_delay_s: float


class TrafficGenerator:
    """Deterministic request-trace generator over a dataset schema.

    Each virtual user maps to one fixed feature row (per-field ids hashed
    from the user id), so a Zipfian user distribution yields the Zipfian
    *row* distribution the delta publisher's hot-set claim depends on.
    """

    def __init__(self, schema: Any, config: TrafficConfig, rng: SeedLike = None):
        self.schema = schema
        self.config = config
        self._rng = make_rng(rng if rng is not None else config.seed)

    def _sample_users(self, n: int) -> np.ndarray:
        config = self.config
        if config.zipf_exponent == 0.0:
            return self._rng.integers(0, config.num_users, size=n)
        ranks = np.arange(1, config.num_users + 1, dtype=np.float64)
        weights = ranks ** (-config.zipf_exponent)
        cumulative = np.cumsum(weights)
        cumulative /= cumulative[-1]
        return np.searchsorted(cumulative, self._rng.random(n)).astype(np.int64)

    def _rows_for_users(self, users: np.ndarray) -> np.ndarray:
        per_field = np.column_stack(
            [
                hash_to_range(users, cardinality, seed=911 + field_index)
                for field_index, cardinality in enumerate(self.schema.field_cardinalities)
            ]
        )
        return self.schema.to_global_ids(per_field)

    def trace(self) -> list[Request]:
        """The full request trace, in arrival order."""
        config = self.config
        arrivals: list[float] = []
        t = 0.0
        while len(arrivals) < config.max_requests:
            t += float(self._rng.exponential(1.0 / config.rate_at(t)))
            if t >= config.duration_s:
                break
            arrivals.append(t)
        n = len(arrivals)
        if n == 0:
            return []
        users = self._sample_users(n)
        categorical = self._rows_for_users(users)
        numerical = None
        width = int(getattr(self.schema, "num_numerical", 0))
        if width:
            numerical = np.zeros((n, width), dtype=np.float64)
        straggler = self._rng.random(n) < config.straggler_fraction
        delay_s = config.straggler_delay_ms * 1e-3
        return [
            Request(
                arrival_s=arrivals[i],
                user=int(users[i]),
                categorical=categorical[i: i + 1],
                numerical=None if numerical is None else numerical[i: i + 1],
                straggler_delay_s=delay_s if straggler[i] else 0.0,
            )
            for i in range(n)
        ]


@dataclass
class WorkloadReport:
    """What one :func:`run_workload` replay measured (all virtual time)."""

    requests: int
    policy: str
    window_s: float
    virtual_duration_s: float
    throughput_rps: float
    overall: dict[str, Any]
    windows: list[dict[str, Any]] = field(default_factory=list)
    per_replica: list[dict[str, Any]] = field(default_factory=list)
    controller: dict[str, Any] | None = None
    modeled_service: bool = False

    def peak_window_p99_ms(self) -> float:
        return max((w["p99_ms"] for w in self.windows if w["completions"]), default=0.0)

    def windows_between(self, start_s: float, end_s: float) -> list[dict[str, Any]]:
        """Report windows whose start lies in ``[start_s, end_s)``."""
        return [w for w in self.windows if start_s <= w["t_start"] < end_s]

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "policy": self.policy,
            "window_s": self.window_s,
            "virtual_duration_s": round(self.virtual_duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "overall": self.overall,
            "peak_window_p99_ms": round(self.peak_window_p99_ms(), 4),
            "per_replica": self.per_replica,
            "controller": self.controller,
            "modeled_service": self.modeled_service,
            "windows": self.windows,
        }


def run_workload(
    replica_set: Any,
    trace: Sequence[Request],
    *,
    window_s: float = 0.25,
    max_wait_s: float = 0.01,
    controller: SLOController | None = None,
    service_model: tuple[float, float] | None = None,
) -> WorkloadReport:
    """Replay ``trace`` through the replica set in virtual time.

    One global queue feeds the router: a batch dispatches when the current
    micro-batch size fills or the head request has waited ``max_wait_s``.
    Every batch runs a *real* forward pass on the routed replica; its wall
    time becomes the batch's virtual service time unless ``service_model=
    (base_s, per_row_s)`` supplies a deterministic one (fault tests use
    this so queueing behaviour is bit-reproducible).  Request latency is
    ``completion - arrival + straggler delay``.
    """
    if window_s <= 0 or max_wait_s < 0:
        raise ValueError(f"need window_s > 0 and max_wait_s >= 0, got {window_s}/{max_wait_s}")
    replicas = replica_set.replicas
    policy = replica_set.policy
    if controller is not None:
        replica_set.set_max_batch_size(controller.micro_batch)
    current_batch = controller.micro_batch if controller else replicas[0].max_batch_size

    busy_until = [0.0] * len(replicas)
    busy_total = [0.0] * len(replicas)
    served = [0] * len(replicas)
    replica_latency = [LatencyTracker() for _ in replicas]
    overall = LatencyTracker()
    recent = LatencyTracker(window=256)
    completions_by_window: dict[int, list[float]] = defaultdict(list)
    arrivals_by_window: dict[int, int] = defaultdict(int)
    batch_by_window: dict[int, int] = {}
    queue: deque[Request] = deque()
    round_robin = 0
    makespan = 0.0
    next_boundary = window_s

    def pick_replica() -> int:
        nonlocal round_robin
        if policy == "least_loaded":
            return int(np.argmin(busy_until))
        chosen = round_robin
        round_robin = (round_robin + 1) % len(replicas)
        return chosen

    def dispatch(at: float) -> None:
        nonlocal makespan
        take = min(len(queue), current_batch)
        requests = [queue.popleft() for _ in range(take)]
        categorical = np.concatenate([r.categorical for r in requests], axis=0)
        numerical = None
        if requests[0].numerical is not None:
            numerical = np.concatenate([r.numerical for r in requests], axis=0)
        index = pick_replica()
        start = max(at, busy_until[index])
        _, compute_s = replicas[index].serve_batch(categorical, numerical)
        if service_model is not None:
            compute_s = service_model[0] + service_model[1] * take
        done = start + compute_s
        busy_until[index] = done
        busy_total[index] += compute_s
        served[index] += take
        for request in requests:
            latency = done - request.arrival_s + request.straggler_delay_s
            overall.record(latency)
            recent.record(latency)
            replica_latency[index].record(latency)
            completions_by_window[int(done / window_s)].append(latency)
        makespan = max(makespan, done)

    def advance_windows(now: float) -> None:
        nonlocal next_boundary, current_batch
        while now >= next_boundary:
            window_index = int(round(next_boundary / window_s)) - 1
            batch_by_window[window_index] = current_batch
            if controller is not None and len(recent):
                current_batch = controller.observe(recent.percentile_ms(99.0))
                replica_set.set_max_batch_size(current_batch)
            next_boundary += window_s

    for request in trace:
        while queue and request.arrival_s > queue[0].arrival_s + max_wait_s:
            dispatch(queue[0].arrival_s + max_wait_s)
        advance_windows(request.arrival_s)
        arrivals_by_window[int(request.arrival_s / window_s)] += 1
        queue.append(request)
        while len(queue) >= current_batch:
            dispatch(request.arrival_s)
    while queue:
        dispatch(queue[0].arrival_s + max_wait_s)

    total = sum(served)
    windows = []
    if total:
        last_window = int(makespan / window_s)
        for window_index in range(last_window + 1):
            latencies = completions_by_window.get(window_index, [])
            windows.append(
                {
                    "t_start": round(window_index * window_s, 6),
                    "arrivals": arrivals_by_window.get(window_index, 0),
                    "completions": len(latencies),
                    "p99_ms": round(
                        float(np.percentile(latencies, 99.0) * 1e3), 4
                    )
                    if latencies
                    else 0.0,
                    "micro_batch": batch_by_window.get(window_index, current_batch),
                }
            )
    per_replica = [
        {
            "index": index,
            "requests": served[index],
            "busy_s": round(busy_total[index], 6),
            "utilization": round(busy_total[index] / makespan, 4) if makespan else 0.0,
            **{k: v for k, v in replica_latency[index].summary().items() if k != "count"},
        }
        for index in range(len(replicas))
    ]
    return WorkloadReport(
        requests=total,
        policy=policy,
        window_s=window_s,
        virtual_duration_s=makespan,
        throughput_rps=round(total / makespan, 2) if makespan else 0.0,
        overall=overall.summary(),
        windows=windows,
        per_replica=per_replica,
        controller=controller.summary() if controller is not None else None,
        modeled_service=service_model is not None,
    )

"""Delta-snapshot extraction: publish only the rows training touched.

The single-engine serve path publishes by handing the engine a whole
copy-on-write snapshot.  That is O(1) *in process* but it is the wrong
currency for a replicated tier: shipping a snapshot to N replicas costs
N × (whole table) regardless of how little actually changed between
publishes.  Online recommendation traffic is Zipfian, so between two
publishes a few thousand hot rows change out of millions — the publisher
here extracts exactly those rows and ships them as a *versioned delta*:

``full``
    A complete snapshot (shard objects + frozen dense network).  Sent for
    the first publish, after every ``rebase_every`` deltas (so a fresh
    replica can always catch up from the latest full), and whenever delta
    extraction cannot prove correctness.

``delta``
    Per-shard row updates against an explicit ``base_version``.  Replicas
    refuse a delta whose base is not their current version (see
    :mod:`repro.errors`), which turns dropped or duplicated publishes into
    loud protocol errors instead of silent staleness.

Correctness is layered, cheapest proof first:

1. **Copy-on-write identity**: a shard object shared by both snapshots was
   never written between them (the store swaps in a private copy before the
   first write) — skipped in O(1).
2. **Write log**: :class:`~repro.store.sharded.ShardedEmbeddingStore`
   records the fused-scatter row sets of every ``apply_gradients`` between
   publishes; when the log is clean, only those rows are compared, so
   extraction is O(churn).
3. **Row diff**: without a clean log the changed shard's serving arrays are
   compared row-wise (vectorized O(table) compare, no allocation of the
   table) — always correct, used for process-executor stores (sealed
   generations have fresh object identity every publish) and any backend
   whose log was poisoned by a rebalance or checkpoint restore.
4. **Replacement**: backends with no :meth:`~repro.embeddings.base.
   CompressedEmbedding.serving_state` (CAFE and friends: their *routing*
   trains, so changed lookups are not confined to changed rows) ship the
   whole frozen shard for replicas to rebuild.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.store.snapshot import StoreSnapshot


class _StoreSlot:
    """Placeholder spliced where the dense network references its store.

    The publisher deep-copies the dense network once per publish with this
    sentinel memoised in place of the (arbitrarily large) store; each
    replica re-splices its own view over the sentinel at cutover.  Deep
    copies of the sentinel are the sentinel itself, so the id survives the
    round trip.
    """

    __slots__ = ()

    def __deepcopy__(self, memo):
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<STORE_SLOT>"


#: The one shared sentinel instance payloads are built around.
STORE_SLOT = _StoreSlot()


@dataclass(frozen=True)
class RowDelta:
    """Changed rows of one serving-state array (``key`` names the array)."""

    key: str
    rows: np.ndarray
    values: np.ndarray


@dataclass(frozen=True)
class ShardUpdate:
    """One changed shard: either row deltas or a whole replacement object."""

    index: int
    row_deltas: tuple[RowDelta, ...] | None = None
    #: Frozen shard to rebuild from when row deltas cannot be proven
    #: correct (no serving_state); replicas deep-copy it privately.
    replacement: Any | None = None


@dataclass(frozen=True)
class SnapshotPayload:
    """One versioned publish: a full snapshot or a delta against a base.

    ``payload_rows`` / ``payload_floats`` account what a transport would
    actually ship (delta rows, or every table row for a full), which is the
    figure the delta-publish bench gate is about.
    """

    kind: str  # "full" | "delta"
    version: int
    step: int
    dense_model: Any
    base_version: int | None = None
    #: Full payloads carry the whole frozen snapshot (replicas rebuild from
    #: it); deltas carry per-shard updates instead.
    snapshot: Any | None = None
    updates: tuple[ShardUpdate, ...] = ()
    payload_rows: int = 0
    payload_floats: int = 0

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "version": self.version,
            "step": self.step,
            "base_version": self.base_version,
            "updated_shards": len(self.updates),
            "payload_rows": self.payload_rows,
            "payload_floats": self.payload_floats,
        }


def serving_state_of(shard: Any) -> dict[str, np.ndarray] | None:
    """The shard's serving arrays, or ``None`` when not delta-capable."""
    probe = getattr(shard, "serving_state", None)
    if not callable(probe):
        return None
    return probe()


@dataclass
class PublisherStats:
    """Publish accounting: how often each extraction tier actually ran."""

    publishes: int = 0
    full_publishes: int = 0
    delta_publishes: int = 0
    unchanged_shards: int = 0
    logged_diffs: int = 0
    row_diffs: int = 0
    replacements: int = 0
    rows_shipped: int = 0
    floats_shipped: int = 0
    publish_latencies_s: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "publishes": self.publishes,
            "full_publishes": self.full_publishes,
            "delta_publishes": self.delta_publishes,
            "unchanged_shards": self.unchanged_shards,
            "logged_diffs": self.logged_diffs,
            "row_diffs": self.row_diffs,
            "replacements": self.replacements,
            "rows_shipped": self.rows_shipped,
            "floats_shipped": self.floats_shipped,
        }


class DeltaSnapshotPublisher:
    """Builds versioned full/delta payloads from consecutive store snapshots.

    One publisher per trained model; it keeps the previous snapshot (frozen,
    so holding it is free until training diverges) and, on ``publish()``,
    snapshots again, diffs the two, and emits the smallest payload it can
    prove correct.  Replicas (:class:`~repro.serving.replica.Replica`) are
    fed the payloads in order; the publisher itself holds no replica state,
    so one payload can fan out to any number of replicas.

    ``rebase_every`` bounds the delta chain: every ``rebase_every``-th
    publish is a full snapshot, so at most ``rebase_every - 1`` deltas sit
    between two fulls (``1`` = every publish is full — the whole-snapshot
    baseline the bench gate compares against; ``0`` = never rebase).
    """

    def __init__(self, model: Any, rebase_every: int = 8):
        if rebase_every < 0:
            raise ValueError(f"rebase_every must be >= 0, got {rebase_every}")
        self.model = model
        store = getattr(model, "store", None)
        if store is None:
            store = model.embedding
        self.store = store
        self.rebase_every = int(rebase_every)
        self.stats = PublisherStats()
        self._prev: Any | None = None
        self._prev_states: list[dict[str, np.ndarray] | None] = []
        self._prev_tokens: list[Any] = []
        self._deltas_since_full = 0
        enable = getattr(store, "enable_write_log", None)
        self._write_log_enabled = bool(enable()) if callable(enable) else False

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Version of the most recent payload (0 before the first)."""
        return int(getattr(self._prev, "version", 0)) if self._prev is not None else 0

    def publish(self) -> SnapshotPayload:
        """Snapshot the live store and emit the next payload in the chain."""
        snapshot = self.store.snapshot()
        dense = self._frozen_dense()
        version = int(getattr(snapshot, "version", self.stats.publishes + 1))
        step = int(getattr(snapshot, "step", 0))
        log = self._drain_write_log()

        prev = self._prev
        diffable = (
            prev is not None
            and isinstance(prev, StoreSnapshot)
            and isinstance(snapshot, StoreSnapshot)
            and prev.num_shards == snapshot.num_shards
        )
        rebase_due = (
            self.rebase_every and self._deltas_since_full + 1 >= self.rebase_every
        )

        if diffable and not rebase_due:
            payload = self._delta_payload(prev, snapshot, version, step, dense, log)
            self._deltas_since_full += 1
            self.stats.delta_publishes += 1
        else:
            payload = self._full_payload(snapshot, version, step, dense)
            self._deltas_since_full = 0
            self.stats.full_publishes += 1

        self.stats.publishes += 1
        self.stats.rows_shipped += payload.payload_rows
        self.stats.floats_shipped += payload.payload_floats
        self._remember(snapshot)
        return payload

    def _frozen_dense(self) -> Any:
        """Dense network copy with the store replaced by :data:`STORE_SLOT`."""
        memo = {id(self.store): STORE_SLOT}
        embedding = getattr(self.model, "embedding", None)
        if embedding is not None:
            memo[id(embedding)] = STORE_SLOT
        return copy.deepcopy(self.model, memo)

    def _remember(self, snapshot: Any) -> None:
        self._prev = snapshot
        if isinstance(snapshot, StoreSnapshot):
            self._prev_states = [serving_state_of(s) for s in snapshot.shards]
            self._prev_tokens = [
                getattr(s, "_routing_version", None) for s in snapshot.shards
            ]
        else:
            self._prev_states = []
            self._prev_tokens = []

    def _drain_write_log(self) -> list[np.ndarray | None] | None:
        if not self._write_log_enabled:
            return None
        drain = getattr(self.store, "drain_write_log", None)
        return drain() if callable(drain) else None

    # ------------------------------------------------------------------ #
    # Payload construction
    # ------------------------------------------------------------------ #
    def _full_payload(self, snapshot, version, step, dense) -> SnapshotPayload:
        rows = 0
        floats = 0
        shards = getattr(snapshot, "shards", None)
        units = shards if shards is not None else [snapshot]
        for unit in units:
            state = serving_state_of(unit)
            if state:
                rows += int(sum(arr.shape[0] for arr in state.values()))
            memory = getattr(unit, "memory_floats", None)
            floats += int(memory()) if callable(memory) else 0
        return SnapshotPayload(
            kind="full",
            version=version,
            step=step,
            dense_model=dense,
            snapshot=snapshot,
            payload_rows=rows,
            payload_floats=floats,
        )

    def _delta_payload(self, prev, snapshot, version, step, dense, log) -> SnapshotPayload:
        updates: list[ShardUpdate] = []
        rows_total = 0
        floats_total = 0
        for index, (old, new) in enumerate(zip(prev.shards, snapshot.shards)):
            if new is old:
                # Copy-on-write guarantee: the object was never written.
                self.stats.unchanged_shards += 1
                continue
            logged = log[index] if log is not None and index < len(log) else None
            update, rows, floats = self._diff_shard(index, old, new, logged)
            if update is not None:
                updates.append(update)
                rows_total += rows
                floats_total += floats
        return SnapshotPayload(
            kind="delta",
            version=version,
            step=step,
            base_version=int(prev.version),
            dense_model=dense,
            updates=tuple(updates),
            payload_rows=rows_total,
            payload_floats=floats_total,
        )

    def _diff_shard(
        self, index, old, new, logged
    ) -> tuple[ShardUpdate | None, int, int]:
        """Smallest provably-correct update for one changed shard."""
        new_state = serving_state_of(new)
        old_state = self._prev_states[index] if index < len(self._prev_states) else None
        old_token = self._prev_tokens[index] if index < len(self._prev_tokens) else None
        compatible = (
            new_state is not None
            and old_state is not None
            and set(new_state) == set(old_state)
            and all(
                new_state[k].shape == old_state[k].shape
                and new_state[k].dtype == old_state[k].dtype
                for k in new_state
            )
            and getattr(new, "_routing_version", None) == old_token
        )
        if not compatible:
            self.stats.replacements += 1
            memory = getattr(new, "memory_floats", None)
            floats = int(memory()) if callable(memory) else 0
            rows = int(sum(a.shape[0] for a in new_state.values())) if new_state else 0
            return ShardUpdate(index=index, replacement=new), rows, floats

        # The write log narrows the compare to rows training scattered into;
        # it only applies when the shard's whole serving state is the single
        # fused table those scatters target.
        candidates = logged if set(new_state) == {"table"} else None
        deltas: list[RowDelta] = []
        rows_total = 0
        floats_total = 0
        for key in sorted(new_state):
            old_arr = old_state[key]
            new_arr = new_state[key]
            axes = tuple(range(1, new_arr.ndim))
            if candidates is not None:
                self.stats.logged_diffs += 1
                cand = candidates
                changed = np.any(old_arr[cand] != new_arr[cand], axis=axes)
                rows = cand[changed]
            else:
                self.stats.row_diffs += 1
                rows = np.flatnonzero(np.any(old_arr != new_arr, axis=axes))
            if not rows.size:
                continue
            values = new_arr[rows]
            deltas.append(RowDelta(key=key, rows=rows, values=values))
            rows_total += int(rows.size)
            floats_total += int(values.size)
        if not deltas:
            return None, 0, 0
        return ShardUpdate(index=index, row_deltas=tuple(deltas)), rows_total, floats_total

"""Latency accounting for the serving path (p50/p95/p99).

Production serving is judged on tail latency, not means; the paper's Figure
13 reports per-batch latency and throughput per embedding method.  The
tracker here records per-request wall times and summarizes them with the
standard serving percentiles so both the serving engine and the fig13
experiment report the same columns.
"""

from __future__ import annotations

from collections import deque

import numpy as np

#: The percentiles serving dashboards conventionally report.
PERCENTILES = (50.0, 95.0, 99.0)


class LatencyTracker:
    """Accumulates per-request latencies and summarizes their distribution.

    Percentiles are NaN-safe: an empty tracker reports ``0.0`` for every
    latency figure (count ``0``) instead of ``nan``, so callers — the SLO
    controller sampling short windows, JSON reports — never need a guard,
    and a single sample is its own p50/p95/p99.

    ``window`` bounds the tracker to the most recent N samples (a sliding
    window), which is what the SLO controller reads: old traffic must not
    dilute the tail of the current regime.

    >>> tracker = LatencyTracker()
    >>> tracker.percentile_ms(99.0)
    0.0
    >>> for seconds in (0.001, 0.002, 0.003):
    ...     tracker.record(seconds)
    >>> len(tracker)
    3
    >>> tracker.percentile_ms(50.0)
    2.0
    >>> tracker.summary()["count"]
    3
    >>> windowed = LatencyTracker(window=2)
    >>> for seconds in (0.9, 0.001, 0.003):
    ...     windowed.record(seconds)
    >>> windowed.percentile_ms(99.0) < 10.0
    True
    """

    def __init__(self, window: int | None = None):
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._seconds: deque[float] = deque(maxlen=window)

    def record(self, seconds: float) -> None:
        self._seconds.append(float(seconds))

    def __len__(self) -> int:
        return len(self._seconds)

    def percentile_ms(self, percentile: float) -> float:
        """The given latency percentile in milliseconds (``0.0`` if empty)."""
        if not self._seconds:
            return 0.0
        return float(np.percentile(np.asarray(self._seconds), percentile) * 1e3)

    def summary(self) -> dict[str, float | int]:
        """Count, mean and tail percentiles in milliseconds.

        Every field is a finite float: an empty tracker reports zeros, so
        the summary can be compared, JSON-serialized, and fed to gates
        without NaN handling at each call site.
        """
        if not self._seconds:
            return {"count": 0, "mean_ms": 0.0} | {
                f"p{int(p)}_ms": 0.0 for p in PERCENTILES
            }
        values = np.asarray(self._seconds) * 1e3
        out: dict[str, float | int] = {
            "count": int(values.size),
            "mean_ms": round(float(values.mean()), 4),
        }
        for p in PERCENTILES:
            out[f"p{int(p)}_ms"] = round(float(np.percentile(values, p)), 4)
        return out

    def reset(self) -> None:
        self._seconds.clear()

"""Latency accounting for the serving path (p50/p95/p99).

Production serving is judged on tail latency, not means; the paper's Figure
13 reports per-batch latency and throughput per embedding method.  The
tracker here records per-request wall times and summarizes them with the
standard serving percentiles so both the serving engine and the fig13
experiment report the same columns.
"""

from __future__ import annotations

import numpy as np

#: The percentiles serving dashboards conventionally report.
PERCENTILES = (50.0, 95.0, 99.0)


class LatencyTracker:
    """Accumulates per-request latencies and summarizes their distribution.

    >>> tracker = LatencyTracker()
    >>> for seconds in (0.001, 0.002, 0.003):
    ...     tracker.record(seconds)
    >>> len(tracker)
    3
    >>> tracker.percentile_ms(50.0)
    2.0
    >>> tracker.summary()["count"]
    3
    """

    def __init__(self):
        self._seconds: list[float] = []

    def record(self, seconds: float) -> None:
        self._seconds.append(float(seconds))

    def __len__(self) -> int:
        return len(self._seconds)

    def percentile_ms(self, percentile: float) -> float:
        if not self._seconds:
            return float("nan")
        return float(np.percentile(np.asarray(self._seconds), percentile) * 1e3)

    def summary(self) -> dict[str, float | int]:
        """Count, mean and tail percentiles in milliseconds."""
        if not self._seconds:
            return {"count": 0, "mean_ms": float("nan")} | {
                f"p{int(p)}_ms": float("nan") for p in PERCENTILES
            }
        values = np.asarray(self._seconds) * 1e3
        out: dict[str, float | int] = {
            "count": int(values.size),
            "mean_ms": round(float(values.mean()), 4),
        }
        for p in PERCENTILES:
            out[f"p{int(p)}_ms"] = round(float(np.percentile(values, p)), 4)
        return out

    def reset(self) -> None:
        self._seconds.clear()

"""The consolidated command line: ``python -m repro <subcommand>``.

One CLI replaces the three historical entry points (``repro.cli``,
``repro.pipeline``, ``repro.serve``, now deprecation shims).  Every
workload subcommand takes the same two knobs::

    --config path.json          a SystemConfig file (defaults apply without it)
    --set section.key=value     dotted overrides, repeatable

Subcommands:

``train``            one (partial) chronological epoch + held-out AUC
``serve``            warm-up train → snapshot → micro-batched request replay
                     (``--replicas N --traffic PATTERN`` switches to the
                     delta-fed replicated tier under generated traffic)
``pipeline``         online train→publish→probe loop
``bench``            micro-benchmark harness (forwards to ``repro.bench``)
``experiment``       paper tables/figures (forwards to the legacy runner:
                     ``python -m repro experiment run fig8 --scale tiny``)
``validate-config``  eagerly validate config files / directories
``describe``         print the fully resolved plan for a config
``analyze``          project lint rules + import-layering checker
                     (``--strict`` for CI, ``--write-graph`` to regenerate
                     ``docs/import_graph.md``)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ReproError

_CONFIG_COMMANDS = ("train", "serve", "pipeline", "describe")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", type=Path, default=None,
                        help="SystemConfig JSON file (defaults apply when omitted)")
    parser.add_argument("--set", dest="overrides", action="append", default=[],
                        metavar="SECTION.KEY=VALUE",
                        help="dotted config override, repeatable "
                             "(e.g. --set store.num_shards=4, "
                             "--set store.executor=serial|threads|processes, "
                             "--set store.executor_workers=4)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this path")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAFE reproduction: one declarative front door "
                    "(config -> session -> train/serve/pipeline)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    help_by_command = {
        "train": "train over the day-stream and report loss/AUC",
        "serve": "warm-up train, snapshot, replay requests through the engine",
        "pipeline": "online train->serve loop with snapshot publishing",
        "describe": "print the fully resolved plan for a config",
    }
    for command in _CONFIG_COMMANDS:
        sub = subparsers.add_parser(command, help=help_by_command[command])
        _add_config_arguments(sub)
        if command == "serve":
            # Shorthands for the replicated tier (equivalent --set spelling
            # in the help keeps the dotted override path discoverable).
            sub.add_argument("--replicas", type=int, default=None, metavar="N",
                             help="serve from N delta-fed replicas behind a router "
                                  "(same as --set serve.replicas=N; 0 = single engine)")
            sub.add_argument("--traffic", default=None, metavar="PATTERN",
                             help="traffic pattern for the replicated replay: "
                                  "uniform|zipf|zipf-diurnal|zipf-burst "
                                  "(same as --set serve.traffic=PATTERN)")

    validate = subparsers.add_parser(
        "validate-config", help="validate config files (or directories of them)")
    validate.add_argument("paths", nargs="+", type=Path,
                          help="JSON config files or directories to scan")

    analyze = subparsers.add_parser(
        "analyze", help="project lint rules + import-layering checker")
    from repro.analysis.cli import add_analyze_arguments

    add_analyze_arguments(analyze)

    # Forwarding subcommands: registered for --help discoverability; their
    # arguments are passed through verbatim (main() short-circuits before
    # argparse because REMAINDER does not capture leading flags).
    bench = subparsers.add_parser(
        "bench", help="micro-benchmarks (forwards to repro.bench)", add_help=False)
    bench.add_argument("args", nargs=argparse.REMAINDER,
                       help="arguments for repro.bench (e.g. --smoke --output x.json)")

    experiment = subparsers.add_parser(
        "experiment", help="paper tables/figures (forwards to the legacy runner)",
        add_help=False)
    experiment.add_argument("args", nargs=argparse.REMAINDER,
                            help="legacy experiment arguments (list / run / sweep ...)")
    return parser


def _load_session_config(args: argparse.Namespace):
    from repro.api.config import SystemConfig, apply_overrides, load_config

    config = load_config(args.config) if args.config is not None else SystemConfig()
    return apply_overrides(config, args.overrides)


def _emit(report: dict, output: Path | None) -> None:
    text = json.dumps(report, indent=2)
    print(text)
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text + "\n", encoding="utf-8")
        print(f"\nwrote {output}")


def _config_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            found = sorted(path.glob("*.json"))
            if not found:
                raise ConfigurationError(f"directory '{path}' contains no .json configs")
            files.extend(found)
        else:
            files.append(path)
    return files


def _run_validate(paths: list[Path]) -> int:
    from repro.api.config import load_config

    failures = 0
    for path in _config_files(paths):
        try:
            config = load_config(path)
        except ConfigurationError as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
            continue
        store = config.store.spec if config.store.spec is not None else "<explicit fields>"
        print(f"ok   {path} (dataset={config.data.dataset}, store={store})")
    if failures:
        print(f"\n{failures} invalid config(s)")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)

    if argv[:1] == ["bench"]:
        from repro.bench.__main__ import main as bench_main

        return bench_main(argv[1:])

    if argv[:1] == ["experiment"]:
        from repro.cli import run_legacy_cli

        return run_legacy_cli(argv[1:])

    args = build_parser().parse_args(argv)

    if args.command == "validate-config":
        try:
            return _run_validate(args.paths)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "analyze":
        from repro.analysis.cli import run_analyze

        return run_analyze(args)

    if args.command == "serve":
        if args.replicas is not None:
            args.overrides.append(f"serve.replicas={args.replicas}")
        if args.traffic is not None:
            args.overrides.append(f"serve.traffic={args.traffic}")

    try:
        config = _load_session_config(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.api.session import build

    try:
        with build(config) as session:
            if args.command == "describe":
                report = session.describe()
            elif args.command == "train":
                report = session.train()
            elif args.command == "serve":
                report = session.serve()
            elif args.command == "pipeline":
                report = session.run_pipeline()
            else:  # pragma: no cover - argparse enforces the choices
                raise AssertionError("unreachable")
            _emit(report, args.output)
    except (ReproError, ValueError) as exc:
        # Config-shaped mistakes that need the resolved schema to surface
        # (e.g. store.fields not matching the dataset's fields, an
        # infeasible memory budget, a [seed=N] option on a seedless
        # backend) end as a clean error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess/CI
    sys.exit(main())

"""One declarative front door for the whole system.

``repro.api`` is the canonical way to construct and run the stack that the
rest of the package implements layer by layer (embedding backends, sharded +
table-group stores, trainer, online pipeline, serving engine):

* :class:`SystemConfig` — a nested, JSON-round-trippable configuration tree
  (``data`` / ``store`` / ``model`` / ``train`` / ``serve`` / ``pipeline``)
  that validates eagerly with actionable errors;
* :func:`build` — compiles a :class:`SystemConfig` into a wired
  :class:`Session` (stream → store → model → trainer → pipeline → serving)
  with lifecycle methods ``train`` / ``serve`` / ``run_pipeline`` /
  ``snapshot`` / ``checkpoint`` / ``restore`` / ``describe``;
* :func:`register_backend` — the backend capability registry that both the
  factories and the stores consult, and the hook third-party embedding
  schemes use to plug in;
* :mod:`repro.api.spec` — the single parser for per-field table-group spec
  strings (``"full:tiny,cafe[cr=16]:tail"``).

The consolidated command line lives in :mod:`repro.api.cli` and is what
``python -m repro`` runs::

    python -m repro train --config examples/configs/quickstart.json
    python -m repro pipeline --config c.json --set store.num_shards=4

This module resolves its exports lazily so that low-level modules (e.g.
``repro.data.schema``, which delegates spec parsing to
:mod:`repro.api.spec`) can import ``repro.api`` submodules without pulling
the whole session machinery — and its heavier dependencies — into every
import chain.
"""

from __future__ import annotations

_EXPORTS = {
    # config tree
    "SystemConfig": "repro.api.config",
    "DataConfig": "repro.api.config",
    "StoreConfig": "repro.api.config",
    "ModelConfig": "repro.api.config",
    "TrainConfig": "repro.api.config",
    "ServeConfig": "repro.api.config",
    "PipelineConfig": "repro.api.config",
    "load_config": "repro.api.config",
    "apply_overrides": "repro.api.config",
    # session
    "Session": "repro.api.session",
    "build": "repro.api.session",
    # registry
    "BackendCapabilities": "repro.api.registry",
    "RegisteredBackend": "repro.api.registry",
    "register_backend": "repro.api.registry",
    "get_backend": "repro.api.registry",
    "backend_names": "repro.api.registry",
    "capabilities_of": "repro.api.registry",
    # kernel-backend registry (fused train-step math)
    "register_kernel_backend": "repro.api.registry",
    "unregister_kernel_backend": "repro.api.registry",
    "available_kernel_backends": "repro.api.registry",
    "kernel_backend_available": "repro.api.registry",
    "kernel_registry_summary": "repro.api.registry",
    "resolve_kernel_backend_name": "repro.api.registry",
    # spec parsing
    "SpecEntry": "repro.api.spec",
    "ParsedSpec": "repro.api.spec",
    "parse_spec": "repro.api.spec",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute '{name}'")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__

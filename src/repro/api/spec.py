"""The one parser for per-field table-group spec strings.

A *field spec* is the compact notation every entry point uses to describe
which embedding backend serves which fields::

    "cafe"                                  one uniform CAFE table
    "full:tiny,cafe:tail"                   tiny fields uncompressed, tails on CAFE
    "full:tiny,cafe[cr=16]:tail,hash[cr=8,dim=4]:mid"

Each comma-separated entry is ``backend[options]:class`` where ``class`` is
one of :data:`FIELD_CLASSES` — the ``tiny`` / ``mid`` / ``tail`` size classes
(see :func:`repro.data.schema.classify_fields`), ``rest`` (every field not
matched by an earlier entry) or ``all``.  Options in square brackets are
``cr`` (compression ratio), ``dim`` (narrow native dimension, projected up),
``seed`` (group hash seed) and ``shards`` (shards within the group).

Historically the string was parsed in :mod:`repro.data.schema` while the
store factory re-derived groupedness with its own ``":" in spec`` check.
This module is now the single implementation: :func:`parse_spec` tokenizes
and validates, :func:`resolve_field_configs` binds a parsed spec to a
dataset schema, and both ``repro.data.schema.field_configs_from_spec`` and
``repro.embeddings.create_embedding_store`` delegate here.

This module deliberately imports nothing heavier than ``repro.errors`` at
module scope so every layer (data, embeddings, store, api) can use it
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataError

#: Size classes a field can fall into when a table-group spec is resolved.
FIELD_CLASSES = ("tiny", "mid", "tail", "rest", "all")

#: Cardinality at or below which a field counts as ``tiny`` by default.
DEFAULT_TINY_MAX = 100

#: Cardinality at or above which a field counts as ``tail`` by default.
DEFAULT_TAIL_MIN = 2000

#: Option keys an entry's ``[...]`` block may set.
SPEC_OPTIONS = ("cr", "dim", "seed", "shards")


@dataclass(frozen=True)
class SpecEntry:
    """One ``backend[options]:class`` entry of a field spec."""

    backend: str
    field_class: str
    options: dict = field(default_factory=dict)
    #: Whether the entry spelled out an explicit ``:class`` suffix (a bare
    #: backend name means ``all`` but marks the spec as *uniform*).
    explicit_class: bool = True

    def option_int(self, key: str) -> int | None:
        return int(self.options[key]) if key in self.options else None


@dataclass(frozen=True)
class ParsedSpec:
    """Validated parse of one spec string."""

    raw: str
    entries: tuple[SpecEntry, ...]

    @property
    def grouped(self) -> bool:
        """Whether the spec asks for a per-field :class:`~repro.store.
        table_group.TableGroupStore` rather than one uniform table.

        A spec is grouped exactly when it routes by field class — any entry
        carries an explicit ``:class`` suffix.  A bare backend name
        (``"cafe"``, ``"hash[cr=8]"``) stays the uniform single-table case.
        """
        return any(entry.explicit_class for entry in self.entries)

    @property
    def backends(self) -> tuple[str, ...]:
        return tuple(entry.backend for entry in self.entries)


def _split_entries(spec: str) -> list[str]:
    """Split on commas, but not the commas inside ``[...]`` option blocks."""
    raw_entries, depth, start = [], 0, 0
    for position, char in enumerate(spec):
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == "," and depth == 0:
            raw_entries.append(spec[start:position])
            start = position + 1
    raw_entries.append(spec[start:])
    return raw_entries


def parse_spec(spec: str, known_backends: tuple[str, ...] | None = None) -> ParsedSpec:
    """Tokenize and validate a field spec string.

    Raises :class:`~repro.errors.DataError` with an actionable message on
    malformed entries, unknown field classes or unknown option keys.  When
    ``known_backends`` is given (e.g. :func:`repro.api.registry.
    backend_names`), backend names are validated against it too — the eager
    check :class:`~repro.api.config.StoreConfig` runs at config time.
    """
    if not isinstance(spec, str):
        raise DataError(f"field spec must be a string, got {type(spec).__name__}")
    entries: list[SpecEntry] = []
    for raw in _split_entries(spec):
        raw = raw.strip()
        if not raw:
            continue
        backend_part, sep, class_name = raw.partition(":")
        explicit_class = bool(sep)
        class_name = class_name.strip().lower() if sep else "all"
        backend_part = backend_part.strip()
        options: dict[str, float] = {}
        if "[" in backend_part:
            if not backend_part.endswith("]"):
                raise DataError(f"malformed spec entry '{raw}': unclosed '['")
            backend_name, _, option_text = backend_part[:-1].partition("[")
            for pair in option_text.split(","):
                key, sep_eq, value = pair.partition("=")
                if not sep_eq:
                    raise DataError(f"malformed spec option '{pair}' in entry '{raw}'")
                key = key.strip().lower()
                try:
                    options[key] = float(value)
                except ValueError:
                    raise DataError(
                        f"spec option '{key}' in entry '{raw}' needs a numeric value, "
                        f"got '{value.strip()}'"
                    ) from None
            backend_part = backend_name.strip()
        if class_name not in FIELD_CLASSES:
            raise DataError(
                f"unknown field class '{class_name}' in spec entry '{raw}'; "
                f"expected one of {FIELD_CLASSES}"
            )
        unknown = set(options) - set(SPEC_OPTIONS)
        if unknown:
            raise DataError(f"unknown spec options {sorted(unknown)} in entry '{raw}'")
        if not backend_part:
            raise DataError(f"spec entry '{raw}' names no backend")
        backend = backend_part.lower()
        if known_backends is not None and backend not in known_backends:
            raise DataError(
                f"unknown backend '{backend}' in spec entry '{raw}'; registered "
                f"backends: {sorted(known_backends)}"
            )
        entries.append(
            SpecEntry(
                backend=backend,
                field_class=class_name,
                options=options,
                explicit_class=explicit_class,
            )
        )
    if not entries:
        raise DataError(f"table-group spec '{spec}' contains no entries")
    if len(entries) > 1 and not any(entry.explicit_class for entry in entries):
        raise DataError(
            f"spec '{spec}' lists multiple backends but no field classes, so only "
            "the first would ever apply; add ':class' suffixes (e.g. "
            f"'{entries[0].backend}:tiny,{entries[1].backend}:rest') or use a "
            "single backend"
        )
    return ParsedSpec(raw=spec, entries=tuple(entries))


def is_grouped_spec(spec: str | None) -> bool:
    """Whether ``spec`` selects a table-group store (vs. a uniform table)."""
    if spec is None:
        return False
    return parse_spec(spec).grouped


def resolve_field_configs(
    schema,
    parsed: ParsedSpec,
    compression_ratio: float = 1.0,
    tiny_max: int = DEFAULT_TINY_MAX,
    tail_min: int = DEFAULT_TAIL_MIN,
) -> list:
    """Bind a parsed spec to a schema: one ``FieldConfig`` per field.

    Fields are classified by :func:`repro.data.schema.classify_fields` with
    the given thresholds; entries claim their class in order, ``rest`` /
    ``all`` claim everything unclaimed, and fields matched by no entry fall
    to the *last* entry's backend.  ``compression_ratio`` is the default
    ``cr`` for entries that do not set one.
    """
    # Late import: repro.data.schema itself delegates to this module.
    from repro.data.schema import FieldConfig, classify_fields

    classes = classify_fields(schema, tiny_max=tiny_max, tail_min=tail_min)
    configs: list[FieldConfig | None] = [None] * schema.num_fields
    last = parsed.entries[-1]
    ordered = parsed.entries + (
        SpecEntry(last.backend, "rest", last.options),  # implicit fallback
    )
    for entry in ordered:
        for index, field_schema in enumerate(schema.fields):
            if configs[index] is not None:
                continue
            if entry.field_class in ("all", "rest") or classes[index] == entry.field_class:
                configs[index] = FieldConfig(
                    field=field_schema.name,
                    backend=entry.backend,
                    dim=entry.option_int("dim"),
                    compression_ratio=float(entry.options.get("cr", compression_ratio)),
                    hash_seed=entry.option_int("seed"),
                    num_shards=int(entry.options.get("shards", 1)),
                )
    # The implicit "rest" fallback guarantees every slot is assigned.
    return [config for config in configs if config is not None]


def field_configs_from_spec(
    schema,
    spec: str,
    compression_ratio: float = 1.0,
    tiny_max: int = DEFAULT_TINY_MAX,
    tail_min: int = DEFAULT_TAIL_MIN,
) -> list:
    """Parse ``spec`` and resolve it against ``schema`` in one call."""
    return resolve_field_configs(
        schema,
        parse_spec(spec),
        compression_ratio=compression_ratio,
        tiny_max=tiny_max,
        tail_min=tail_min,
    )

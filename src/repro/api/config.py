"""The declarative configuration tree: one JSON file describes a whole run.

:class:`SystemConfig` nests one section per layer of the system —
``data`` (which synthetic preset, at what scale), ``store`` (embedding
backends, sharding, executor), ``model`` (dense architecture), ``train``,
``serve`` and ``pipeline`` (cadences) — plus one global ``seed``.  The tree:

* **round-trips losslessly**: ``SystemConfig.from_json(cfg.to_json()) ==
  cfg``, and building a session from either side is bit-exact;
* **validates eagerly**: every section checks its values at construction
  time and raises :class:`~repro.errors.ConfigurationError` with the valid
  alternatives spelled out, so a typo fails at ``validate-config`` time,
  not twenty minutes into a run;
* **supports dotted overrides**: :func:`apply_overrides` implements the CLI
  ``--set store.num_shards=4`` syntax with type-aware coercion.

Spec strings inside ``store.spec`` are parsed by the single shared parser
(:mod:`repro.api.spec`) and backend names are checked against the
capability registry, so a registered third-party backend is immediately
legal in a config file.
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import types
import typing
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError


# --------------------------------------------------------------------- #
# Generic dataclass <-> dict machinery
# --------------------------------------------------------------------- #
def _valid_keys(cls) -> list[str]:
    return [f.name for f in dataclasses.fields(cls)]


def _unknown_key_error(cls, key: str, path: str) -> ConfigurationError:
    valid = _valid_keys(cls)
    suggestion = difflib.get_close_matches(key, valid, n=1)
    hint = f"; did you mean '{suggestion[0]}'?" if suggestion else ""
    dotted = f"{path}.{key}" if path else key
    return ConfigurationError(
        f"unknown config key '{dotted}'{hint} (valid keys under "
        f"'{path or 'the top level'}': {valid})"
    )


def _check_value_type(value, annotation, dotted: str) -> None:
    """JSON-level type check so a quoted number fails with the key named,
    not with a bare TypeError from a range comparison (or silently)."""
    origin = typing.get_origin(annotation)
    if origin in (typing.Union, types.UnionType):
        args = typing.get_args(annotation)
        if value is None and type(None) in args:
            return
        non_none = [a for a in args if a is not type(None)]
        annotation = non_none[0] if non_none else str
        origin = typing.get_origin(annotation)
    expected_name = getattr(annotation, "__name__", str(annotation))
    if annotation is bool:
        ok = isinstance(value, bool)
    elif annotation is int:
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif annotation is float:
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif annotation is str:
        ok = isinstance(value, str)
    elif annotation is list or origin is list:
        ok = isinstance(value, list)
        expected_name = "list"
    else:  # pragma: no cover - no other annotations in the tree
        return
    if not ok:
        raise ConfigurationError(
            f"config key '{dotted}' must be {expected_name}, got "
            f"{type(value).__name__} ({value!r})"
        )


def _section_from_dict(cls, data: dict, path: str):
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"config section '{path}' must be an object, got {type(data).__name__}"
        )
    hints = typing.get_type_hints(cls)
    valid = set(_valid_keys(cls))
    for key, value in data.items():
        if key not in valid:
            raise _unknown_key_error(cls, key, path)
        _check_value_type(value, hints[key], f"{path}.{key}" if path else key)
    return cls(**data)


def _section_to_dict(section) -> dict:
    return dataclasses.asdict(section)


def _coerce(text: str, annotation, dotted: str):
    """Parse a ``--set`` override string to the annotated field type."""
    origin = typing.get_origin(annotation)
    if origin in (typing.Union, types.UnionType):
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        if text.strip().lower() in ("none", "null"):
            return None
        annotation = args[0] if args else str
        origin = typing.get_origin(annotation)
    try:
        if annotation is bool:
            lowered = text.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(f"not a boolean: '{text}'")
        if annotation is int:
            return int(text)
        if annotation is float:
            return float(text)
        if annotation is str:
            return text
        # Structured fields (lists of field configs, ...) take JSON.
        return json.loads(text)
    except (ValueError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot parse override '{dotted}={text}': {exc}") from None


# --------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------- #
@dataclass
class DataConfig:
    """Which dataset preset feeds the run.

    ``dataset`` is one of the paper's presets; ``scale`` picks the workload
    size (cardinalities, samples/day, default batch size); ``num_days`` /
    ``samples_per_day`` override the preset's stream length.
    """

    dataset: str = "criteo"
    scale: str = "tiny"
    num_days: int | None = None
    samples_per_day: int | None = None

    def __post_init__(self):
        from repro.data.schema import PAPER_DATASET_STATS
        from repro.experiments.common import SCALES

        if self.dataset.lower() not in PAPER_DATASET_STATS:
            raise ConfigurationError(
                f"data.dataset '{self.dataset}' is not a known preset; expected one "
                f"of {sorted(PAPER_DATASET_STATS)}"
            )
        if self.scale not in SCALES:
            raise ConfigurationError(
                f"data.scale '{self.scale}' is not a known scale; expected one of "
                f"{sorted(SCALES)}"
            )
        if self.num_days is not None and self.num_days <= 0:
            raise ConfigurationError(f"data.num_days must be positive, got {self.num_days}")
        if self.samples_per_day is not None and self.samples_per_day <= 0:
            raise ConfigurationError(
                f"data.samples_per_day must be positive, got {self.samples_per_day}"
            )


@dataclass
class StoreConfig:
    """The embedding store: backends, budgets, sharding, fan-out runtime.

    ``spec`` is a field-spec string — a plain backend name (``"cafe"``,
    optionally with ``[cr=...,shards=...]`` options) for one uniform table,
    or a table-group spec (``"full:tiny,cafe[cr=16]:tail"``) for a
    heterogeneous per-field store.  ``fields`` alternatively gives explicit
    per-field configs (one object per schema field, in order, with the keys
    of :class:`repro.data.schema.FieldConfig`); set ``spec`` to ``null``
    when using it.  ``num_shards`` shards the uniform case; table-group
    stores shard within a group via the ``[shards=N]`` option instead.
    """

    spec: str | None = "cafe"
    compression_ratio: float = 10.0
    num_shards: int = 1
    executor: str = "serial"
    executor_workers: int | None = None
    optimizer: str = "sgd"
    learning_rate: float = 0.05
    dtype: str = "float32"
    kernels: str = "numpy"
    grad_exchange: str = "dense"
    fields: list | None = None

    def __post_init__(self):
        import numpy as np

        from repro.api import registry, spec as spec_module
        from repro.runtime.executor import EXECUTOR_KINDS, canonical_executor_kind

        if self.compression_ratio <= 0:
            raise ConfigurationError(
                f"store.compression_ratio must be positive, got {self.compression_ratio}"
            )
        if self.num_shards <= 0:
            raise ConfigurationError(
                f"store.num_shards must be positive, got {self.num_shards}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"store.learning_rate must be positive, got {self.learning_rate}"
            )
        try:
            self.executor = canonical_executor_kind(self.executor)
        except ValueError:
            raise ConfigurationError(
                f"store.executor '{self.executor}' is not a known executor; expected "
                f"one of {sorted(EXECUTOR_KINDS)}"
            ) from None
        if self.executor_workers is not None and self.executor_workers <= 0:
            raise ConfigurationError(
                f"store.executor_workers must be positive, got {self.executor_workers}"
            )
        from repro.nn.optim import make_row_optimizer

        try:
            # Full validation (names, bracket options, ranges), state-free:
            # row optimizers allocate lazily on first use.
            make_row_optimizer(self.optimizer, self.learning_rate)
        except ValueError as exc:
            raise ConfigurationError(f"store.optimizer: {exc}") from None
        from repro.store.grad_exchange import GRAD_EXCHANGE_MODES

        if self.grad_exchange not in GRAD_EXCHANGE_MODES:
            suggestion = difflib.get_close_matches(
                self.grad_exchange, GRAD_EXCHANGE_MODES, n=1
            )
            hint = f"; did you mean '{suggestion[0]}'?" if suggestion else ""
            raise ConfigurationError(
                f"store.grad_exchange '{self.grad_exchange}' is not a known "
                f"exchange mode{hint} (expected one of {sorted(GRAD_EXCHANGE_MODES)})"
            )
        from repro.kernels import resolve_kernel_backend_name

        # Fail fast on an unknown/unavailable kernel backend; the configured
        # name (possibly "auto") is kept and resolved again at build time.
        resolve_kernel_backend_name(self.kernels)
        try:
            if np.dtype(self.dtype).kind != "f":
                raise TypeError(f"'{self.dtype}' is not a float dtype")
        except TypeError as exc:
            raise ConfigurationError(f"store.dtype: {exc}") from None
        if self.fields is not None:
            if self.spec is not None:
                raise ConfigurationError(
                    "store.fields and store.spec are mutually exclusive; set "
                    "store.spec to null when listing explicit per-field configs"
                )
            self._check_fields()
            return
        if self.spec is None:
            raise ConfigurationError("store.spec must be set (or give store.fields)")
        from repro.errors import DataError

        try:
            parsed = spec_module.parse_spec(self.spec, known_backends=registry.backend_names())
        except DataError as exc:
            raise ConfigurationError(f"store.spec: {exc}") from None
        if parsed.grouped and self.num_shards > 1:
            raise ConfigurationError(
                "store.num_shards does not apply to a table-group spec; use the "
                "[shards=N] option on the group entry instead"
            )

    def _check_fields(self) -> None:
        from repro.api import registry
        from repro.data.schema import FieldConfig

        if not isinstance(self.fields, list) or not self.fields:
            raise ConfigurationError("store.fields must be a non-empty list of objects")
        valid = {f.name for f in dataclasses.fields(FieldConfig)}
        for position, entry in enumerate(self.fields):
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"store.fields[{position}] must be an object, got "
                    f"{type(entry).__name__}"
                )
            unknown = set(entry) - valid
            if unknown:
                raise ConfigurationError(
                    f"store.fields[{position}] has unknown keys {sorted(unknown)}; "
                    f"valid keys: {sorted(valid)}"
                )
            if "field" not in entry:
                raise ConfigurationError(
                    f"store.fields[{position}] needs a 'field' name"
                )
            backend = entry.get("backend", "cafe")
            if backend.lower() not in registry.backend_names():
                raise ConfigurationError(
                    f"store.fields[{position}] backend '{backend}' is not registered; "
                    f"registered backends: {sorted(registry.backend_names())}"
                )

    @property
    def grouped(self) -> bool:
        """Whether this config builds a table-group store."""
        if self.fields is not None:
            return True
        from repro.api import spec as spec_module

        return spec_module.parse_spec(self.spec).grouped

    def field_configs(self):
        """Explicit ``fields`` entries as :class:`~repro.data.schema.
        FieldConfig` objects (``None`` when ``fields`` is unset)."""
        if self.fields is None:
            return None
        from repro.data.schema import FieldConfig

        return [FieldConfig(**entry) for entry in self.fields]


@dataclass
class ModelConfig:
    """Dense architecture on top of the store."""

    name: str = "dlrm"

    def __post_init__(self):
        from repro.models import MODEL_NAMES

        if self.name.lower() not in MODEL_NAMES:
            raise ConfigurationError(
                f"model.name '{self.name}' is not a known model; expected one of "
                f"{sorted(MODEL_NAMES)}"
            )


@dataclass
class TrainConfig:
    """Training-loop knobs (``batch_size=null`` means the scale default)."""

    batch_size: int | None = None
    max_steps: int | None = None
    dense_optimizer: str = "adam"
    dense_learning_rate: float = 0.01
    eval_every: int | None = None

    def __post_init__(self):
        if self.batch_size is not None and self.batch_size <= 0:
            raise ConfigurationError(
                f"train.batch_size must be positive, got {self.batch_size}"
            )
        if self.max_steps is not None and self.max_steps <= 0:
            raise ConfigurationError(
                f"train.max_steps must be positive, got {self.max_steps}"
            )
        if self.dense_learning_rate <= 0:
            raise ConfigurationError(
                f"train.dense_learning_rate must be positive, got "
                f"{self.dense_learning_rate}"
            )
        if self.dense_optimizer.lower() not in ("sgd", "adagrad", "adam"):
            raise ConfigurationError(
                f"train.dense_optimizer '{self.dense_optimizer}' is not a known "
                "optimizer; expected one of ['adagrad', 'adam', 'sgd']"
            )


@dataclass
class ServeConfig:
    """Offline serving replay (the ``serve`` lifecycle / subcommand).

    With ``replicas == 0`` (the default) the classic single-engine replay
    runs.  Setting ``replicas > 0`` switches to the replicated tier: a
    delta-snapshot publisher feeds N replicas behind a router, and the
    replay becomes a generated traffic trace (``traffic`` names one of the
    :data:`repro.serving.traffic.TRAFFIC_PATTERNS` presets) driven through
    the virtual-time workload simulator.  ``slo_target_p99_ms > 0`` arms
    the micro-batch SLO controller against that target.
    """

    micro_batch: int = 64
    requests: int = 256
    warmup_steps: int = 20
    replicas: int = 0
    policy: str = "round_robin"
    rebase_every: int = 8
    traffic: str = "zipf"
    traffic_duration_s: float = 2.0
    traffic_rate: float = 2000.0
    slo_target_p99_ms: float = 0.0

    def __post_init__(self):
        if self.micro_batch <= 0:
            raise ConfigurationError(
                f"serve.micro_batch must be positive, got {self.micro_batch}"
            )
        if self.requests <= 0:
            raise ConfigurationError(f"serve.requests must be positive, got {self.requests}")
        if self.warmup_steps < 0:
            raise ConfigurationError(
                f"serve.warmup_steps must be non-negative, got {self.warmup_steps}"
            )
        if self.replicas < 0:
            raise ConfigurationError(
                f"serve.replicas must be non-negative (0 = single engine), "
                f"got {self.replicas}"
            )
        if self.policy not in ("round_robin", "least_loaded"):
            raise ConfigurationError(
                f"serve.policy must be 'round_robin' or 'least_loaded', "
                f"got '{self.policy}'"
            )
        if self.rebase_every < 0:
            raise ConfigurationError(
                f"serve.rebase_every must be non-negative (0 = never rebase, "
                f"1 = always full), got {self.rebase_every}"
            )
        if self.traffic not in ("uniform", "zipf", "zipf-diurnal", "zipf-burst"):
            raise ConfigurationError(
                f"serve.traffic '{self.traffic}' is not a known pattern; expected "
                "one of ['uniform', 'zipf', 'zipf-burst', 'zipf-diurnal']"
            )
        if self.traffic_duration_s <= 0:
            raise ConfigurationError(
                f"serve.traffic_duration_s must be positive, got {self.traffic_duration_s}"
            )
        if self.traffic_rate <= 0:
            raise ConfigurationError(
                f"serve.traffic_rate must be positive, got {self.traffic_rate}"
            )
        if self.slo_target_p99_ms < 0:
            raise ConfigurationError(
                f"serve.slo_target_p99_ms must be non-negative (0 disables the "
                f"controller), got {self.slo_target_p99_ms}"
            )


@dataclass
class PipelineConfig:
    """Online train→serve pipeline cadences (the ``pipeline`` lifecycle)."""

    publish_every_steps: int = 10
    probe_every_steps: int = 5
    micro_batch: int = 64
    probe_rows: int = 1
    max_steps: int | None = None
    final_publish: bool = True

    def __post_init__(self):
        if self.publish_every_steps <= 0:
            raise ConfigurationError(
                f"pipeline.publish_every_steps must be positive, got "
                f"{self.publish_every_steps}"
            )
        if self.probe_every_steps < 0:
            raise ConfigurationError(
                f"pipeline.probe_every_steps must be non-negative, got "
                f"{self.probe_every_steps}"
            )
        if self.micro_batch <= 0:
            raise ConfigurationError(
                f"pipeline.micro_batch must be positive, got {self.micro_batch}"
            )
        if self.probe_rows <= 0:
            raise ConfigurationError(
                f"pipeline.probe_rows must be positive, got {self.probe_rows}"
            )
        if self.max_steps is not None and self.max_steps <= 0:
            raise ConfigurationError(
                f"pipeline.max_steps must be positive, got {self.max_steps}"
            )


_SECTIONS = {
    "data": DataConfig,
    "store": StoreConfig,
    "model": ModelConfig,
    "train": TrainConfig,
    "serve": ServeConfig,
    "pipeline": PipelineConfig,
}


@dataclass
class SystemConfig:
    """The whole system, declaratively.  See the module docstring."""

    seed: int = 0
    data: DataConfig = field(default_factory=DataConfig)
    store: StoreConfig = field(default_factory=StoreConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    def __post_init__(self):
        for name, cls in _SECTIONS.items():
            value = getattr(self, name)
            if isinstance(value, dict):
                setattr(self, name, _section_from_dict(cls, value, name))
            elif not isinstance(value, cls):
                raise ConfigurationError(
                    f"config section '{name}' must be a {cls.__name__} or an object, "
                    f"got {type(value).__name__}"
                )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        out: dict = {"seed": self.seed}
        for name in _SECTIONS:
            out[name] = _section_to_dict(getattr(self, name))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a system config must be a JSON object, got {type(data).__name__}"
            )
        valid = set(_SECTIONS) | {"seed"}
        for key in data:
            if key not in valid:
                raise _unknown_key_error(cls, key, "")
        seed = data.get("seed", 0)
        _check_value_type(seed, int, "seed")
        kwargs: dict = {"seed": seed}
        for name, section_cls in _SECTIONS.items():
            if name in data:
                kwargs[name] = _section_from_dict(section_cls, data[name], name)
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SystemConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"config is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | Path) -> "SystemConfig":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read config '{path}': {exc}") from None
        try:
            return cls.from_json(text)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{path}: {exc}") from None

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "SystemConfig":
        """Re-run every section's eager checks; returns ``self``.

        Sections validate at construction, so this exists for callers that
        mutated a config in place and want the same guarantees back.
        """
        _check_value_type(self.seed, int, "seed")
        for name, cls in _SECTIONS.items():
            _section_from_dict(cls, _section_to_dict(getattr(self, name)), name)
        return self


def load_config(path: str | Path) -> SystemConfig:
    """Read and validate a :class:`SystemConfig` from a JSON file."""
    return SystemConfig.load(path)


def apply_overrides(config: SystemConfig, assignments: list[str] | None) -> SystemConfig:
    """Apply dotted ``section.key=value`` overrides; returns a new config.

    This is the CLI ``--set`` implementation: ``apply_overrides(cfg,
    ["store.num_shards=4", "pipeline.max_steps=100"])``.  Values are coerced
    to the field's annotated type (``none``/``null`` clear optional fields;
    structured fields take JSON).  Unknown sections or keys raise with the
    valid alternatives listed.
    """
    if not assignments:
        return config
    data = config.to_dict()
    for assignment in assignments:
        key, sep, value = assignment.partition("=")
        if not sep:
            raise ConfigurationError(
                f"override '{assignment}' is not of the form section.key=value"
            )
        parts = key.strip().split(".")
        if len(parts) == 1 and parts[0] == "seed":
            data["seed"] = _coerce(value, int, "seed")
            continue
        if len(parts) != 2:
            raise ConfigurationError(
                f"override key '{key}' must be 'seed' or 'section.key' with section "
                f"in {sorted(_SECTIONS)}"
            )
        section_name, field_name = parts
        section_cls = _SECTIONS.get(section_name)
        if section_cls is None:
            suggestion = difflib.get_close_matches(section_name, list(_SECTIONS), n=1)
            hint = f"; did you mean '{suggestion[0]}'?" if suggestion else ""
            raise ConfigurationError(
                f"unknown config section '{section_name}'{hint} (sections: "
                f"{sorted(_SECTIONS)})"
            )
        hints = typing.get_type_hints(section_cls)
        if field_name not in hints:
            raise _unknown_key_error(section_cls, field_name, section_name)
        data[section_name][field_name] = _coerce(value, hints[field_name], key)
    return SystemConfig.from_dict(data)

"""Backend capability registry: one place that knows what a backend can do.

Before this module, the stores and the checkpoint code probed backends
structurally — ``hasattr(shard, "state_dict")`` here, ``type(shard).rebalance
is not CompressedEmbedding.rebalance`` there — and the embedding factory was
a closed if/elif chain.  The registry replaces both:

* every backend registers under a name with a factory and **declared
  capabilities** (:class:`BackendCapabilities`); the factories
  (:func:`repro.embeddings.create_embedding`, the store builders) and the
  spec parser resolve names here, so a third-party scheme plugs in with one
  :func:`register_backend` call — no edits to the factory chain;
* :func:`supports_rebalance` / :func:`supports_state_dict` /
  :func:`supports_load_state_dict` answer capability questions about
  *instances*, consulting the declared capabilities for registered classes
  and falling back to the old structural probe for everything else (so
  composite stores and hand-rolled layers keep working unregistered).

The built-in backends register themselves when :mod:`repro.embeddings`
imports; :func:`_ensure_builtins` triggers that import lazily so registry
lookups work regardless of import order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.errors import ConfigurationError

# Kernel backends (the fused train-step math: segment sum, scatter-apply,
# sketch insert) register through the same public surface.  The registry
# itself lives in repro.kernels; these re-exports make
# ``repro.api.registry.register_kernel_backend`` the one-stop extension
# point alongside ``register_backend``.
from repro.kernels.base import (
    available_kernel_backends,
    kernel_backend_available,
    kernel_registry_summary,
    register_kernel_backend,
    resolve_kernel_backend_name,
    unregister_kernel_backend,
)


class UnknownBackendError(ConfigurationError, ValueError):
    """Raised when a backend name resolves to nothing in the registry.

    Subclasses ``ValueError`` so callers that historically caught the
    factory's ``ValueError`` keep working.
    """


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend supports beyond the core lookup/apply_gradients pair.

    ``supports_rebalance``
        The backend has a real adaptivity pass; stores privatize (for
        copy-on-write) and fan out ``rebalance()`` only to such backends.
    ``supports_state_dict``
        ``state_dict()`` / ``load_state_dict()`` round-trip the full sparse
        state; checkpoints include it, and sharded / table-group stores can
        namespace it.
    ``supports_snapshot``
        The backend is safe to freeze under a copy-on-write store snapshot
        (deep-copyable, reads never mutate).
    ``trainable_projection``
        The backend trains per-field up-projections internally (the MDE
        idiom); informational for planners that add their own projections.
    ``supports_process_parallel``
        The backend can be adopted into a pinned worker process by the
        :class:`~repro.runtime.process.ProcessShardExecutor` (picklable,
        no process-hostile resources).  Defaults to ``True``; backends
        holding sockets, file handles or other fork-hostile state opt out.
    """

    supports_rebalance: bool = False
    supports_state_dict: bool = False
    supports_snapshot: bool = True
    trainable_projection: bool = False
    supports_process_parallel: bool = True

    def as_dict(self) -> dict[str, bool]:
        return {
            "supports_rebalance": self.supports_rebalance,
            "supports_state_dict": self.supports_state_dict,
            "supports_snapshot": self.supports_snapshot,
            "trainable_projection": self.trainable_projection,
            "supports_process_parallel": self.supports_process_parallel,
        }


@dataclass(frozen=True)
class RegisteredBackend:
    """One named backend: factory + declared capabilities + side inputs."""

    name: str
    factory: Callable[..., Any]
    capabilities: BackendCapabilities
    #: Side inputs the factory needs beyond the common arguments, e.g.
    #: ``("field_cardinalities",)`` for MDE or ``("frequencies",)`` for the
    #: offline-separation oracle.  The store builders supply these
    #: automatically when a schema is at hand.
    requires: tuple[str, ...] = ()
    #: Spec-string options (beyond ``cr`` / ``shards`` / ``dim``, which the
    #: store layer consumes) the factory understands — ``("seed",)`` for
    #: hash-routing backends that take a ``hash_seed``.  Using an undeclared
    #: option in a spec is a clear error instead of a factory TypeError.
    spec_options: tuple[str, ...] = ()
    description: str = ""
    #: Concrete class the factory returns, when known; lets capability
    #: queries on instances use the declared flags instead of probing.
    backend_class: type | None = None


_BACKENDS: dict[str, RegisteredBackend] = {}
_CLASS_CAPABILITIES: dict[type, BackendCapabilities] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import :mod:`repro.embeddings` once so built-ins self-register."""
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        import repro.embeddings  # imported for its registration side effect


def register_backend(
    name: str,
    factory: Callable[..., Any],
    *,
    capabilities: BackendCapabilities | None = None,
    requires: tuple[str, ...] = (),
    spec_options: tuple[str, ...] = (),
    description: str = "",
    backend_class: type | None = None,
    overwrite: bool = False,
    **capability_flags: bool,
) -> RegisteredBackend:
    """Register an embedding backend under ``name``.

    ``factory`` is called as ``factory(num_features=..., dim=...,
    compression_ratio=..., optimizer=..., learning_rate=..., dtype=...,
    rng=..., **kwargs)`` and must return an object satisfying the
    :class:`~repro.embeddings.base.CompressedEmbedding` lookup /
    apply_gradients contract.  Capabilities may be passed as a ready
    :class:`BackendCapabilities` or as keyword flags
    (``supports_rebalance=True``).  Once registered, the name works
    everywhere a built-in method name does: ``create_embedding(name, ...)``,
    sharded stores, field specs (``"myscheme:tail"``) and
    :class:`~repro.api.config.SystemConfig`.
    """
    lowered = name.lower()
    if capabilities is None:
        capabilities = BackendCapabilities()
    if capability_flags:
        unknown = set(capability_flags) - set(BackendCapabilities().as_dict())
        if unknown:
            raise ConfigurationError(
                f"unknown capability flags {sorted(unknown)}; expected a subset of "
                f"{sorted(BackendCapabilities().as_dict())}"
            )
        capabilities = replace(capabilities, **capability_flags)
    if not overwrite and lowered in _BACKENDS:
        raise ConfigurationError(
            f"backend '{lowered}' is already registered; pass overwrite=True to replace it"
        )
    spec = RegisteredBackend(
        name=lowered,
        factory=factory,
        capabilities=capabilities,
        requires=tuple(requires),
        spec_options=tuple(spec_options),
        description=description,
        backend_class=backend_class,
    )
    _BACKENDS[lowered] = spec
    if backend_class is not None:
        _CLASS_CAPABILITIES[backend_class] = capabilities
    return spec


def unregister_backend(name: str) -> None:
    """Remove a registered backend (mainly for tests)."""
    spec = _BACKENDS.pop(name.lower(), None)
    if spec is not None and spec.backend_class is not None:
        _CLASS_CAPABILITIES.pop(spec.backend_class, None)


def get_backend(name: str) -> RegisteredBackend:
    """Look up a backend by name; raises with the available names."""
    _ensure_builtins()
    spec = _BACKENDS.get(name.lower())
    if spec is None:
        raise UnknownBackendError(
            f"unknown embedding backend '{name}'; registered backends: "
            f"{sorted(_BACKENDS)}"
        )
    return spec


def backend_names() -> tuple[str, ...]:
    """Names of all registered backends, registration order."""
    _ensure_builtins()
    return tuple(_BACKENDS)


def capabilities_of(backend: str | Any) -> BackendCapabilities:
    """Capabilities of a backend name, class or instance.

    Registered names and classes answer from their declaration; anything
    else is probed structurally, so unregistered composites (sharded /
    table-group stores, custom layers) still report honestly.
    """
    if isinstance(backend, str):
        return get_backend(backend).capabilities
    return BackendCapabilities(
        supports_rebalance=supports_rebalance(backend),
        supports_state_dict=supports_state_dict(backend),
        supports_snapshot=callable(getattr(backend, "snapshot", None))
        or _declared(backend, "supports_snapshot", True),
        trainable_projection=_declared(backend, "trainable_projection", False),
        supports_process_parallel=supports_process_parallel(backend),
    )


def _declared_capabilities(obj: Any) -> BackendCapabilities | None:
    """Declared capabilities of ``obj``'s *exact* class, if registered.

    Deliberately no MRO walk: a subclass of a registered backend may add
    capabilities structurally (e.g. bolt ``state_dict`` onto a scheme that
    declared none), and the declaration of the parent must not veto the
    structural probe for it.
    """
    _ensure_builtins()
    return _CLASS_CAPABILITIES.get(type(obj))


def _declared(obj: Any, flag: str, default: bool) -> bool:
    caps = _declared_capabilities(obj)
    return getattr(caps, flag) if caps is not None else default


def supports_rebalance(obj: Any) -> bool:
    """Whether ``obj`` has a real adaptivity pass worth fanning out to.

    Declared capability for registered backend classes; for anything else
    (composite stores, custom layers) falls back to checking that the class
    actually overrides :meth:`~repro.embeddings.base.CompressedEmbedding.
    rebalance` — calling the base no-op would privatize copy-on-write
    shards for nothing.
    """
    caps = _declared_capabilities(obj)
    if caps is not None:
        return caps.supports_rebalance
    rebalance = getattr(type(obj), "rebalance", None)
    if rebalance is None:
        return False
    from repro.embeddings.base import CompressedEmbedding

    return rebalance is not CompressedEmbedding.rebalance


def supports_state_dict(obj: Any) -> bool:
    """Whether ``obj`` can serialize its sparse state via ``state_dict()``."""
    caps = _declared_capabilities(obj)
    if caps is not None:
        return caps.supports_state_dict
    return callable(getattr(obj, "state_dict", None))


def supports_load_state_dict(obj: Any) -> bool:
    """Whether ``obj`` can restore sparse state via ``load_state_dict()``."""
    caps = _declared_capabilities(obj)
    if caps is not None:
        return caps.supports_state_dict
    return callable(getattr(obj, "load_state_dict", None))


def supports_process_parallel(obj: Any) -> bool:
    """Whether ``obj`` may be adopted into a shard worker process.

    Declared capability for registered backend classes; everything else
    defaults to ``True`` (the ordinary NumPy-backed layers all ship fine).
    """
    caps = _declared_capabilities(obj)
    if caps is not None:
        return caps.supports_process_parallel
    return True


def supports_sketch(obj: Any) -> bool:
    """Whether ``obj`` carries a hot-feature sketch worth merging.

    True for backends exposing :meth:`merged_sketch` (composite stores) or
    a non-``None`` ``sketch`` attribute (CAFE-style layers).  This is a
    structural probe by design — ``BackendCapabilities`` has no sketch flag
    because sketches are an emergent property of composition — and the
    registry is the one module allowed to probe.
    """
    if callable(getattr(obj, "merged_sketch", None)):
        return True
    return getattr(obj, "sketch", None) is not None


def sketch_of(obj: Any) -> Any:
    """The backend's hot-feature sketch, merged when it is a composite.

    Resolves :meth:`merged_sketch` first (sharded / table-group stores merge
    their members' sketches), then the plain ``sketch`` attribute; ``None``
    when the backend tracks no sketch.
    """
    merged = getattr(obj, "merged_sketch", None)
    if callable(merged):
        return merged()
    return getattr(obj, "sketch", None)


def supports_kernel_backend(obj: Any) -> bool:
    """Whether ``obj`` accepts :meth:`set_kernel_backend` (fused kernels)."""
    return callable(getattr(obj, "set_kernel_backend", None))


def shard_count(obj: Any) -> int | None:
    """Number of shards behind ``obj`` when it is a sharded composite.

    ``None`` for plain (unsharded) embedding layers; used by ``describe()``
    surfaces and the flat-checkpoint migration path to tell a
    sharded-within-group backend from a bare layer without probing.
    """
    count = getattr(obj, "num_shards", None)
    return int(count) if count is not None else None


def instance_capabilities(obj: Any) -> dict[str, bool]:
    """One-shot capability row for an instance (what shard proxies carry).

    The process runtime probes a backend exactly once at adopt time and
    pins the answers onto its :class:`~repro.runtime.process.ShardHandle`,
    because a structural probe on the proxy itself would always say yes.
    """
    return {
        "rebalance": supports_rebalance(obj),
        "state_dict": supports_state_dict(obj),
        "load_state_dict": supports_load_state_dict(obj),
        "sketch": supports_sketch(obj),
    }


def registry_summary() -> list[dict[str, Any]]:
    """One row per registered backend (for ``describe()`` and docs)."""
    _ensure_builtins()
    return [
        {
            "name": spec.name,
            "description": spec.description,
            "requires": list(spec.requires),
            "spec_options": list(spec.spec_options),
            **spec.capabilities.as_dict(),
        }
        for spec in _BACKENDS.values()
    ]

"""Compile a :class:`~repro.api.config.SystemConfig` into a wired system.

:func:`build` is the single construction path: it resolves the dataset
preset, builds the embedding store (uniform sharded or per-field table
groups), wires the model and trainer, and returns a :class:`Session` whose
lifecycle methods run every workload the three historical CLIs ran:

=================  ======================================================
``session.train()``         one (partial) chronological epoch + eval
``session.serve()``         warm-up train → snapshot → request replay
``session.run_pipeline()``  online train→publish→probe loop
``session.snapshot()``      O(1) copy-on-write store snapshot
``session.checkpoint(p)``   dense + sparse state to one ``.npz``
``session.restore(p)``      the inverse
``session.describe()``      the full resolved plan as one dictionary
=================  ======================================================

Construction is deterministic in ``config.seed``: building the same config
twice (or a JSON round-trip of it) yields bit-identical stores, models and
first-step losses — the property the config round-trip tests pin down.
"""

from __future__ import annotations

import time
from typing import Any

from repro.api.config import SystemConfig


def build(config: SystemConfig | dict | str) -> "Session":
    """Compile ``config`` (a :class:`SystemConfig`, a plain dict, or a path
    to a JSON file) into a ready :class:`Session`."""
    if isinstance(config, str):
        config = SystemConfig.load(config)
    elif isinstance(config, dict):
        config = SystemConfig.from_dict(config)
    return Session(config)


class Session:
    """A fully wired system: dataset → store → model → trainer (+ engines).

    The serving engine and the online pipeline are created on demand by
    :meth:`serve` / :meth:`run_pipeline`; everything else is built eagerly
    so configuration errors that need a schema (e.g. a per-field list that
    does not match the preset's fields) surface at build time.
    """

    def __init__(self, config: SystemConfig):
        from repro.experiments.common import build_dataset, get_scale
        from repro.models import create_model
        from repro.training.config import TrainingConfig
        from repro.training.trainer import Trainer

        config.validate()
        self.config = config
        self.scale = get_scale(config.data.scale)
        self.dataset = build_dataset(
            config.data.dataset,
            scale=config.data.scale,
            seed=config.seed,
            num_days=config.data.num_days,
        )
        if config.data.samples_per_day is not None:
            # build_dataset fixes samples/day from the scale; an explicit
            # override rebuilds the synthetic config with the same seed.
            from repro.data.synthetic import SyntheticCTRDataset, SyntheticConfig

            self.dataset = SyntheticCTRDataset(
                self.dataset.schema,
                config=SyntheticConfig(
                    samples_per_day=config.data.samples_per_day, seed=config.seed
                ),
            )
        self.schema = self.dataset.schema
        self.store = self._build_store()
        self.model = create_model(
            config.model.name,
            self.store,
            num_fields=self.schema.num_fields,
            num_numerical=self.schema.num_numerical,
            rng=config.seed,
        )
        self.batch_size = config.train.batch_size or self.scale.batch_size
        self.trainer = Trainer(
            self.model,
            TrainingConfig(
                batch_size=self.batch_size,
                dense_optimizer=config.train.dense_optimizer,
                dense_learning_rate=config.train.dense_learning_rate,
                embedding_dtype=config.store.dtype,
                eval_every=config.train.eval_every,
                seed=config.seed,
            ),
        )

    def _build_store(self):
        from repro.embeddings import create_embedding_store
        from repro.runtime.executor import create_executor

        config = self.config
        field_configs = config.store.field_configs()
        if field_configs is not None:
            self.schema.configure_fields(field_configs)
        return create_embedding_store(
            self.schema,
            spec=config.store.spec,
            compression_ratio=config.store.compression_ratio,
            num_shards=config.store.num_shards,
            executor=create_executor(
                config.store.executor, max_workers=config.store.executor_workers
            ),
            optimizer=config.store.optimizer,
            learning_rate=config.store.learning_rate,
            dtype=config.store.dtype,
            seed=config.seed,
            kernels=config.store.kernels,
            grad_exchange=config.store.grad_exchange,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle: training
    # ------------------------------------------------------------------ #
    def train(self, max_steps: int | None = None) -> dict[str, Any]:
        """Train over the chronological day-stream; returns a JSON-ready report.

        ``max_steps`` (or ``config.train.max_steps``) bounds the run; the
        held-out last day supplies the test AUC.  Calling ``train`` twice
        continues from where the first call stopped (same trainer, same
        stream position semantics as re-iterating the stream).
        """
        config = self.config
        max_steps = max_steps if max_steps is not None else config.train.max_steps
        started = time.perf_counter()
        history = self.trainer.train_stream(
            self.dataset.training_stream(self.batch_size),
            max_steps=max_steps,
        )
        elapsed = time.perf_counter() - started
        test_batch = self.dataset.test_batch(num_samples=self.scale.test_samples)
        report = {
            "steps": len(history.losses),
            "steps_per_s": round(len(history.losses) / elapsed, 2) if elapsed else 0.0,
            "avg_train_loss": round(history.average_loss, 5),
            "test_auc": round(self.trainer.evaluate_auc(test_batch), 4),
            "global_step": self.trainer.global_step,
        }
        plan_stats = self.trainer.embedding_plan_stats()
        if plan_stats is not None:
            report["plan_stats"] = plan_stats
        return {"config": config.to_dict(), "store": self.store.describe(), "train": report}

    # ------------------------------------------------------------------ #
    # Lifecycle: serving replay
    # ------------------------------------------------------------------ #
    def serve(self) -> dict[str, Any]:
        """Warm-up train, snapshot, replay requests.

        The zero-to-serving path the old ``python -m repro.serve`` ran:
        ``serve.warmup_steps`` training steps build non-trivial store state,
        then ``serve.requests`` single-row requests stream through the
        micro-batching engine against a fresh snapshot.  With
        ``serve.replicas > 0`` the replay instead goes through the
        replicated tier: bootstrap full publish, delta-publish rounds, then
        a generated traffic trace through the virtual-time workload driver
        (see :meth:`_serve_replicated`).
        """
        from repro.serving.engine import ServingEngine

        config = self.config
        if config.serve.warmup_steps:
            self.trainer.train_stream(
                self.dataset.training_stream(self.batch_size),
                max_steps=config.serve.warmup_steps,
            )
        if config.serve.replicas:
            return self._serve_replicated()
        engine = ServingEngine(self.model, max_batch_size=config.serve.micro_batch)
        replay = self.dataset.test_batch(num_samples=config.serve.requests)
        started = time.perf_counter()
        for row in range(len(replay)):
            numerical = replay.numerical[row] if self.schema.num_numerical else None
            engine.submit(replay.categorical[row], numerical)
        engine.flush()
        elapsed = time.perf_counter() - started
        stats = engine.stats()
        stats["requests_per_s"] = round(len(replay) / elapsed, 1)
        return {"config": config.to_dict(), "store": self.store.describe(), "serving": stats}

    def _serve_replicated(self) -> dict[str, Any]:
        """Replicated replay: delta-fed replicas under generated traffic.

        Three train→publish rounds follow the bootstrap full snapshot so the
        replay is served from a genuinely delta-patched view, then the
        configured traffic pattern is replayed through the replica router in
        virtual time (optionally under the SLO controller).
        """
        from repro.serving.replica import ReplicaTier
        from repro.serving.slo import SLOController
        from repro.serving.traffic import TrafficConfig, TrafficGenerator, run_workload

        config = self.config
        serve = config.serve
        tier = ReplicaTier(
            self.model,
            num_replicas=serve.replicas,
            max_batch_size=serve.micro_batch,
            policy=serve.policy,
            rebase_every=serve.rebase_every,
        )
        tier.publish()  # the full base snapshot every delta chains from
        delta_steps = max(1, serve.warmup_steps // 4 or 2)
        for _ in range(3):
            self.trainer.train_stream(
                self.dataset.training_stream(self.batch_size), max_steps=delta_steps
            )
            tier.publish()

        traffic = TrafficConfig.from_pattern(
            serve.traffic,
            duration_s=serve.traffic_duration_s,
            base_rate=serve.traffic_rate,
            seed=config.seed,
        )
        trace = TrafficGenerator(self.schema, traffic).trace()
        controller = None
        if serve.slo_target_p99_ms:
            controller = SLOController(
                serve.slo_target_p99_ms, micro_batch=serve.micro_batch
            )
        workload = run_workload(tier.replicas, trace, controller=controller)

        serving = tier.stats()
        serving["traffic"] = {
            "pattern": traffic.pattern,
            "duration_s": traffic.duration_s,
            "base_rate": traffic.base_rate,
            "requests": len(trace),
        }
        serving["workload"] = workload.as_dict()
        return {
            "config": config.to_dict(),
            "store": self.store.describe(),
            "serving": serving,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle: online pipeline
    # ------------------------------------------------------------------ #
    def run_pipeline(self) -> dict[str, Any]:
        """Run the online train→publish→probe loop over the day-stream."""
        from repro.runtime.pipeline import OnlinePipeline
        from repro.runtime.pipeline import PipelineConfig as RuntimePipelineConfig

        config = self.config
        pipeline = OnlinePipeline(
            self.model,
            config=RuntimePipelineConfig(
                publish_every_steps=config.pipeline.publish_every_steps,
                serving_micro_batch=config.pipeline.micro_batch,
                probe_every_steps=config.pipeline.probe_every_steps,
                probe_rows=config.pipeline.probe_rows,
                max_steps=config.pipeline.max_steps,
                final_publish=config.pipeline.final_publish,
            ),
            trainer=self.trainer,
        )
        probe_batch = self.dataset.test_batch(
            num_samples=max(config.pipeline.micro_batch, 64)
        )
        report = pipeline.run(
            self.dataset.training_stream(self.batch_size), probe_batch=probe_batch
        )
        return {
            "config": config.to_dict(),
            "store": self.store.describe(),
            "pipeline": report.as_dict(),
        }

    # ------------------------------------------------------------------ #
    # Lifecycle: snapshots and checkpoints
    # ------------------------------------------------------------------ #
    def snapshot(self):
        """O(1) copy-on-write snapshot of the live store (serving view)."""
        return self.store.snapshot()

    def checkpoint(self, path) -> Any:
        """Write dense + sparse state to one ``.npz``; returns the path."""
        from repro.training.checkpoint import save_checkpoint

        return save_checkpoint(path, self.model, step=self.trainer.global_step)

    def restore(self, path) -> int:
        """Restore a :meth:`checkpoint`; returns (and adopts) its step."""
        from repro.training.checkpoint import load_checkpoint

        step = load_checkpoint(path, self.model)
        self.trainer.global_step = step
        return step

    # ------------------------------------------------------------------ #
    # Introspection / teardown
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, Any]:
        """The full resolved plan: config, dataset, store, model, registry.

        The store section is the live ``store.describe()`` (which for
        table-group stores nests per-group rows under the same key schema);
        the registry section lists every backend the session could have
        used, with its declared capabilities.
        """
        from repro.api.registry import registry_summary

        return {
            "config": self.config.to_dict(),
            "data": {
                "dataset": self.schema.name,
                "num_fields": self.schema.num_fields,
                "num_features": self.schema.num_features,
                "num_numerical": self.schema.num_numerical,
                "embedding_dim": self.schema.embedding_dim,
                "num_days": self.schema.num_days,
                "batch_size": self.batch_size,
            },
            "store": self.store.describe(),
            "model": {
                "name": self.config.model.name,
                "dense_parameters": self.model.dense_parameter_count(),
            },
            "registry": registry_summary(),
        }

    def close(self) -> None:
        """Shut down the store's executor (thread pools, shard workers)."""
        executor = getattr(self.store, "executor", None)
        if executor is not None:
            executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

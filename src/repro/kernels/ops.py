"""Index ops shared by every kernel backend and the plan builder.

These are the sorting/segmentation primitives the fused hot path is built
from.  They stay pure numpy regardless of the selected kernel backend: plan
construction is index bookkeeping, and its cost is dominated by one argsort —
which :func:`stable_order` makes cheap with the composite-key trick below.
"""

from __future__ import annotations

import numpy as np


def stable_order(keys: np.ndarray) -> np.ndarray:
    """Permutation sorting ``keys`` ascending, ties kept in input order.

    A stable argsort (timsort/mergesort) on int64 keys is ~3.5x slower than
    quicksort on the same data, but quicksort is unstable.  Packing the key
    and its position into one composite int64 — ``(key << shift) | position``
    with ``shift = ceil(log2(n))`` — makes every composite unique, so an
    unstable sort of the composites *is* a stable sort of the keys, at
    quicksort speed.  Falls back to ``kind="stable"`` when the composite
    would overflow int64 (keys wider than ``63 - shift`` bits).
    """
    n = keys.shape[0]
    if n <= 1:
        return np.arange(n, dtype=np.int64)
    shift = int(n - 1).bit_length()
    max_key = int(keys.max())
    min_key = int(keys.min())
    if min_key < 0 or max_key.bit_length() + shift > 62:
        return np.argsort(keys, kind="stable").astype(np.int64, copy=False)
    composite = keys.astype(np.int64, copy=False) << shift
    composite |= np.arange(n, dtype=np.int64)
    order = np.argsort(composite)
    return order.astype(np.int64, copy=False)


def segment_boundaries(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(unique_keys, starts)`` of the runs in an already-sorted key array.

    ``starts[i]`` is the first position of run ``i``; ``unique_keys[i]`` its
    key.  Both are empty for an empty input.
    """
    n = sorted_keys.shape[0]
    if n == 0:
        return sorted_keys[:0], np.empty(0, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return sorted_keys[starts], starts

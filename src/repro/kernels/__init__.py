"""Pluggable kernel backends for the fused embedding train step.

Importing this package registers the built-in backends: the pure-numpy
reference (always available, the default) and the optional numba backend
(registered with an availability probe so numba stays a soft dependency —
it is only imported if the backend is actually selected).  Select a backend
per embedding with ``TableBackedEmbedding.set_kernel_backend`` or globally
via ``SystemConfig.store.kernels = "numpy" | "numba" | "auto"``.
"""

from repro.kernels.base import (
    AUTO_KERNEL_BACKEND,
    DEFAULT_KERNEL_BACKEND,
    KernelBackend,
    available_kernel_backends,
    get_kernel_backend,
    kernel_backend_available,
    kernel_registry_summary,
    register_kernel_backend,
    resolve_kernel_backend_name,
    unregister_kernel_backend,
)
from repro.kernels.numpy_backend import NumpyKernelBackend
from repro.kernels.ops import segment_boundaries, stable_order

__all__ = [
    "AUTO_KERNEL_BACKEND",
    "DEFAULT_KERNEL_BACKEND",
    "KernelBackend",
    "NumpyKernelBackend",
    "available_kernel_backends",
    "get_kernel_backend",
    "kernel_backend_available",
    "kernel_registry_summary",
    "register_kernel_backend",
    "resolve_kernel_backend_name",
    "segment_boundaries",
    "stable_order",
    "unregister_kernel_backend",
]


def _numba_factory() -> KernelBackend:
    from repro.kernels.numba_backend import NumbaKernelBackend

    return NumbaKernelBackend()


def _numba_available() -> bool:
    from repro.kernels.numba_backend import numba_available

    return numba_available()


register_kernel_backend(
    DEFAULT_KERNEL_BACKEND,
    NumpyKernelBackend,
    description="pure-numpy reference (reduceat segment sum + fancy-index scatter)",
)
register_kernel_backend(
    "numba",
    _numba_factory,
    available=_numba_available,
    description="compiled sequential loops (optional; soft dependency)",
    prefer=True,
)

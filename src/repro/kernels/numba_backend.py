"""Optional numba kernel backend — sequential compiled loops.

numba is a *soft* dependency: this module imports it, so it must only be
imported after :func:`numba_available` (or the registry's availability probe)
says it is present.  The loops are deliberately sequential and cache-compiled;
they agree with the numpy reference to floating-point tolerance, not bitwise
(summation order differs from ``np.add.reduceat``'s pairwise blocks).
"""

from __future__ import annotations

from importlib.util import find_spec

import numpy as np


def numba_available() -> bool:
    """Soft-dependency probe; true when ``import numba`` would succeed."""
    try:
        return find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


def _compiled():
    import numba

    @numba.njit(cache=True)
    def segment_sum_2d(values, perm, starts, out):
        num_segments = starts.shape[0]
        n = perm.shape[0]
        d = values.shape[1]
        for seg in range(num_segments):
            lo = starts[seg]
            hi = starts[seg + 1] if seg + 1 < num_segments else n
            for pos in range(lo, hi):
                src = perm[pos]
                for j in range(d):
                    out[seg, j] += values[src, j]

    @numba.njit(cache=True)
    def scatter_sgd(table, rows, summed, lr):
        d = table.shape[1]
        for i in range(rows.shape[0]):
            row = rows[i]
            for j in range(d):
                table[row, j] -= lr * summed[i, j]

    @numba.njit(cache=True)
    def scatter_adagrad(table, rows, summed, lr, accumulator, eps):
        d = table.shape[1]
        for i in range(rows.shape[0]):
            row = rows[i]
            sq = 0.0
            for j in range(d):
                sq += summed[i, j] * summed[i, j]
            accumulator[row] += sq / d
            scale = lr / (np.sqrt(accumulator[row]) + eps)
            for j in range(d):
                table[row, j] -= scale * summed[i, j]

    @numba.njit(cache=True)
    def sketch_insert(scores, slots, add):
        for i in range(slots.shape[0]):
            scores[slots[i]] += add[i]

    @numba.njit(cache=True)
    def sketch_fold(table, positions, signs, values):
        depth = table.shape[0]
        n = values.shape[0]
        d = values.shape[1]
        for row in range(depth):
            for i in range(n):
                bucket = positions[row, i]
                sign = signs[row, i]
                for j in range(d):
                    table[row, bucket, j] += sign * values[i, j]

    @numba.njit(cache=True)
    def sketch_recover(table, positions, signs, out):
        depth = table.shape[0]
        n = positions.shape[1]
        d = table.shape[2]
        for row in range(depth):
            for i in range(n):
                bucket = positions[row, i]
                sign = signs[row, i]
                for j in range(d):
                    out[row, i, j] = sign * table[row, bucket, j]

    return (
        segment_sum_2d,
        scatter_sgd,
        scatter_adagrad,
        sketch_insert,
        sketch_fold,
        sketch_recover,
    )


class NumbaKernelBackend:
    """Compiled sequential kernels; numerically close to numpy, not bitwise."""

    name = "numba"

    def __init__(self):
        (
            self._segment_sum_2d,
            self._scatter_sgd,
            self._scatter_adagrad,
            self._sketch_insert,
            self._sketch_fold,
            self._sketch_recover,
        ) = _compiled()

    def segment_sum(
        self, values: np.ndarray, perm: np.ndarray, starts: np.ndarray
    ) -> np.ndarray:
        squeeze = values.ndim == 1
        if squeeze:
            values = values[:, None]
        out = np.zeros((starts.shape[0], values.shape[1]), dtype=values.dtype)
        if starts.shape[0]:
            self._segment_sum_2d(
                np.ascontiguousarray(values),
                np.ascontiguousarray(perm),
                np.ascontiguousarray(starts),
                out,
            )
        return out[:, 0] if squeeze else out

    def fused_scatter_apply(
        self,
        table: np.ndarray,
        rows: np.ndarray,
        summed: np.ndarray,
        lr: float,
        accumulator: np.ndarray | None = None,
        eps: float = 0.0,
    ) -> None:
        if rows.shape[0] == 0:
            return
        rows = np.ascontiguousarray(rows)
        summed = np.ascontiguousarray(summed)
        if accumulator is None:
            self._scatter_sgd(table, rows, summed, float(lr))
        else:
            self._scatter_adagrad(table, rows, summed, float(lr), accumulator, float(eps))

    def sketch_insert(
        self, scores: np.ndarray, slots: np.ndarray, add: np.ndarray
    ) -> None:
        if slots.shape[0]:
            self._sketch_insert(scores, np.ascontiguousarray(slots), np.ascontiguousarray(add))

    def sketch_fold(
        self,
        table: np.ndarray,
        positions: np.ndarray,
        signs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        if values.shape[0]:
            self._sketch_fold(
                table,
                np.ascontiguousarray(positions),
                np.ascontiguousarray(signs.astype(table.dtype, copy=False)),
                np.ascontiguousarray(values.astype(table.dtype, copy=False)),
            )

    def sketch_recover(
        self, table: np.ndarray, positions: np.ndarray, signs: np.ndarray
    ) -> np.ndarray:
        out = np.zeros(
            (table.shape[0], positions.shape[1], table.shape[2]), dtype=table.dtype
        )
        if positions.shape[1]:
            self._sketch_recover(
                table,
                np.ascontiguousarray(positions),
                np.ascontiguousarray(signs.astype(table.dtype, copy=False)),
                out,
            )
        return out

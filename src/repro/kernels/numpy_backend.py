"""Pure-numpy reference kernel backend — always available, always the default.

Every primitive is a single vectorized pass; this is the implementation whose
results define bit-exactness for the fused path (``np.add.reduceat`` for the
segment sum, fancy-index arithmetic for the scatters).
"""

from __future__ import annotations

import numpy as np


class NumpyKernelBackend:
    """Reference implementation of the :class:`~repro.kernels.KernelBackend` protocol."""

    name = "numpy"

    def segment_sum(
        self, values: np.ndarray, perm: np.ndarray, starts: np.ndarray
    ) -> np.ndarray:
        if starts.shape[0] == 0:
            return np.zeros((0,) + values.shape[1:], dtype=values.dtype)
        # np.take is ~2x faster than fancy indexing for the 2-D row gather
        # and produces the identical array, so bit-exactness is unaffected.
        return np.add.reduceat(np.take(values, perm, axis=0), starts, axis=0)

    def fused_scatter_apply(
        self,
        table: np.ndarray,
        rows: np.ndarray,
        summed: np.ndarray,
        lr: float,
        accumulator: np.ndarray | None = None,
        eps: float = 0.0,
    ) -> None:
        if rows.shape[0] == 0:
            return
        if accumulator is None:
            table[rows] -= lr * summed
            return
        accumulator[rows] += (summed**2).mean(axis=1)
        scale = lr / (np.sqrt(accumulator[rows]) + eps)
        table[rows] -= scale[:, None] * summed

    def sketch_insert(
        self, scores: np.ndarray, slots: np.ndarray, add: np.ndarray
    ) -> None:
        scores[slots] += add

    def sketch_fold(
        self,
        table: np.ndarray,
        positions: np.ndarray,
        signs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        # np.add.at resolves colliding buckets; this order defines the
        # reference result CSVec's inline path matches bit-for-bit.
        for row in range(table.shape[0]):
            np.add.at(table[row], positions[row], signs[row][:, None] * values)

    def sketch_recover(
        self, table: np.ndarray, positions: np.ndarray, signs: np.ndarray
    ) -> np.ndarray:
        return np.stack(
            [
                signs[row][:, None] * table[row, positions[row]]
                for row in range(table.shape[0])
            ],
            axis=0,
        )

"""Kernel backends: the three primitives of the fused embedding hot path.

A :class:`KernelBackend` supplies the numeric inner loops of one training
step — segment-summing per-lookup gradients, scattering the summed update
(with optimizer state) into a table, and accumulating importance scores into
sketch slots.  Everything above this layer (routing plans, admission,
eviction) is index bookkeeping; everything below it is a handful of dense
array passes, which is exactly the part an accelerated implementation (numba
today, cupy tomorrow) can replace wholesale.

Backends register by name through :func:`register_kernel_backend`; the
pure-numpy reference implementation is always present and is the default, so
tests and CI stay hardware- and dependency-independent.  ``"auto"`` resolves
to the fastest *available* backend (currently: numba when importable, numpy
otherwise).  Availability is probed lazily through each registration's
``available`` predicate, which is how soft dependencies stay soft: importing
this package never imports numba.

Bit-exactness contract: the numpy backend is the reference.  Two runs that
use the *same* backend are bit-exact with each other (the fused and unfused
embedding paths share one backend instance, so fused-vs-unfused parity holds
for every backend); different backends agree only to floating-point
tolerance, because summation order differs between numpy's pairwise
``reduceat`` and a sequential loop.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError

#: The name every selection falls back to; always registered, always available.
DEFAULT_KERNEL_BACKEND = "numpy"

#: Pseudo-name resolving to the fastest available backend.
AUTO_KERNEL_BACKEND = "auto"


@runtime_checkable
class KernelBackend(Protocol):
    """The three fused primitives of one embedding training step."""

    name: str

    def segment_sum(
        self, values: np.ndarray, perm: np.ndarray, starts: np.ndarray
    ) -> np.ndarray:
        """Sum ``values[perm]`` over the segments delimited by ``starts``.

        ``values`` is ``(n, d)`` (or ``(n,)``), ``perm`` indexes rows of
        ``values`` ordered so each destination's contributions are adjacent,
        and ``starts`` holds each segment's first position in ``perm``.
        Returns one summed row per segment, shape ``(len(starts), d)``.
        Within a segment the summation order is ``perm`` order.
        """
        ...

    def fused_scatter_apply(
        self,
        table: np.ndarray,
        rows: np.ndarray,
        summed: np.ndarray,
        lr: float,
        accumulator: np.ndarray | None = None,
        eps: float = 0.0,
    ) -> None:
        """Apply one optimizer step to ``table[rows]`` in place.

        ``rows`` are unique.  With ``accumulator=None`` this is sparse SGD
        (``table[rows] -= lr * summed``); with a per-row accumulator it is
        row-wise Adagrad: the accumulator rows gain the mean squared summed
        gradient and scale the update, all in one fused pass.
        """
        ...

    def sketch_insert(
        self, scores: np.ndarray, slots: np.ndarray, add: np.ndarray
    ) -> None:
        """Add ``add`` into ``scores[slots]`` (flat sketch score array).

        ``slots`` are unique flat indices (one per recorded feature in the
        batch), so the scatter-add has no collisions to resolve.
        """
        ...

    def sketch_fold(
        self,
        table: np.ndarray,
        positions: np.ndarray,
        signs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Fold signed vectors into a ``(depth, width, dim)`` sketch table.

        For every depth row ``r`` and item ``i``, add
        ``signs[r, i] * values[i]`` into ``table[r, positions[r, i]]``.
        Unlike :meth:`sketch_insert`, collisions are expected — several items
        hash to the same bucket and their contributions accumulate (the
        linearity that makes the sketch mergeable).
        """
        ...

    def sketch_recover(
        self, table: np.ndarray, positions: np.ndarray, signs: np.ndarray
    ) -> np.ndarray:
        """Gather per-depth signed estimates from a sketch table.

        Returns ``(depth, n, dim)`` where entry ``[r, i]`` is
        ``signs[r, i] * table[r, positions[r, i]]``; the caller takes the
        component-wise median over the depth axis.
        """
        ...


class _KernelRegistration:
    __slots__ = ("name", "factory", "available", "description", "_instance")

    def __init__(
        self,
        name: str,
        factory: Callable[[], KernelBackend],
        available: Callable[[], bool],
        description: str,
    ):
        self.name = name
        self.factory = factory
        self.available = available
        self.description = description
        self._instance: KernelBackend | None = None

    def instance(self) -> KernelBackend:
        if self._instance is None:
            self._instance = self.factory()
        return self._instance


_KERNEL_BACKENDS: dict[str, _KernelRegistration] = {}
#: Resolution order for ``"auto"``: first available name wins.
_AUTO_PREFERENCE: list[str] = []


def register_kernel_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    available: Callable[[], bool] | None = None,
    description: str = "",
    prefer: bool = False,
    overwrite: bool = False,
) -> None:
    """Register a kernel backend under ``name``.

    ``factory`` builds the backend on first use; ``available`` gates it (a
    soft dependency probe — return False and the name reports unavailable
    instead of raising at import).  ``prefer=True`` puts the backend ahead of
    the numpy reference in ``"auto"`` resolution.
    """
    lowered = name.lower()
    if lowered == AUTO_KERNEL_BACKEND:
        raise ConfigurationError(f"'{AUTO_KERNEL_BACKEND}' is reserved for auto-selection")
    if not overwrite and lowered in _KERNEL_BACKENDS:
        raise ConfigurationError(
            f"kernel backend '{lowered}' is already registered; pass overwrite=True"
        )
    _KERNEL_BACKENDS[lowered] = _KernelRegistration(
        lowered, factory, available or (lambda: True), description
    )
    if lowered in _AUTO_PREFERENCE:
        _AUTO_PREFERENCE.remove(lowered)
    if prefer:
        _AUTO_PREFERENCE.insert(0, lowered)
    else:
        _AUTO_PREFERENCE.append(lowered)


def unregister_kernel_backend(name: str) -> None:
    """Remove a registered kernel backend (mainly for tests)."""
    lowered = name.lower()
    _KERNEL_BACKENDS.pop(lowered, None)
    if lowered in _AUTO_PREFERENCE:
        _AUTO_PREFERENCE.remove(lowered)


def kernel_backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its soft dependencies import."""
    registration = _KERNEL_BACKENDS.get(name.lower())
    return registration is not None and bool(registration.available())


def available_kernel_backends() -> tuple[str, ...]:
    """Names of the registered backends whose dependencies are available."""
    return tuple(
        name for name, reg in _KERNEL_BACKENDS.items() if reg.available()
    )


def resolve_kernel_backend_name(name: str) -> str:
    """Canonical backend name for ``name`` (resolving ``"auto"``).

    Raises :class:`~repro.errors.ConfigurationError` for unknown names and
    for known names whose soft dependency is missing, naming the available
    alternatives — a config typo should fail loudly, not fall back silently.
    """
    lowered = name.lower()
    if lowered == AUTO_KERNEL_BACKEND:
        for candidate in _AUTO_PREFERENCE:
            if kernel_backend_available(candidate):
                return candidate
        return DEFAULT_KERNEL_BACKEND
    registration = _KERNEL_BACKENDS.get(lowered)
    if registration is None:
        raise ConfigurationError(
            f"unknown kernel backend '{name}'; registered: "
            f"{sorted(_KERNEL_BACKENDS)} (or '{AUTO_KERNEL_BACKEND}')"
        )
    if not registration.available():
        raise ConfigurationError(
            f"kernel backend '{name}' is registered but unavailable (missing "
            f"dependency); available: {sorted(available_kernel_backends())}"
        )
    return lowered


def get_kernel_backend(name: str = DEFAULT_KERNEL_BACKEND) -> KernelBackend:
    """The backend instance for ``name`` (``"auto"`` picks the fastest available)."""
    return _KERNEL_BACKENDS[resolve_kernel_backend_name(name)].instance()


def kernel_registry_summary() -> list[dict[str, Any]]:
    """One row per registered kernel backend (for ``describe()`` and docs)."""
    return [
        {
            "name": reg.name,
            "description": reg.description,
            "available": bool(reg.available()),
            "optional": reg.name != DEFAULT_KERNEL_BACKEND,
        }
        for reg in _KERNEL_BACKENDS.values()
    ]

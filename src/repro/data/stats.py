"""Distribution statistics: KL divergence heatmaps and frequency analyses."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def kl_divergence(p_counts: np.ndarray, q_counts: np.ndarray, smoothing: float = 1e-9) -> float:
    """KL(P ‖ Q) between two count histograms with additive smoothing.

    Matches the asymmetric measure used for the paper's Figure 2: the inputs
    are raw per-day feature frequency histograms, normalized here.
    """
    p_counts = np.asarray(p_counts, dtype=np.float64)
    q_counts = np.asarray(q_counts, dtype=np.float64)
    if p_counts.shape != q_counts.shape:
        raise DataError(f"histogram shapes differ: {p_counts.shape} vs {q_counts.shape}")
    p = p_counts + smoothing
    q = q_counts + smoothing
    p /= p.sum()
    q /= q.sum()
    return float(np.sum(p * np.log(p / q)))


def kl_divergence_matrix(day_histograms: np.ndarray, smoothing: float = 1e-9) -> np.ndarray:
    """Pairwise KL(day_i ‖ day_j) matrix — the data behind Figure 2."""
    day_histograms = np.asarray(day_histograms, dtype=np.float64)
    if day_histograms.ndim != 2:
        raise DataError("day_histograms must be 2-D (days, features)")
    days = day_histograms.shape[0]
    matrix = np.zeros((days, days))
    for i in range(days):
        for j in range(days):
            if i != j:
                matrix[i, j] = kl_divergence(day_histograms[i], day_histograms[j], smoothing)
    return matrix


def frequency_skew_summary(counts: np.ndarray, top_fractions: tuple[float, ...] = (0.001, 0.01, 0.1)) -> dict[str, float]:
    """How concentrated the frequency mass is in the most popular features."""
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    total = counts.sum()
    if total <= 0:
        raise DataError("counts must contain positive mass")
    summary = {}
    for fraction in top_fractions:
        k = max(int(len(counts) * fraction), 1)
        summary[f"top_{fraction:g}"] = float(counts[:k].sum() / total)
    return summary

"""Dataset schemas and the paper's dataset presets (Table 2).

A schema describes the categorical fields (name + cardinality), the number of
numerical fields, and the embedding dimension.  Global feature ids are the
concatenation of all fields' id spaces: feature ``j`` of field ``f`` has
global id ``offset_f + j``, which is what every embedding layer consumes and
what lets CAFE share one sketch and one exclusive table across fields (§5.3,
"Other design details").

Two kinds of presets are provided:

* :data:`PAPER_DATASET_STATS` — the exact statistics of Table 2, used to
  regenerate that table;
* :func:`make_preset` — scaled-down synthetic presets with the same field
  structure (field count, numerical count, dimension, Zipf skew) that the
  experiments in this repository actually train on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Canonical spec-string grammar (classes, thresholds, parser) lives in
# repro.api.spec; these re-exports keep the historical import paths working
# (they are re-published via __all__ below).
from repro.api.spec import (
    DEFAULT_TAIL_MIN,
    DEFAULT_TINY_MAX,
    FIELD_CLASSES,
)
from repro.api.spec import field_configs_from_spec as _field_configs_from_spec
from repro.errors import DataError

__all__ = [
    "DEFAULT_TAIL_MIN",
    "DEFAULT_TINY_MAX",
    "FIELD_CLASSES",
    "FieldSchema",
    "FieldConfig",
    "DatasetSchema",
    "classify_fields",
    "field_configs_from_spec",
    "make_preset",
]


@dataclass(frozen=True)
class FieldSchema:
    """One categorical field."""

    name: str
    cardinality: int

    def __post_init__(self):
        if self.cardinality <= 0:
            raise DataError(f"field '{self.name}' must have positive cardinality")


@dataclass(frozen=True)
class FieldConfig:
    """Per-field embedding policy: which table group a field belongs to.

    Fields whose configs compare equal (ignoring ``field``) share one table
    group — one backend instance, one id space, one memory budget.  That is
    the unit the :class:`~repro.store.table_group.TableGroupStore` allocates:
    a tiny enum field can keep a ``full`` uncompressed table while the 10M-id
    long-tail field next to it runs CAFE at 100x compression.

    Parameters
    ----------
    field:
        Name of the field this config applies to.
    backend:
        Embedding method for the group (any :data:`repro.embeddings.
        METHOD_NAMES` entry, e.g. ``"full"``, ``"cafe"``, ``"hash"``).
    dim:
        Native table dimension of the group.  ``None`` means the schema's
        ``embedding_dim``; a smaller value stores narrow rows and the store
        projects them up to the fused output dimension (MDE-style).
    compression_ratio:
        Memory budget of the group expressed as native-parameters /
        budget-floats.  Ignored by ``full`` and whenever ``memory_floats``
        is set.
    memory_floats:
        Absolute per-field float budget; the group budget is the sum over
        its member fields.  Overrides ``compression_ratio``.
    hash_seed:
        Per-group hash policy for hash-routing backends; ``None`` keeps the
        backend default.
    num_shards:
        Shards *within* the group (a :class:`~repro.store.sharded.
        ShardedEmbeddingStore` wraps the group backend when > 1).
    """

    field: str
    backend: str = "cafe"
    dim: int | None = None
    compression_ratio: float = 1.0
    memory_floats: int | None = None
    hash_seed: int | None = None
    num_shards: int = 1

    def __post_init__(self):
        if self.dim is not None and self.dim <= 0:
            raise DataError(f"field '{self.field}': dim must be positive, got {self.dim}")
        if self.compression_ratio <= 0:
            raise DataError(
                f"field '{self.field}': compression_ratio must be positive, "
                f"got {self.compression_ratio}"
            )
        if self.memory_floats is not None and self.memory_floats <= 0:
            raise DataError(
                f"field '{self.field}': memory_floats must be positive, got {self.memory_floats}"
            )
        if self.num_shards <= 0:
            raise DataError(
                f"field '{self.field}': num_shards must be positive, got {self.num_shards}"
            )

    def group_key(self) -> tuple:
        """Fields with equal keys share one table group."""
        return (
            self.backend.lower(),
            self.dim,
            float(self.compression_ratio),
            self.memory_floats is not None,
            self.hash_seed,
            self.num_shards,
        )


@dataclass
class DatasetSchema:
    """Structure of a CTR dataset."""

    name: str
    fields: list[FieldSchema]
    num_numerical: int
    embedding_dim: int
    num_days: int = 1
    zipf_exponent: float = 1.05
    metadata: dict = field(default_factory=dict)
    #: Optional per-field embedding policies (one per field, same order as
    #: ``fields``).  ``None`` means the uniform single-table default; set via
    #: :meth:`configure_fields` or ``make_preset(..., field_spec=...)``.
    field_configs: list[FieldConfig] | None = None

    def __post_init__(self):
        if not self.fields:
            raise DataError("a dataset schema needs at least one categorical field")
        if self.num_numerical < 0:
            raise DataError("num_numerical must be non-negative")
        if self.embedding_dim <= 0:
            raise DataError("embedding_dim must be positive")
        if self.num_days <= 0:
            raise DataError("num_days must be positive")
        if self.field_configs is not None:
            self._check_field_configs(self.field_configs)

    def _check_field_configs(self, configs: list[FieldConfig]) -> None:
        names = [f.name for f in self.fields]
        if [c.field for c in configs] != names:
            raise DataError(
                "field_configs must cover every field in schema order; "
                f"expected {names}, got {[c.field for c in configs]}"
            )
        for config in configs:
            if config.dim is not None and config.dim > self.embedding_dim:
                raise DataError(
                    f"field '{config.field}': group dim {config.dim} exceeds the "
                    f"schema embedding_dim {self.embedding_dim}"
                )

    def configure_fields(self, spec_or_configs, **spec_kwargs) -> "DatasetSchema":
        """Attach per-field table-group policies; returns ``self``.

        Accepts either a ready list of :class:`FieldConfig` (one per field,
        schema order) or a spec string handled by
        :func:`field_configs_from_spec` (``spec_kwargs`` forwarded).
        """
        if isinstance(spec_or_configs, str):
            configs = field_configs_from_spec(self, spec_or_configs, **spec_kwargs)
        else:
            configs = list(spec_or_configs)
        self._check_field_configs(configs)
        self.field_configs = configs
        return self

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def num_fields(self) -> int:
        return len(self.fields)

    @property
    def field_cardinalities(self) -> list[int]:
        return [f.cardinality for f in self.fields]

    @property
    def num_features(self) -> int:
        """Total unique categorical features across all fields (``n``)."""
        return int(sum(self.field_cardinalities))

    @property
    def field_offsets(self) -> np.ndarray:
        """Global-id offset of each field (length ``num_fields + 1``)."""
        return np.concatenate([[0], np.cumsum(self.field_cardinalities)]).astype(np.int64)

    @property
    def embedding_parameters(self) -> int:
        """Uncompressed embedding-table size ``n * d``."""
        return self.num_features * self.embedding_dim

    def to_global_ids(self, per_field_ids: np.ndarray) -> np.ndarray:
        """Convert per-field ids ``(batch, fields)`` to global ids."""
        per_field_ids = np.asarray(per_field_ids, dtype=np.int64)
        if per_field_ids.ndim != 2 or per_field_ids.shape[1] != self.num_fields:
            raise DataError(
                f"expected shape (batch, {self.num_fields}), got {per_field_ids.shape}"
            )
        return per_field_ids + self.field_offsets[:-1][None, :]

    def to_field_ids(self, global_ids: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_global_ids`."""
        return np.asarray(global_ids, dtype=np.int64) - self.field_offsets[:-1][None, :]


def classify_fields(
    schema: DatasetSchema,
    tiny_max: int = DEFAULT_TINY_MAX,
    tail_min: int = DEFAULT_TAIL_MIN,
) -> list[str]:
    """Size class (``"tiny"`` / ``"mid"`` / ``"tail"``) of every field.

    A field is ``tiny`` when its cardinality is at most ``tiny_max`` (cheap
    to keep uncompressed), ``tail`` when at least ``tail_min`` (the skewed
    long-tail id spaces CAFE targets), and ``mid`` otherwise.  When
    ``tail_min`` exceeds every cardinality the thresholds still partition
    the fields — some classes are simply empty.
    """
    if tiny_max >= tail_min:
        raise DataError(f"tiny_max ({tiny_max}) must be below tail_min ({tail_min})")
    classes = []
    for field_schema in schema.fields:
        if field_schema.cardinality <= tiny_max:
            classes.append("tiny")
        elif field_schema.cardinality >= tail_min:
            classes.append("tail")
        else:
            classes.append("mid")
    return classes


def field_configs_from_spec(
    schema: DatasetSchema,
    spec: str,
    compression_ratio: float = 1.0,
    tiny_max: int = DEFAULT_TINY_MAX,
    tail_min: int = DEFAULT_TAIL_MIN,
) -> list[FieldConfig]:
    """Resolve a table-group spec string into one :class:`FieldConfig` per field.

    The spec grammar (``backend[options]:class`` entries; see
    :mod:`repro.api.spec` for the full reference) is parsed by the single
    shared parser — this wrapper exists so schema-level callers keep their
    historical import path.  ``compression_ratio`` is the default ``cr`` for
    entries that do not set one (``full`` ignores it); ``tiny_max`` /
    ``tail_min`` are the :func:`classify_fields` thresholds.
    """
    return _field_configs_from_spec(
        schema,
        spec,
        compression_ratio=compression_ratio,
        tiny_max=tiny_max,
        tail_min=tail_min,
    )


#: Table 2 of the paper, verbatim (samples, features, fields, dim, params).
PAPER_DATASET_STATS = {
    "avazu": {"samples": 40_428_967, "features": 9_449_445, "fields": 22, "dim": 16, "params": "150M"},
    "criteo": {"samples": 45_840_617, "features": 33_762_577, "fields": 26, "dim": 16, "params": "540M"},
    "kdd12": {"samples": 149_639_105, "features": 54_689_798, "fields": 11, "dim": 64, "params": "3.5B"},
    "criteotb": {"samples": 4_373_472_329, "features": 204_184_588, "fields": 26, "dim": 128, "params": "26B"},
}

#: Structural parameters of the scaled presets used by the experiments.
#: The paper measures Zipf exponents of 1.05/1.1 on the full-size datasets
#: (Figure 3).  At ~1000x smaller cardinality the same exponent would spread
#: the head mass far more evenly, so the scaled presets use a larger exponent
#: chosen to keep the fraction of lookups carried by the hottest ~1% of
#: features comparable to the real datasets (see DESIGN.md).
_PRESET_STRUCTURE = {
    # name: (fields, numerical, dim, days, zipf)
    "avazu": (22, 0, 16, 10, 1.25),
    "criteo": (26, 13, 16, 7, 1.25),
    "kdd12": (11, 0, 16, 1, 1.25),
    "criteotb": (26, 13, 32, 24, 1.3),
}


def make_preset(
    name: str,
    scale: float = 1.0,
    base_cardinality: int = 2000,
    seed: int = 0,
    field_spec: str | None = None,
) -> DatasetSchema:
    """Build a scaled-down synthetic preset mirroring one of the paper datasets.

    Field cardinalities are drawn log-uniformly around ``base_cardinality`` so
    that, like the real datasets, a few fields dominate the total feature
    count.  ``scale`` multiplies every cardinality, letting experiments trade
    fidelity for runtime.  ``field_spec`` optionally attaches per-field
    table-group policies (see :func:`field_configs_from_spec`); the size
    thresholds scale with ``base_cardinality`` so ``"full:tiny,cafe:tail"``
    splits the preset's fields the same way at every scale.
    """
    lowered = name.lower()
    if lowered not in _PRESET_STRUCTURE:
        raise DataError(f"unknown preset '{name}'; expected one of {sorted(_PRESET_STRUCTURE)}")
    num_fields, num_numerical, dim, days, zipf = _PRESET_STRUCTURE[lowered]
    # Derive a per-preset offset deterministically (``hash()`` of a string is
    # randomized per process and would make presets differ between runs).
    name_offset = int(sum(ord(c) * (31**i) for i, c in enumerate(lowered)) % (2**31))
    rng = np.random.default_rng(seed + name_offset)
    # Log-uniform cardinalities between base/10 and base*10.
    log_base = np.log10(base_cardinality)
    cards = np.round(10 ** rng.uniform(log_base - 1, log_base + 1, size=num_fields)).astype(int)
    cards = np.maximum(cards, 10)
    cards = np.maximum((cards * scale).astype(int), 4)
    fields = [FieldSchema(name=f"{lowered}_c{i}", cardinality=int(c)) for i, c in enumerate(cards)]
    schema = DatasetSchema(
        name=lowered,
        fields=fields,
        num_numerical=num_numerical,
        embedding_dim=dim,
        num_days=days,
        zipf_exponent=zipf,
        metadata={"paper_stats": PAPER_DATASET_STATS[lowered], "scale": scale},
    )
    if field_spec is not None:
        # Thresholds track the log-uniform cardinality range (base/10..base*10)
        # so the tiny/mid/tail split is scale-invariant.
        effective_base = max(base_cardinality * scale, 1.0)
        schema.configure_fields(
            field_spec,
            tiny_max=max(int(effective_base / 3), 1),
            tail_min=max(int(effective_base * 3), 2),
        )
    return schema

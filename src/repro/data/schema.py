"""Dataset schemas and the paper's dataset presets (Table 2).

A schema describes the categorical fields (name + cardinality), the number of
numerical fields, and the embedding dimension.  Global feature ids are the
concatenation of all fields' id spaces: feature ``j`` of field ``f`` has
global id ``offset_f + j``, which is what every embedding layer consumes and
what lets CAFE share one sketch and one exclusive table across fields (§5.3,
"Other design details").

Two kinds of presets are provided:

* :data:`PAPER_DATASET_STATS` — the exact statistics of Table 2, used to
  regenerate that table;
* :func:`make_preset` — scaled-down synthetic presets with the same field
  structure (field count, numerical count, dimension, Zipf skew) that the
  experiments in this repository actually train on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError


@dataclass(frozen=True)
class FieldSchema:
    """One categorical field."""

    name: str
    cardinality: int

    def __post_init__(self):
        if self.cardinality <= 0:
            raise DataError(f"field '{self.name}' must have positive cardinality")


@dataclass
class DatasetSchema:
    """Structure of a CTR dataset."""

    name: str
    fields: list[FieldSchema]
    num_numerical: int
    embedding_dim: int
    num_days: int = 1
    zipf_exponent: float = 1.05
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.fields:
            raise DataError("a dataset schema needs at least one categorical field")
        if self.num_numerical < 0:
            raise DataError("num_numerical must be non-negative")
        if self.embedding_dim <= 0:
            raise DataError("embedding_dim must be positive")
        if self.num_days <= 0:
            raise DataError("num_days must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def num_fields(self) -> int:
        return len(self.fields)

    @property
    def field_cardinalities(self) -> list[int]:
        return [f.cardinality for f in self.fields]

    @property
    def num_features(self) -> int:
        """Total unique categorical features across all fields (``n``)."""
        return int(sum(self.field_cardinalities))

    @property
    def field_offsets(self) -> np.ndarray:
        """Global-id offset of each field (length ``num_fields + 1``)."""
        return np.concatenate([[0], np.cumsum(self.field_cardinalities)]).astype(np.int64)

    @property
    def embedding_parameters(self) -> int:
        """Uncompressed embedding-table size ``n * d``."""
        return self.num_features * self.embedding_dim

    def to_global_ids(self, per_field_ids: np.ndarray) -> np.ndarray:
        """Convert per-field ids ``(batch, fields)`` to global ids."""
        per_field_ids = np.asarray(per_field_ids, dtype=np.int64)
        if per_field_ids.ndim != 2 or per_field_ids.shape[1] != self.num_fields:
            raise DataError(
                f"expected shape (batch, {self.num_fields}), got {per_field_ids.shape}"
            )
        return per_field_ids + self.field_offsets[:-1][None, :]

    def to_field_ids(self, global_ids: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_global_ids`."""
        return np.asarray(global_ids, dtype=np.int64) - self.field_offsets[:-1][None, :]


#: Table 2 of the paper, verbatim (samples, features, fields, dim, params).
PAPER_DATASET_STATS = {
    "avazu": {"samples": 40_428_967, "features": 9_449_445, "fields": 22, "dim": 16, "params": "150M"},
    "criteo": {"samples": 45_840_617, "features": 33_762_577, "fields": 26, "dim": 16, "params": "540M"},
    "kdd12": {"samples": 149_639_105, "features": 54_689_798, "fields": 11, "dim": 64, "params": "3.5B"},
    "criteotb": {"samples": 4_373_472_329, "features": 204_184_588, "fields": 26, "dim": 128, "params": "26B"},
}

#: Structural parameters of the scaled presets used by the experiments.
#: The paper measures Zipf exponents of 1.05/1.1 on the full-size datasets
#: (Figure 3).  At ~1000x smaller cardinality the same exponent would spread
#: the head mass far more evenly, so the scaled presets use a larger exponent
#: chosen to keep the fraction of lookups carried by the hottest ~1% of
#: features comparable to the real datasets (see DESIGN.md).
_PRESET_STRUCTURE = {
    # name: (fields, numerical, dim, days, zipf)
    "avazu": (22, 0, 16, 10, 1.25),
    "criteo": (26, 13, 16, 7, 1.25),
    "kdd12": (11, 0, 16, 1, 1.25),
    "criteotb": (26, 13, 32, 24, 1.3),
}


def make_preset(
    name: str,
    scale: float = 1.0,
    base_cardinality: int = 2000,
    seed: int = 0,
) -> DatasetSchema:
    """Build a scaled-down synthetic preset mirroring one of the paper datasets.

    Field cardinalities are drawn log-uniformly around ``base_cardinality`` so
    that, like the real datasets, a few fields dominate the total feature
    count.  ``scale`` multiplies every cardinality, letting experiments trade
    fidelity for runtime.
    """
    lowered = name.lower()
    if lowered not in _PRESET_STRUCTURE:
        raise DataError(f"unknown preset '{name}'; expected one of {sorted(_PRESET_STRUCTURE)}")
    num_fields, num_numerical, dim, days, zipf = _PRESET_STRUCTURE[lowered]
    # Derive a per-preset offset deterministically (``hash()`` of a string is
    # randomized per process and would make presets differ between runs).
    name_offset = int(sum(ord(c) * (31**i) for i, c in enumerate(lowered)) % (2**31))
    rng = np.random.default_rng(seed + name_offset)
    # Log-uniform cardinalities between base/10 and base*10.
    log_base = np.log10(base_cardinality)
    cards = np.round(10 ** rng.uniform(log_base - 1, log_base + 1, size=num_fields)).astype(int)
    cards = np.maximum(cards, 10)
    cards = np.maximum((cards * scale).astype(int), 4)
    fields = [FieldSchema(name=f"{lowered}_c{i}", cardinality=int(c)) for i, c in enumerate(cards)]
    return DatasetSchema(
        name=lowered,
        fields=fields,
        num_numerical=num_numerical,
        embedding_dim=dim,
        num_days=days,
        zipf_exponent=zipf,
        metadata={"paper_stats": PAPER_DATASET_STATS[lowered], "scale": scale},
    )

"""Reader for the Criteo Kaggle / Terabyte TSV click-log format.

The real datasets are not bundled (they are tens of gigabytes and behind
click-through licences), but users who have the files can stream them through
the same :class:`~repro.data.stream.Batch` interface the synthetic generator
produces, so every experiment in this repository runs unchanged on real data.

Each line of the Criteo format is::

    <label> \t <13 integer features> \t <26 categorical features (hex strings)>

Missing values are empty strings.  Categorical values are hashed into each
field's id space with a deterministic 64-bit mix, bounded by
``max_cardinality_per_field`` — the same "maximum cardinality" preprocessing
the paper applies to CriteoTB (§5.1.1, cap of 4e7 per field in MLPerf).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.schema import DatasetSchema, FieldSchema
from repro.data.stream import Batch
from repro.errors import DataError
from repro.utils.hashing import mix64

NUM_NUMERICAL = 13
NUM_CATEGORICAL = 26


def criteo_schema(max_cardinality_per_field: int, embedding_dim: int = 16, num_days: int = 7) -> DatasetSchema:
    """Schema for Criteo-format data with hashed per-field id spaces."""
    if max_cardinality_per_field <= 0:
        raise DataError("max_cardinality_per_field must be positive")
    fields = [
        FieldSchema(name=f"C{i + 1}", cardinality=max_cardinality_per_field)
        for i in range(NUM_CATEGORICAL)
    ]
    return DatasetSchema(
        name="criteo_file",
        fields=fields,
        num_numerical=NUM_NUMERICAL,
        embedding_dim=embedding_dim,
        num_days=num_days,
    )


class CriteoFileReader:
    """Stream batches from one or more Criteo TSV files."""

    def __init__(self, schema: DatasetSchema, hash_seed: int = 1234):
        if schema.num_fields != NUM_CATEGORICAL or schema.num_numerical != NUM_NUMERICAL:
            raise DataError(
                "CriteoFileReader requires the 13-numerical / 26-categorical Criteo schema; "
                "build one with criteo_schema()"
            )
        self.schema = schema
        self.hash_seed = int(hash_seed)

    # ------------------------------------------------------------------ #
    # Line parsing
    # ------------------------------------------------------------------ #
    def parse_lines(self, lines: list[str]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Parse raw TSV lines into (labels, numerical, per-field ids)."""
        labels = np.zeros(len(lines), dtype=np.float64)
        numerical = np.zeros((len(lines), NUM_NUMERICAL), dtype=np.float64)
        categorical = np.zeros((len(lines), NUM_CATEGORICAL), dtype=np.int64)
        for row, line in enumerate(lines):
            parts = line.rstrip("\n").split("\t")
            if len(parts) != 1 + NUM_NUMERICAL + NUM_CATEGORICAL:
                raise DataError(
                    f"malformed Criteo line {row}: expected {1 + NUM_NUMERICAL + NUM_CATEGORICAL} "
                    f"fields, got {len(parts)}"
                )
            labels[row] = float(parts[0]) if parts[0] else 0.0
            for i, token in enumerate(parts[1 : 1 + NUM_NUMERICAL]):
                value = float(token) if token else 0.0
                # Standard Criteo preprocessing: log transform of non-negative counts.
                numerical[row, i] = np.log1p(max(value, 0.0))
            for i, token in enumerate(parts[1 + NUM_NUMERICAL :]):
                categorical[row, i] = self._hash_token(token, field=i)
        return labels, numerical, categorical

    def _hash_token(self, token: str, field: int) -> int:
        cardinality = self.schema.fields[field].cardinality
        if not token:
            return 0
        raw = int.from_bytes(token.encode("utf-8")[:8].ljust(8, b"\0"), "little")
        return int(mix64(raw, seed=self.hash_seed + field) % np.uint64(cardinality))

    # ------------------------------------------------------------------ #
    # Batch iteration
    # ------------------------------------------------------------------ #
    def iter_batches(self, path: str | Path, batch_size: int, day: int = 0) -> Iterator[Batch]:
        """Stream a TSV file as batches of global-id samples."""
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        path = Path(path)
        if not path.exists():
            raise DataError(f"Criteo file not found: {path}")
        buffer: list[str] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                buffer.append(line)
                if len(buffer) == batch_size:
                    yield self._to_batch(buffer, day)
                    buffer = []
        if buffer:
            yield self._to_batch(buffer, day)

    def _to_batch(self, lines: list[str], day: int) -> Batch:
        labels, numerical, categorical = self.parse_lines(lines)
        return Batch(
            categorical=self.schema.to_global_ids(categorical),
            numerical=numerical,
            labels=labels,
            day=day,
        )

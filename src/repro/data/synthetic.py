"""Synthetic CTR stream generator.

The generator reproduces, at laptop scale, the three statistical properties
the paper's evaluation depends on:

1. **Skew** — per-field feature popularity follows a Zipf distribution
   (paper Figure 3 fits exponents of 1.05/1.1 on Criteo/CriteoTB);
2. **Drift** — the popularity ranking changes gradually from day to day
   (paper Figure 2's KL-divergence heatmaps), controlled by a
   :class:`~repro.data.drift.DriftModel`;
3. **Signal concentration** — labels are produced by a planted logistic model
   over per-feature latent weights, so features that occur often contribute
   most of the learnable signal.  Embedding schemes that give hot features
   collision-free representations can fit that signal; schemes that fold hot
   features together cannot — the mechanism behind the paper's accuracy gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.drift import DriftModel, NoDrift, RotatingDrift
from repro.data.schema import DatasetSchema
from repro.data.stream import Batch, iterate_batches
from repro.errors import DataError
from repro.utils.rng import SeedLike, make_rng
from repro.utils.zipf import ZipfDistribution


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic stream.

    The label model is a factorization-machine-style ground truth: every
    feature carries a scalar weight (first-order signal) and a small latent
    vector (second-order signal); the logit mixes both, so the models can only
    fit the data if the embeddings of frequently-occurring features are
    learned accurately — the property that separates good and bad embedding
    compression schemes.
    """

    samples_per_day: int = 4096
    label_noise: float = 0.3
    numerical_noise: float = 1.0
    drift_swap_fraction: float = 0.05
    signal_scale: float = 2.0
    interaction_scale: float = 0.6
    latent_dim: int = 4
    seed: int = 0


class SyntheticCTRDataset:
    """Zipf-distributed, drifting, planted-signal CTR stream."""

    def __init__(
        self,
        schema: DatasetSchema,
        config: SyntheticConfig | None = None,
        drift: DriftModel | None = None,
    ):
        self.schema = schema
        self.config = config or SyntheticConfig()
        if self.config.samples_per_day <= 0:
            raise DataError("samples_per_day must be positive")
        self._rng = make_rng(self.config.seed)
        if drift is None:
            if schema.num_days > 1:
                drift = RotatingDrift(
                    swap_fraction=self.config.drift_swap_fraction, seed=self.config.seed + 1
                )
            else:
                drift = NoDrift()
        self.drift = drift

        # Per-field Zipf distributions over ranks and base rank→feature maps.
        self._zipf = [
            ZipfDistribution(card, schema.zipf_exponent) for card in schema.field_cardinalities
        ]
        base_rng = make_rng(self.config.seed + 17)
        self._base_permutations = [
            base_rng.permutation(card).astype(np.int64) for card in schema.field_cardinalities
        ]

        # Planted label model: scalar weight + latent vector per global feature,
        # plus weights for the numerical features.
        weight_rng = make_rng(self.config.seed + 29)
        self._feature_weights = weight_rng.normal(0.0, 1.0, size=schema.num_features)
        self._feature_vectors = weight_rng.normal(
            0.0, 1.0, size=(schema.num_features, self.config.latent_dim)
        )
        self._numerical_weights = weight_rng.normal(
            0.0, 0.5 / max(np.sqrt(schema.num_numerical), 1.0), size=schema.num_numerical
        )
        self._bias = float(weight_rng.normal(-0.3, 0.1))
        # Normalizers so that the first- and second-order terms have unit
        # standard deviation before the configured scales are applied.
        num_pairs = schema.num_fields * (schema.num_fields - 1) / 2
        self._linear_norm = np.sqrt(schema.num_fields)
        self._interaction_norm = np.sqrt(max(num_pairs, 1.0) * self.config.latent_dim)

    # ------------------------------------------------------------------ #
    # Sample generation
    # ------------------------------------------------------------------ #
    @property
    def num_days(self) -> int:
        return self.schema.num_days

    @property
    def train_days(self) -> list[int]:
        """All days except the last, which is the test day (paper §5.1.4)."""
        if self.num_days == 1:
            return [0]
        return list(range(self.num_days - 1))

    @property
    def test_day(self) -> int:
        return self.num_days - 1

    def generate_day(self, day: int, num_samples: int | None = None, seed_offset: int = 0) -> Batch:
        """Generate all samples of one logical day as a single batch."""
        if not 0 <= day < self.num_days:
            raise DataError(f"day {day} outside [0, {self.num_days})")
        num_samples = num_samples or self.config.samples_per_day
        rng = make_rng(self.config.seed + 1000 * (day + 1) + seed_offset)

        categorical = np.empty((num_samples, self.schema.num_fields), dtype=np.int64)
        for f, (zipf, base) in enumerate(zip(self._zipf, self._base_permutations)):
            ranks = zipf.sample(num_samples, rng)
            permutation = self.drift.permutation_for_day(day, base.shape[0], base)
            categorical[:, f] = permutation[ranks]
        global_ids = self.schema.to_global_ids(categorical)

        numerical = rng.normal(0.0, self.config.numerical_noise, size=(num_samples, self.schema.num_numerical))

        logits = self._logits(global_ids, numerical)
        logits += rng.normal(0.0, self.config.label_noise, size=num_samples)
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.random(num_samples) < probabilities).astype(np.float64)
        return Batch(categorical=global_ids, numerical=numerical, labels=labels, day=day)

    def _logits(self, global_ids: np.ndarray, numerical: np.ndarray) -> np.ndarray:
        """Noise-free planted logits for a batch of samples."""
        linear = self._feature_weights[global_ids].sum(axis=1) / self._linear_norm
        vectors = self._feature_vectors[global_ids]  # (batch, fields, latent)
        total = vectors.sum(axis=1)
        squares = (vectors**2).sum(axis=1)
        pairwise = 0.5 * ((total**2).sum(axis=1) - squares.sum(axis=1)) / self._interaction_norm
        return (
            self.config.signal_scale * linear
            + self.config.interaction_scale * pairwise
            + numerical @ self._numerical_weights
            + self._bias
        )

    def day_batches(self, day: int, batch_size: int, num_samples: int | None = None) -> Iterator[Batch]:
        """Yield the day's samples split into mini-batches."""
        data = self.generate_day(day, num_samples=num_samples)
        yield from iterate_batches(data.categorical, data.numerical, data.labels, batch_size, day=day)

    def training_stream(
        self, batch_size: int, days: list[int] | None = None, samples_per_day: int | None = None
    ) -> Iterator[Batch]:
        """Chronological stream over the training days (online protocol)."""
        for day in days if days is not None else self.train_days:
            yield from self.day_batches(day, batch_size, num_samples=samples_per_day)

    def test_batch(self, num_samples: int | None = None) -> Batch:
        """The held-out last-day data used for the offline testing AUC."""
        return self.generate_day(self.test_day, num_samples=num_samples, seed_offset=99991)

    # ------------------------------------------------------------------ #
    # Statistics needed by baselines / analyses
    # ------------------------------------------------------------------ #
    def feature_frequencies(self, days: list[int] | None = None, samples_per_day: int | None = None) -> np.ndarray:
        """Exact global-feature frequency counts over the given days.

        This is the offline statistics pass required by the
        :class:`~repro.embeddings.offline.OfflineSeparationEmbedding` oracle.
        """
        counts = np.zeros(self.schema.num_features, dtype=np.float64)
        for day in days if days is not None else self.train_days:
            data = self.generate_day(day, num_samples=samples_per_day)
            np.add.at(counts, data.categorical.reshape(-1), 1.0)
        return counts

    def day_histograms(self, samples_per_day: int | None = None) -> np.ndarray:
        """Per-day global-feature frequency histograms, shape ``(days, n)``."""
        histograms = np.zeros((self.num_days, self.schema.num_features), dtype=np.float64)
        for day in range(self.num_days):
            data = self.generate_day(day, num_samples=samples_per_day)
            np.add.at(histograms[day], data.categorical.reshape(-1), 1.0)
        return histograms

"""Data pipeline: schemas, synthetic streams, Criteo reader, statistics."""

from repro.data.criteo import CriteoFileReader, criteo_schema
from repro.data.drift import DriftModel, NoDrift, RotatingDrift
from repro.data.schema import (
    PAPER_DATASET_STATS,
    DatasetSchema,
    FieldSchema,
    make_preset,
)
from repro.data.stats import frequency_skew_summary, kl_divergence, kl_divergence_matrix
from repro.data.stream import Batch, concat_batches, iterate_batches
from repro.data.synthetic import SyntheticConfig, SyntheticCTRDataset

__all__ = [
    "FieldSchema",
    "DatasetSchema",
    "make_preset",
    "PAPER_DATASET_STATS",
    "Batch",
    "iterate_batches",
    "concat_batches",
    "SyntheticCTRDataset",
    "SyntheticConfig",
    "DriftModel",
    "NoDrift",
    "RotatingDrift",
    "kl_divergence",
    "kl_divergence_matrix",
    "frequency_skew_summary",
    "CriteoFileReader",
    "criteo_schema",
]

"""Distribution-drift models for the synthetic data generator.

Figure 2 of the paper shows that the per-day feature distributions of the
public CTR datasets differ, and that the divergence grows with the number of
days between them.  The synthetic generator reproduces this by letting the
*popularity ranking* of features evolve across days: each field has a
permutation mapping Zipf ranks to feature ids, and a drift model perturbs
that permutation from one day to the next.  Cumulative perturbations make
KL(day_i ‖ day_j) grow with ``|i - j|``, which is exactly the structure the
heatmaps display.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng


class DriftModel:
    """Base class: produces the rank→feature permutation for each day."""

    def permutation_for_day(self, day: int, cardinality: int, base: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract


class NoDrift(DriftModel):
    """Stationary distribution: every day uses the base permutation."""

    def permutation_for_day(self, day: int, cardinality: int, base: np.ndarray) -> np.ndarray:
        return base


class RotatingDrift(DriftModel):
    """Each day swaps a fixed fraction of ranks, cumulatively.

    ``swap_fraction`` controls how many rank pairs are exchanged per day;
    swaps accumulate so distant days differ more than adjacent days.  Swaps
    are biased towards the head of the ranking (the hot features) because
    that is where changes matter for hot-feature tracking.
    """

    def __init__(self, swap_fraction: float = 0.05, head_bias: float = 2.0, seed: SeedLike = 0):
        if not 0.0 <= swap_fraction <= 1.0:
            raise ValueError(f"swap_fraction must be in [0, 1], got {swap_fraction}")
        if head_bias <= 0:
            raise ValueError(f"head_bias must be positive, got {head_bias}")
        self.swap_fraction = float(swap_fraction)
        self.head_bias = float(head_bias)
        self._seed_root = make_rng(seed).integers(0, 2**31 - 1)
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    def permutation_for_day(self, day: int, cardinality: int, base: np.ndarray) -> np.ndarray:
        if day < 0:
            raise ValueError(f"day must be non-negative, got {day}")
        key = (day, cardinality)
        if key in self._cache:
            return self._cache[key]
        if day == 0:
            permutation = base.copy()
        else:
            previous = self.permutation_for_day(day - 1, cardinality, base)
            permutation = previous.copy()
            rng = np.random.default_rng(self._seed_root + 7919 * day + cardinality)
            num_swaps = max(int(self.swap_fraction * cardinality), 1)
            # Head-biased rank choices: ranks ~ floor(card * u**head_bias).
            u = rng.random(size=(num_swaps, 2))
            ranks = np.floor(cardinality * u**self.head_bias).astype(np.int64)
            ranks = np.clip(ranks, 0, cardinality - 1)
            for a, b in ranks:
                permutation[a], permutation[b] = permutation[b], permutation[a]
        self._cache[key] = permutation
        return permutation

"""Batch containers and streaming iteration over chronological CTR data."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import DataError


@dataclass
class Batch:
    """One mini-batch of training or evaluation data.

    ``categorical`` holds *global* feature ids of shape ``(batch, fields)``,
    ``numerical`` holds dense features ``(batch, num_numerical)`` (possibly
    zero columns), ``labels`` holds binary click labels ``(batch,)``, and
    ``day`` records which logical day the samples belong to (used by the
    online-training protocol and the drift experiments).

    >>> batch = Batch(
    ...     categorical=np.array([[1, 2], [3, 4], [5, 6]]),
    ...     numerical=np.zeros((3, 0)),
    ...     labels=np.array([1.0, 0.0, 1.0]),
    ... )
    >>> len(batch)
    3
    >>> [len(b) for b in iterate_batches(
    ...     batch.categorical, batch.numerical, batch.labels, batch_size=2)]
    [2, 1]
    """

    categorical: np.ndarray
    numerical: np.ndarray
    labels: np.ndarray
    day: int = 0

    def __post_init__(self):
        self.categorical = np.asarray(self.categorical, dtype=np.int64)
        self.numerical = np.asarray(self.numerical, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.float64)
        batch = self.categorical.shape[0]
        if self.numerical.shape[0] != batch or self.labels.shape[0] != batch:
            raise DataError(
                "categorical, numerical and labels must agree on the batch dimension: "
                f"{self.categorical.shape[0]}, {self.numerical.shape[0]}, {self.labels.shape[0]}"
            )

    def __len__(self) -> int:
        return int(self.categorical.shape[0])

    @property
    def positive_rate(self) -> float:
        return float(self.labels.mean()) if len(self) else 0.0


def iterate_batches(
    categorical: np.ndarray,
    numerical: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    day: int = 0,
    drop_last: bool = False,
) -> Iterator[Batch]:
    """Slice arrays into consecutive :class:`Batch` objects."""
    if batch_size <= 0:
        raise DataError(f"batch_size must be positive, got {batch_size}")
    total = categorical.shape[0]
    for start in range(0, total, batch_size):
        end = min(start + batch_size, total)
        if drop_last and end - start < batch_size:
            break
        yield Batch(
            categorical=categorical[start:end],
            numerical=numerical[start:end],
            labels=labels[start:end],
            day=day,
        )


def concat_batches(batches: Iterable[Batch]) -> Batch:
    """Concatenate several batches into one (used for evaluation sets)."""
    batches = list(batches)
    if not batches:
        raise DataError("cannot concatenate an empty list of batches")
    return Batch(
        categorical=np.concatenate([b.categorical for b in batches], axis=0),
        numerical=np.concatenate([b.numerical for b in batches], axis=0),
        labels=np.concatenate([b.labels for b in batches], axis=0),
        day=batches[-1].day,
    )

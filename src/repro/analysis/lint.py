"""Project-specific AST lint rules.

Five rules encode contracts that previously existed only as prose:

``capability-probe``
    ``hasattr(...)`` (and ``callable(getattr(...))``) capability probing is
    the registry's job; everywhere else routes through
    :mod:`repro.api.registry` helpers so capabilities stay declared, not
    guessed.  Applies to ``src/`` outside ``api/registry.py``.
``shared-memory-import``
    :mod:`multiprocessing.shared_memory` may only be imported by
    ``runtime/shm.py`` — the one module that owns segment lifecycle (and
    the create/unlink bookkeeping the sanitizer audits).
``bench-wallclock``
    ``time.time()`` drifts with NTP and has platform-dependent resolution;
    timing paths must use ``time.perf_counter()`` (wall-clock *timestamps*
    should come from :mod:`datetime`).
``mutable-default``
    Mutable default arguments (``def f(x=[])``) alias across calls.
``implicit-dtype``
    ``np.zeros/empty/ones`` without an explicit ``dtype`` in the
    table-allocating modules (``embeddings/``, ``store/``, ``nn/optim.py``)
    silently allocate float64 — twice the footprint the paper's memory
    accounting assumes.

Suppression grammar: a trailing ``# lint: allow[rule-id] <reason>`` on the
flagged line keeps the violation out of strict mode; the linter still
counts and reports every suppression so they stay auditable.  Several rules
may be allowed at once: ``# lint: allow[rule-a, rule-b] reason``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "LintReport",
    "lint_source",
    "lint_tree",
]

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([a-z0-9_,\s-]+)\]")

#: Default roots scanned under the repo, when present.
DEFAULT_ROOTS = ("src", "tests", "scripts")

#: Modules where implicit-dtype allocations matter (table storage).
_DTYPE_SCOPES = ("src/repro/embeddings/", "src/repro/store/", "src/repro/nn/optim.py")

_NP_ALLOCATORS = frozenset({"zeros", "empty", "ones"})


@dataclass(frozen=True)
class Rule:
    """One lint rule: an id, a summary, and a path scope."""

    id: str
    summary: str
    scope: Callable[[str], bool]
    scope_doc: str


def _in_src(rel: str) -> bool:
    return rel.startswith("src/")


def _everywhere(rel: str) -> bool:
    return True


def _dtype_scope(rel: str) -> bool:
    return any(rel.startswith(scope) or rel == scope.rstrip("/") for scope in _DTYPE_SCOPES)


RULES: tuple[Rule, ...] = (
    Rule(
        id="capability-probe",
        summary="hasattr/callable(getattr(...)) capability probing outside the registry",
        scope=lambda rel: _in_src(rel) and rel != "src/repro/api/registry.py",
        scope_doc="src/ except api/registry.py",
    ),
    Rule(
        id="shared-memory-import",
        summary="multiprocessing.shared_memory imported outside runtime/shm.py",
        scope=lambda rel: rel != "src/repro/runtime/shm.py",
        scope_doc="everywhere except runtime/shm.py",
    ),
    Rule(
        id="bench-wallclock",
        summary="time.time() in timing code (use time.perf_counter())",
        scope=_everywhere,
        scope_doc="everywhere",
    ),
    Rule(
        id="mutable-default",
        summary="mutable default argument (list/dict/set literal or constructor)",
        scope=_everywhere,
        scope_doc="everywhere",
    ),
    Rule(
        id="implicit-dtype",
        summary="np.zeros/empty/ones without an explicit dtype in table-allocating code",
        scope=_dtype_scope,
        scope_doc="embeddings/, store/, nn/optim.py",
    ),
)

_RULES_BY_ID = {rule.id: rule for rule in RULES}


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"


@dataclass
class LintReport:
    violations: list[Violation] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Violation]:
        return [v for v in self.violations if not v.suppressed]

    @property
    def suppressed(self) -> list[Violation]:
        return [v for v in self.violations if v.suppressed]

    @property
    def suppression_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.suppressed:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.unsuppressed and not self.parse_errors


def _suppressions(source: str) -> dict[int, dict[str, str]]:
    """Map line number -> {rule id -> reason} from ``# lint: allow[...]``."""
    allowed: dict[int, dict[str, str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if not match:
                continue
            reason = token.string[match.end():].strip()
            line = token.start[0]
            for rule_id in match.group(1).split(","):
                allowed.setdefault(line, {})[rule_id.strip()] = reason
    except tokenize.TokenError:  # pragma: no cover - unparsable files caught by ast
        pass
    return allowed


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray"}
    return False


def _check_call(node: ast.Call) -> Iterator[tuple[str, str]]:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "hasattr":
            yield (
                "capability-probe",
                "hasattr() capability probe; declare the capability in "
                "repro.api.registry and call its helper instead",
            )
        elif func.id == "callable" and node.args and isinstance(node.args[0], ast.Call):
            inner = node.args[0].func
            if isinstance(inner, ast.Name) and inner.id == "getattr":
                yield (
                    "capability-probe",
                    "callable(getattr(...)) capability probe; route through a "
                    "repro.api.registry helper",
                )
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        yield (
            "bench-wallclock",
            "time.time() is not monotonic; use time.perf_counter() for timing "
            "(datetime for wall-clock timestamps)",
        )
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _NP_ALLOCATORS
        and isinstance(func.value, ast.Name)
        and func.value.id in {"np", "numpy"}
    ):
        has_dtype = len(node.args) >= 2 or any(
            keyword.arg == "dtype" for keyword in node.keywords
        )
        if not has_dtype:
            yield (
                "implicit-dtype",
                f"np.{func.attr}() without an explicit dtype defaults to float64; "
                "table-allocating code must pin its dtype",
            )


def _check_import(node: ast.Import | ast.ImportFrom) -> Iterator[tuple[str, str]]:
    message = (
        "multiprocessing.shared_memory must only be imported by runtime/shm.py; "
        "use its create_segment/attach_segment helpers"
    )
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "multiprocessing.shared_memory":
                yield ("shared-memory-import", message)
    else:
        if node.module == "multiprocessing.shared_memory":
            yield ("shared-memory-import", message)
        elif node.module == "multiprocessing" and any(
            alias.name == "shared_memory" for alias in node.names
        ):
            yield ("shared-memory-import", message)


def lint_source(source: str, rel: str) -> list[Violation]:
    """Lint one file's source; ``rel`` is its repo-relative posix path."""
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as error:
        raise ValueError(f"{rel}: {error}") from error
    allowed = _suppressions(source)
    violations: list[Violation] = []

    def emit(rule_id: str, line: int, message: str) -> None:
        rule = _RULES_BY_ID[rule_id]
        if not rule.scope(rel):
            return
        reason = allowed.get(line, {}).get(rule_id)
        violations.append(
            Violation(
                rule=rule_id,
                path=rel,
                line=line,
                message=message,
                suppressed=reason is not None,
                reason=reason or "",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for rule_id, message in _check_call(node):
                emit(rule_id, node.lineno, message)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for rule_id, message in _check_import(node):
                emit(rule_id, node.lineno, message)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    emit(
                        "mutable-default",
                        default.lineno,
                        f"mutable default argument in {node.name}(); "
                        "default to None and construct inside the body",
                    )
    return violations


def iter_python_files(repo: Path, roots: Iterable[str] = DEFAULT_ROOTS) -> Iterator[Path]:
    for root in roots:
        base = repo / root
        if not base.is_dir():
            continue
        yield from sorted(base.rglob("*.py"))


def lint_tree(repo: Path, roots: Iterable[str] = DEFAULT_ROOTS) -> LintReport:
    """Lint every ``*.py`` under ``roots`` relative to ``repo``."""
    report = LintReport()
    for path in iter_python_files(repo, roots):
        rel = path.relative_to(repo).as_posix()
        report.files_scanned += 1
        try:
            source = path.read_text(encoding="utf-8")
            report.violations.extend(lint_source(source, rel))
        except ValueError as error:
            report.parse_errors.append(str(error))
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return report

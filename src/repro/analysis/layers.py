"""Import-layering checker: the package DAG, machine-enforced.

The architecture note in the README describes a strict layer order —
``nn → sketch → embeddings → store → runtime → serving → api`` — but until
now nothing checked it.  This module declares the full order (including the
module-granular overrides that prose elides: ``api.registry`` and
``api.spec`` are *contracts* the mid-layers may import, while ``api.cli``
and ``api.session`` sit on top; ``runtime.executor``/``runtime.shm`` are
the low-level execution substrate the store builds on, while
``runtime.pipeline`` orchestrates everything), parses every module's
imports from the AST, and reports:

* **cycles** — strongly connected components in the eager (module-level)
  import graph; always an error.
* **upward imports** — an eager import from a lower layer into a higher
  one.  Deferred (function-level) imports are exempt — that is the
  sanctioned escape hatch for top-down calls — but they are recorded in
  the emitted graph so reviewers can see them.

:func:`render_graph` emits the resolved graph as Markdown (with a Mermaid
diagram of layer-level eager edges) into ``docs/import_graph.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "LAYERS",
    "ImportGraph",
    "LayerReport",
    "build_import_graph",
    "check_layers",
    "layer_of",
    "render_graph",
]

#: The declared layer order, lowest first.  Each entry is
#: ``(layer name, module prefixes)``; a module belongs to the entry with the
#: *longest* matching prefix, so ``repro.runtime.pipeline`` lands in
#: ``orchestration`` even though ``repro.runtime`` is declared lower.
#: An eager import must point at the same or a lower layer.
LAYERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("foundation", ("repro", "repro.errors", "repro.version", "repro.utils")),
    ("analysis", ("repro.analysis",)),
    ("kernels", ("repro.kernels",)),
    ("nn", ("repro.nn",)),
    ("sketch", ("repro.sketch",)),
    ("contracts", ("repro.api.registry", "repro.api.spec")),
    ("data", ("repro.data",)),
    ("embeddings", ("repro.embeddings",)),
    ("exec", ("repro.runtime.executor", "repro.runtime.shm", "repro.runtime.simulate")),
    ("store", ("repro.store",)),
    ("models", ("repro.models",)),
    ("training", ("repro.training",)),
    ("runtime", ("repro.runtime",)),
    ("serving", ("repro.serving",)),
    ("orchestration", ("repro.runtime.pipeline", "repro.experiments", "repro.bench")),
    ("api", ("repro.api",)),
    ("shims", ("repro.cli", "repro.pipeline", "repro.serve", "repro.__main__")),
)


def layer_of(module: str, layers: tuple[tuple[str, tuple[str, ...]], ...] = LAYERS) -> tuple[int, str]:
    """``(index, name)`` of the layer owning ``module`` (longest prefix wins)."""
    best: tuple[int, str] | None = None
    best_len = -1
    for index, (name, prefixes) in enumerate(layers):
        for prefix in prefixes:
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best, best_len = (index, name), len(prefix)
    if best is None:
        raise ValueError(f"module {module!r} matches no declared layer prefix")
    return best


@dataclass(frozen=True)
class Edge:
    src: str
    dst: str
    line: int
    eager: bool  # module-level (True) vs function-level (False)


@dataclass
class ImportGraph:
    package: str
    modules: set[str] = field(default_factory=set)
    edges: list[Edge] = field(default_factory=list)

    def eager_adjacency(self) -> dict[str, set[str]]:
        adjacency: dict[str, set[str]] = {module: set() for module in self.modules}
        for edge in self.edges:
            if edge.eager and edge.src != edge.dst:
                adjacency.setdefault(edge.src, set()).add(edge.dst)
        return adjacency


class _ImportCollector(ast.NodeVisitor):
    """Collects intra-package imports, tagging function-level ones deferred."""

    def __init__(self, graph: ImportGraph, module: str, is_package: bool):
        self.graph = graph
        self.module = module
        self.is_package = is_package
        self.depth = 0  # nested function depth

    def _note(self, target: str, line: int) -> None:
        root = self.graph.package
        if target != root and not target.startswith(root + "."):
            return
        target = _resolve_submodule(self.graph, target)
        self.graph.edges.append(
            Edge(src=self.module, dst=target, line=line, eager=self.depth == 0)
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._note(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # Relative import: resolve against this module's package.
            parts = self.module.split(".")
            # A package's own __init__ counts as one level deeper.
            anchor = parts[: len(parts) - node.level + (1 if self.is_package else 0)]
            base = ".".join(anchor + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        if not base:
            return
        root = self.graph.package
        if base != root and not base.startswith(root + "."):
            return
        for alias in node.names:
            candidate = f"{base}.{alias.name}"
            if candidate in self.graph.modules:
                self._note(candidate, node.lineno)
            else:
                self._note(base, node.lineno)


def _resolve_submodule(graph: ImportGraph, target: str) -> str:
    # ``import a.b.c`` introduces dependencies on every ancestor package,
    # but the meaningful edge is the deepest module that actually exists.
    while target not in graph.modules and "." in target:
        target = target.rsplit(".", 1)[0]
    return target


def _module_name(path: Path, src_root: Path) -> tuple[str, bool]:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    is_package = parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


def build_import_graph(src_root: Path, package: str = "repro") -> ImportGraph:
    """Parse every module under ``src_root/package`` into an import graph."""
    graph = ImportGraph(package=package)
    paths = sorted((src_root / package).rglob("*.py"))
    named = []
    for path in paths:
        module, is_package = _module_name(path, src_root)
        graph.modules.add(module)
        named.append((path, module, is_package))
    for path, module, is_package in named:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        _ImportCollector(graph, module, is_package).visit(tree)
    return graph


@dataclass
class LayerReport:
    cycles: list[list[str]] = field(default_factory=list)
    upward: list[tuple[Edge, str, str]] = field(default_factory=list)  # edge, src layer, dst layer
    deferred_upward: list[tuple[Edge, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.cycles and not self.upward

    def render_problems(self) -> list[str]:
        lines = []
        for cycle in self.cycles:
            lines.append("import cycle: " + " -> ".join(cycle + cycle[:1]))
        for edge, src_layer, dst_layer in self.upward:
            lines.append(
                f"upward import: {edge.src} (layer '{src_layer}') imports "
                f"{edge.dst} (layer '{dst_layer}') at module level (line {edge.line}); "
                "either the layer table or the import is wrong — deferred "
                "(function-level) imports are the sanctioned escape hatch"
            )
        return lines


def _strongly_connected(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC; returns only components with an actual cycle."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        # Iterative to survive deep graphs.
        work = [(node, iter(sorted(adjacency.get(node, ()))))]
        index_of[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[current] = min(low[current], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index_of[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    result.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index_of:
            strongconnect(node)
    # Self-loops (module importing itself) never happen via `import`, so
    # only multi-module components are cycles.
    return result


def check_layers(
    graph: ImportGraph,
    layers: tuple[tuple[str, tuple[str, ...]], ...] = LAYERS,
) -> LayerReport:
    report = LayerReport()
    report.cycles = _strongly_connected(graph.eager_adjacency())
    for edge in graph.edges:
        if edge.src == edge.dst:
            continue
        src_index, src_layer = layer_of(edge.src, layers)
        dst_index, dst_layer = layer_of(edge.dst, layers)
        if dst_index > src_index:
            record = (edge, src_layer, dst_layer)
            if edge.eager:
                report.upward.append(record)
            else:
                report.deferred_upward.append(record)
    return report


def render_graph(
    graph: ImportGraph,
    layers: tuple[tuple[str, tuple[str, ...]], ...] = LAYERS,
) -> str:
    """Markdown rendering of the resolved layer graph (goes to docs/)."""
    by_layer: dict[str, list[str]] = {name: [] for name, _ in layers}
    for module in sorted(graph.modules):
        _, name = layer_of(module, layers)
        by_layer[name].append(module)

    # Aggregate module edges up to layer edges.
    eager_layer_edges: set[tuple[str, str]] = set()
    deferred_layer_edges: set[tuple[str, str]] = set()
    for edge in graph.edges:
        src_index, src_layer = layer_of(edge.src, layers)
        dst_index, dst_layer = layer_of(edge.dst, layers)
        if src_layer == dst_layer:
            continue
        bucket = eager_layer_edges if edge.eager else deferred_layer_edges
        bucket.add((src_layer, dst_layer))

    lines = [
        "# Import graph",
        "",
        "<!-- Generated by `python -m repro analyze --write-graph`; do not edit by hand. -->",
        "",
        "The declared layer order (lowest first); an eager (module-level) import",
        "may only point at the same or a lower layer.  Deferred (function-level)",
        "imports are exempt and listed separately.",
        "",
        "| # | Layer | Modules |",
        "|---|-------|---------|",
    ]
    for index, (name, _) in enumerate(layers):
        modules = by_layer[name]
        shown = ", ".join(f"`{module}`" for module in modules) if modules else "*(none)*"
        lines.append(f"| {index} | {name} | {shown} |")

    lines += [
        "",
        "## Layer-level eager edges",
        "",
        "```mermaid",
        "graph TD",
    ]
    for src_layer, dst_layer in sorted(eager_layer_edges):
        lines.append(f"    {src_layer} --> {dst_layer}")
    lines += ["```", ""]

    deferred_only = sorted(deferred_layer_edges - eager_layer_edges)
    lines += ["## Deferred (function-level) cross-layer edges", ""]
    if deferred_only:
        lines += [f"- `{src}` -> `{dst}` (deferred only)" for src, dst in deferred_only]
    else:
        lines.append("*(none)*")
    lines += [
        "",
        f"Modules: {len(graph.modules)} · eager edges: "
        f"{sum(1 for e in graph.edges if e.eager and e.src != e.dst)} · deferred edges: "
        f"{sum(1 for e in graph.edges if not e.eager and e.src != e.dst)}",
        "",
    ]
    return "\n".join(lines)

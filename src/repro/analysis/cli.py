"""``python -m repro analyze`` — the analysis front door.

Runs the project lint rules and the import-layering checker, prints a
summary (including every counted suppression), and optionally regenerates
``docs/import_graph.md``.  ``--strict`` turns findings into a non-zero
exit, which is how CI consumes it.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis import layers as layers_mod
from repro.analysis import lint as lint_mod

__all__ = ["add_analyze_arguments", "run_analyze"]

GRAPH_PATH = Path("docs") / "import_graph.md"


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root", type=Path, default=Path("."),
        help="repository root to analyze (default: current directory)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any unsuppressed violation, cycle, or upward import")
    parser.add_argument(
        "--write-graph", action="store_true",
        help=f"regenerate {GRAPH_PATH.as_posix()} from the resolved import graph")


def _find_repo_root(start: Path) -> Path:
    root = start.resolve()
    if (root / "src" / "repro").is_dir():
        return root
    for parent in root.parents:
        if (parent / "src" / "repro").is_dir():
            return parent
    raise SystemExit(f"error: no src/repro under {start} or its parents")


def run_analyze(args: argparse.Namespace) -> int:
    repo = _find_repo_root(args.root)

    lint_report = lint_mod.lint_tree(repo)
    graph = layers_mod.build_import_graph(repo / "src")
    layer_report = layers_mod.check_layers(graph)

    print(f"lint: scanned {lint_report.files_scanned} files, "
          f"{len(lint_report.unsuppressed)} violation(s), "
          f"{len(lint_report.suppressed)} suppression(s)")
    for violation in lint_report.unsuppressed:
        print("  " + violation.render())
    for error in lint_report.parse_errors:
        print(f"  parse error: {error}")
    if lint_report.suppressed:
        print("suppressions by rule:")
        for rule_id, count in sorted(lint_report.suppression_counts.items()):
            print(f"  {rule_id}: {count}")
        for violation in lint_report.suppressed:
            note = f" — {violation.reason}" if violation.reason else ""
            print(f"  {violation.path}:{violation.line} [{violation.rule}]{note}")

    eager = sum(1 for e in graph.edges if e.eager and e.src != e.dst)
    print(f"layers: {len(graph.modules)} modules, {eager} eager edges, "
          f"{len(layer_report.cycles)} cycle(s), "
          f"{len(layer_report.upward)} upward import(s), "
          f"{len(layer_report.deferred_upward)} deferred upward edge(s) (allowed)")
    for line in layer_report.render_problems():
        print("  " + line)

    if args.write_graph:
        graph_path = repo / GRAPH_PATH
        graph_path.parent.mkdir(parents=True, exist_ok=True)
        graph_path.write_text(layers_mod.render_graph(graph), encoding="utf-8")
        print(f"wrote {graph_path.relative_to(repo)}")

    clean = lint_report.ok and layer_report.ok
    print("analyze: " + ("clean" if clean else "FINDINGS (see above)"))
    if args.strict and not clean:
        return 1
    return 0

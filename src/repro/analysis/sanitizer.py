"""Runtime sanitizer: sealed-memory freezing and a single-writer race detector.

Two enforcement tiers live here:

* **Always on** — :func:`freeze_arrays` marks every NumPy array reachable
  from a published snapshot read-only (``flags.writeable = False``), so a
  write-after-publish raises ``ValueError: assignment destination is
  read-only`` instead of silently corrupting concurrent readers.  Freezing
  is cheap (a flag flip, no copy) and composes with the store's
  copy-on-write discipline: ``copy.deepcopy`` of a read-only array yields a
  writable private copy, so the first post-snapshot write thaws naturally.
* **Opt-in (``REPRO_SANITIZE=1``)** — the :func:`single_writer` decorator
  tags store mutation entry points with the owning thread and raises a
  descriptive :class:`SingleWriterViolation` when a second thread enters
  mid-mutation; :mod:`repro.runtime.shm` adds refcount-underflow and
  double-release guards on sealed generations, plus an end-of-run
  ``/dev/shm`` leak audit armed by :func:`install_shm_audit`.

The sanitize flag is read from the environment *per call*, so tests can
flip it with ``monkeypatch.setenv`` without re-importing anything.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
import threading
import weakref
from functools import wraps
from pathlib import Path
from typing import Any, Callable, Mapping, TypeVar, cast

import numpy as np

__all__ = [
    "SanitizerViolation",
    "SingleWriterViolation",
    "enabled",
    "freeze_arrays",
    "single_writer",
    "install_shm_audit",
    "shm_audit_baseline",
    "shm_leaks",
    "note_segment_created",
    "note_segment_unlinked",
    "tracked_segments",
]

_ENV_FLAG = "REPRO_SANITIZE"
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def enabled() -> bool:
    """Whether opt-in sanitize mode is on (``REPRO_SANITIZE=1``)."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() in _TRUTHY


class SanitizerViolation(RuntimeError):
    """An invariant breach the sanitizer turned into an error."""


class SingleWriterViolation(SanitizerViolation):
    """Two threads entered a store mutation at the same time.

    The store contract is single-writer/many-readers: lookups may run
    concurrently with one mutator, but two concurrent mutators corrupt
    shared plan caches and COW bookkeeping.
    """


# --------------------------------------------------------------------- #
# Sealed-array freezing
# --------------------------------------------------------------------- #

def freeze_arrays(obj: Any, _seen: set[int] | None = None) -> int:
    """Set ``writeable=False`` on every array reachable from ``obj``.

    Walks mappings, sequences, and the instance ``__dict__`` of objects
    defined in this package (third-party objects are left alone — freezing
    a foreign object's internals is not ours to do).  Returns the number of
    arrays frozen.  Already-frozen arrays count as visited, not frozen.
    """
    if _seen is None:
        _seen = set()
    marker = id(obj)
    if marker in _seen:
        return 0
    _seen.add(marker)

    if isinstance(obj, np.ndarray):
        if obj.flags.writeable:
            obj.setflags(write=False)
            return 1
        return 0

    frozen = 0
    if isinstance(obj, Mapping):
        for value in obj.values():
            frozen += freeze_arrays(value, _seen)
        return frozen
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            frozen += freeze_arrays(item, _seen)
        return frozen

    module = type(obj).__module__ or ""
    if module == "repro" or module.startswith("repro."):
        state = getattr(obj, "__dict__", None)
        if state is not None:
            for value in state.values():
                frozen += freeze_arrays(value, _seen)
        for klass in type(obj).__mro__:
            slots = klass.__dict__.get("__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                frozen += freeze_arrays(getattr(obj, slot, None), _seen)
    return frozen


# --------------------------------------------------------------------- #
# Single-writer race detector
# --------------------------------------------------------------------- #

class _WriterGuard:
    """Per-store mutation guard: owning thread + reentrancy depth."""

    __slots__ = ("lock", "owner", "depth")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.owner: threading.Thread | None = None
        self.depth = 0


#: Guards live *outside* the store instances so stores stay deep-copyable
#: and picklable (a ``threading.Lock`` attribute would break both).
_guards: "weakref.WeakKeyDictionary[Any, _WriterGuard]" = weakref.WeakKeyDictionary()
_guards_lock = threading.Lock()

_Method = TypeVar("_Method", bound=Callable[..., Any])


def _guard_for(obj: Any) -> _WriterGuard:
    with _guards_lock:
        guard = _guards.get(obj)
        if guard is None:
            guard = _WriterGuard()
            _guards[obj] = guard
        return guard


def single_writer(method: _Method) -> _Method:
    """Tag a store mutation entry point with the single-writer detector.

    A no-op unless sanitize mode is on.  Reentrant calls from the owning
    thread pass (``load_state_dict`` calls ``rebalance`` internally); a
    second thread entering while another's mutation is in flight raises
    :class:`SingleWriterViolation` naming both threads and the method.
    """

    @wraps(method)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        if not enabled():
            return method(self, *args, **kwargs)
        guard = _guard_for(self)
        me = threading.current_thread()
        with guard.lock:
            if guard.owner is not None and guard.owner is not me:
                raise SingleWriterViolation(
                    f"single-writer violation: thread {me.name!r} entered "
                    f"{type(self).__name__}.{method.__name__} while thread "
                    f"{guard.owner.name!r} is mid-mutation; the store contract "
                    "is one writer, many readers"
                )
            guard.owner = me
            guard.depth += 1
        try:
            return method(self, *args, **kwargs)
        finally:
            with guard.lock:
                guard.depth -= 1
                if guard.depth == 0:
                    guard.owner = None

    return cast(_Method, wrapper)


# --------------------------------------------------------------------- #
# /dev/shm leak audit
# --------------------------------------------------------------------- #

_SHM_DIR = Path("/dev/shm")

#: Segment names created through :func:`repro.runtime.shm.create_segment`
#: and not yet unlinked — the portable half of the audit (works even where
#: ``/dev/shm`` is not a real directory).
_tracked: set[str] = set()
_tracked_lock = threading.Lock()

_baseline: set[str] | None = None
_audit_armed = False


def note_segment_created(name: str) -> None:
    with _tracked_lock:
        _tracked.add(name)


def note_segment_unlinked(name: str) -> None:
    with _tracked_lock:
        _tracked.discard(name)


def tracked_segments() -> set[str]:
    """Names of segments created but not yet unlinked (sanitize mode)."""
    with _tracked_lock:
        return set(_tracked)


def _shm_names() -> set[str]:
    if not _SHM_DIR.is_dir():
        return set()
    # Python names anonymous segments psm_<token>; ignore unrelated tenants.
    return {entry.name for entry in _SHM_DIR.iterdir() if entry.name.startswith("psm_")}


def shm_audit_baseline() -> set[str]:
    """Record the current ``/dev/shm`` population as the leak baseline."""
    global _baseline
    _baseline = _shm_names()
    return set(_baseline)


def shm_leaks() -> set[str]:
    """Segments that outlived their owners.

    The union of the filesystem diff against the baseline and any
    create-tracked segment that still exists on disk (a tracked name no
    longer present was unlinked by the parent, which is the contract).
    """
    if _SHM_DIR.is_dir():
        names = _shm_names()
        filesystem = names - _baseline if _baseline is not None else set()
        return filesystem | (tracked_segments() & names)
    return tracked_segments()


def install_shm_audit() -> bool:
    """Arm the end-of-run leak audit; returns True the first time it arms.

    A no-op unless sanitize mode is on, and parent-process only — workers
    never unlink (the parent settles the books), so a worker-side audit
    would flag segments the parent is still responsible for.  Called by
    :mod:`repro.runtime.shm` at import time, so the baseline is captured
    before any segment exists.
    """
    global _audit_armed
    if not enabled() or _audit_armed:
        return False
    if multiprocessing.parent_process() is not None:
        return False
    shm_audit_baseline()
    atexit.register(_report_leaks)
    _audit_armed = True
    return True


def _report_leaks() -> None:  # pragma: no cover - exercised via atexit
    leaked = sorted(shm_leaks())
    if leaked:
        print(
            "[repro.sanitize] leaked shared-memory segments: " + ", ".join(leaked),
            file=sys.stderr,
        )

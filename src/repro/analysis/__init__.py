"""Project correctness tooling: lint rules, layering checker, sanitizer.

Three legs, one front door (``python -m repro analyze``):

* :mod:`repro.analysis.lint` — AST rules for the contracts that used to be
  prose (capability probes stay in the registry, shared-memory imports stay
  in ``runtime/shm``, bench timing uses ``perf_counter``, ...).
* :mod:`repro.analysis.layers` — the package import DAG, cycle detection,
  and the generated ``docs/import_graph.md``.
* :mod:`repro.analysis.sanitizer` — runtime guards: sealed-array freezing,
  the opt-in ``REPRO_SANITIZE=1`` single-writer race detector, and the
  shared-memory leak audit.

This package sits near the bottom of the layer order (just above the
foundation) because the runtime and store layers import the sanitizer; the
static tools import nothing from the rest of the package.
"""

from __future__ import annotations

import importlib
from typing import Any

__all__ = ["lint", "layers", "sanitizer"]


def __getattr__(name: str) -> Any:
    # Lazy submodule access keeps ``import repro.analysis`` (which the
    # runtime does eagerly for the sanitizer) from paying for the AST tools.
    if name in __all__:
        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

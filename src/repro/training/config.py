"""Training configuration objects shared by the trainer and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TrainingConfig:
    """Hyper-parameters of one training run.

    The defaults are scaled to the synthetic presets; experiments override
    ``samples_per_day`` / ``batch_size`` to trade fidelity for runtime.
    """

    batch_size: int = 256
    dense_optimizer: str = "adam"
    dense_learning_rate: float = 0.01
    sparse_optimizer: str = "adagrad"
    sparse_learning_rate: float = 0.1
    #: Storage dtype of the embedding tables.  float32 matches the paper's
    #: memory accounting; float64 is the opt-in for precision-sensitive runs.
    embedding_dtype: str = "float32"
    samples_per_day: int | None = None
    eval_batch_size: int = 4096
    eval_every: int | None = None
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.dense_learning_rate <= 0 or self.sparse_learning_rate <= 0:
            raise ValueError("learning rates must be positive")

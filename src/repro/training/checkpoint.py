"""Checkpointing utilities (paper §4, "Fault Tolerance").

The paper registers HotSketch's state as buffers of the embedding module so
that checkpoints capture both the dense parameters and the sketch/migration
state.  This module provides the equivalent for this library: a single
``.npz`` file containing the model's dense parameters and, when the embedding
layer supports it, its sparse state (tables, free rows, sketch contents,
threshold), so online training can resume exactly where it stopped.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.api import registry as capability_registry
from repro.embeddings.base import CompressedEmbedding
from repro.models.base import RecommendationModel

_DENSE_PREFIX = "dense/"
_SPARSE_PREFIX = "sparse/"
_META_PREFIX = "meta/"


def save_checkpoint(path: str | Path, model: RecommendationModel, step: int = 0) -> Path:
    """Write the model's dense parameters and embedding state to ``path``.

    Embedding layers that implement ``state_dict()`` (CAFE, CAFE-ML) have
    their full sparse state saved; other layers are skipped with a marker so
    :func:`load_checkpoint` knows not to expect one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {f"{_META_PREFIX}step": np.asarray(step)}
    for name, value in model.state_dict().items():
        payload[f"{_DENSE_PREFIX}{name}"] = value
    sparse_state = _sparse_state_dict(_sparse_target(model))
    if sparse_state is not None:
        for name, value in sparse_state.items():
            payload[f"{_SPARSE_PREFIX}{name}"] = value
        payload[f"{_META_PREFIX}has_sparse"] = np.asarray(1)
    else:
        payload[f"{_META_PREFIX}has_sparse"] = np.asarray(0)
    np.savez(path, **payload)
    return path


def _sparse_target(model: RecommendationModel):
    """The object whose sparse state is checkpointed.

    The store is the source of truth for embedding parameters (after a
    copy-on-write snapshot the live shards may no longer be the object the
    model was constructed with); models without a store fall back to their
    bare embedding layer.
    """
    return getattr(model, "store", None) or model.embedding


def _sparse_state_dict(target) -> dict[str, np.ndarray] | None:
    """``target.state_dict()``, or ``None`` when the layer has no sparse state.

    Sharded stores raise ``NotImplementedError`` when their backend keeps no
    checkpointable state (e.g. a plain hash table whose contents are pure
    function of training); those checkpoints simply omit the sparse section,
    exactly like a bare stateless layer.
    """
    if not capability_registry.supports_state_dict(target):
        return None
    try:
        return target.state_dict()
    except NotImplementedError:
        return None


def load_checkpoint(path: str | Path, model: RecommendationModel) -> int:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Returns the training step recorded at save time.  Raises ``KeyError`` /
    ``ValueError`` if the checkpoint does not match the model structure.
    """
    path = Path(path)
    with np.load(path) as data:
        dense = {
            key[len(_DENSE_PREFIX):]: data[key] for key in data.files if key.startswith(_DENSE_PREFIX)
        }
        sparse = {
            key[len(_SPARSE_PREFIX):]: data[key] for key in data.files if key.startswith(_SPARSE_PREFIX)
        }
        step = int(data[f"{_META_PREFIX}step"])
        has_sparse = bool(int(data[f"{_META_PREFIX}has_sparse"]))
    model.load_state_dict(dense)
    if has_sparse:
        target: CompressedEmbedding = _sparse_target(model)
        if not capability_registry.supports_load_state_dict(target):
            raise ValueError(
                "checkpoint contains embedding state but the model's embedding store "
                f"({type(target).__name__}) cannot load one"
            )
        target.load_state_dict(sparse)
    return step

"""Checkpointing utilities (paper §4, "Fault Tolerance").

The paper registers HotSketch's state as buffers of the embedding module so
that checkpoints capture both the dense parameters and the sketch/migration
state.  This module provides the equivalent for this library: a single
``.npz`` file containing the model's dense parameters and, when the embedding
layer supports it, its sparse state (tables, free rows, sketch contents,
threshold), so online training can resume exactly where it stopped.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.embeddings.base import CompressedEmbedding
from repro.models.base import RecommendationModel

_DENSE_PREFIX = "dense/"
_SPARSE_PREFIX = "sparse/"
_META_PREFIX = "meta/"


def save_checkpoint(path: str | Path, model: RecommendationModel, step: int = 0) -> Path:
    """Write the model's dense parameters and embedding state to ``path``.

    Embedding layers that implement ``state_dict()`` (CAFE, CAFE-ML) have
    their full sparse state saved; other layers are skipped with a marker so
    :func:`load_checkpoint` knows not to expect one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {f"{_META_PREFIX}step": np.asarray(step)}
    for name, value in model.state_dict().items():
        payload[f"{_DENSE_PREFIX}{name}"] = value
    embedding = model.embedding
    if hasattr(embedding, "state_dict"):
        for name, value in embedding.state_dict().items():
            payload[f"{_SPARSE_PREFIX}{name}"] = value
        payload[f"{_META_PREFIX}has_sparse"] = np.asarray(1)
    else:
        payload[f"{_META_PREFIX}has_sparse"] = np.asarray(0)
    np.savez(path, **payload)
    return path


def load_checkpoint(path: str | Path, model: RecommendationModel) -> int:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Returns the training step recorded at save time.  Raises ``KeyError`` /
    ``ValueError`` if the checkpoint does not match the model structure.
    """
    path = Path(path)
    with np.load(path) as data:
        dense = {
            key[len(_DENSE_PREFIX):]: data[key] for key in data.files if key.startswith(_DENSE_PREFIX)
        }
        sparse = {
            key[len(_SPARSE_PREFIX):]: data[key] for key in data.files if key.startswith(_SPARSE_PREFIX)
        }
        step = int(data[f"{_META_PREFIX}step"])
        has_sparse = bool(int(data[f"{_META_PREFIX}has_sparse"]))
    model.load_state_dict(dense)
    if has_sparse:
        embedding: CompressedEmbedding = model.embedding
        if not hasattr(embedding, "load_state_dict"):
            raise ValueError(
                "checkpoint contains embedding state but the model's embedding layer "
                f"({type(embedding).__name__}) cannot load one"
            )
        embedding.load_state_dict(sparse)
    return step

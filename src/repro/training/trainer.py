"""Training and evaluation loops implementing the paper's protocol (§5.1.4).

One chronological epoch over the training days; the last day is held out as
the test set.  The *offline* metric is the testing AUC on that last day, the
*online* metric is the average training loss over the stream.  The trainer
also exposes hooks the analysis experiments need: iteration-level metric
histories (Figure 9) and per-feature gradient-norm accumulation (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.data.stream import Batch, iterate_batches
from repro.models.base import RecommendationModel
from repro.nn import functional as F
from repro.nn.optim import Adagrad, Adam, Optimizer, SGD
from repro.training.config import TrainingConfig
from repro.training.metrics import log_loss, roc_auc
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class TrainingHistory:
    """Metric traces captured during one run."""

    losses: list[float] = field(default_factory=list)
    steps: list[int] = field(default_factory=list)
    eval_steps: list[int] = field(default_factory=list)
    eval_aucs: list[float] = field(default_factory=list)

    @property
    def average_loss(self) -> float:
        return float(np.mean(self.losses)) if self.losses else float("nan")

    def smoothed_losses(self, window: int = 20) -> np.ndarray:
        """Moving average of the loss curve (for iteration plots)."""
        if not self.losses:
            return np.empty(0)
        values = np.asarray(self.losses, dtype=np.float64)
        window = max(min(window, values.size), 1)
        kernel = np.ones(window) / window
        return np.convolve(values, kernel, mode="valid")


def _make_dense_optimizer(name: str, parameters, lr: float) -> Optimizer:
    lowered = name.lower()
    if lowered == "sgd":
        return SGD(parameters, lr)
    if lowered == "adagrad":
        return Adagrad(parameters, lr)
    if lowered == "adam":
        return Adam(parameters, lr)
    raise ValueError(f"unknown dense optimizer '{name}'")


class Trainer:
    """Drives a :class:`RecommendationModel` over a batch stream."""

    def __init__(self, model: RecommendationModel, config: TrainingConfig | None = None):
        self.model = model
        self.config = config or TrainingConfig()
        self.dense_optimizer = _make_dense_optimizer(
            self.config.dense_optimizer, list(model.parameters()), self.config.dense_learning_rate
        )
        self.global_step = 0

    # ------------------------------------------------------------------ #
    # Single step
    # ------------------------------------------------------------------ #
    def train_step(self, batch: Batch) -> float:
        """One forward/backward/update pass; returns the batch loss.

        The embedding store computes its routing plan during the forward
        lookup and reuses it here when the gradients come back, so hashing
        and slot location run once per step, not twice — at the shard level
        and inside each shard backend.
        """
        logits, leaf = self.model.forward(batch.categorical, batch.numerical)
        loss = F.binary_cross_entropy_with_logits(logits, batch.labels)
        self.model.zero_grad()
        loss.backward()
        if leaf.grad is None:  # pragma: no cover - defensive, autograd always fills it
            raise RuntimeError("embedding leaf did not receive a gradient")
        self.model.store.apply_gradients(batch.categorical, leaf.grad)
        self.dense_optimizer.step()
        self.global_step += 1
        return float(loss.data)

    def embedding_plan_stats(self) -> dict[str, float | int] | None:
        """Routing-plan cache behaviour of the model's embedding store."""
        stats = getattr(self.model.store, "plan_stats", None)
        return stats.as_dict() if stats is not None else None

    # ------------------------------------------------------------------ #
    # Stream / epoch training
    # ------------------------------------------------------------------ #
    def train_stream(
        self,
        stream: Iterable[Batch],
        eval_batch: Batch | None = None,
        eval_every: int | None = None,
        max_steps: int | None = None,
    ) -> TrainingHistory:
        """Train over ``stream`` capturing the loss curve and periodic AUC."""
        history = TrainingHistory()
        eval_every = eval_every if eval_every is not None else self.config.eval_every
        for batch in stream:
            loss = self.train_step(batch)
            history.losses.append(loss)
            history.steps.append(self.global_step)
            if eval_batch is not None and eval_every and self.global_step % eval_every == 0:
                auc = self.evaluate_auc(eval_batch)
                history.eval_steps.append(self.global_step)
                history.eval_aucs.append(auc)
            if max_steps is not None and len(history.losses) >= max_steps:
                break
        return history

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def predict(self, batch: Batch, batch_size: int | None = None) -> np.ndarray:
        """Click probabilities for a (possibly large) evaluation batch."""
        batch_size = batch_size or self.config.eval_batch_size
        outputs = []
        for piece in iterate_batches(batch.categorical, batch.numerical, batch.labels, batch_size):
            outputs.append(self.model.predict_proba(piece.categorical, piece.numerical))
        return np.concatenate(outputs)

    def evaluate_auc(self, batch: Batch, batch_size: int | None = None) -> float:
        return roc_auc(batch.labels, self.predict(batch, batch_size))

    def evaluate_log_loss(self, batch: Batch, batch_size: int | None = None) -> float:
        return log_loss(batch.labels, self.predict(batch, batch_size))

    # ------------------------------------------------------------------ #
    # Analysis hooks
    # ------------------------------------------------------------------ #
    def collect_gradient_norms(self, stream: Iterable[Batch], num_features: int) -> np.ndarray:
        """Accumulate per-feature L2 gradient norms while training.

        This is the measurement behind Figure 3 (gradient-norm distribution
        vs. Zipf fits): the per-lookup embedding gradients are exactly what
        CAFE feeds to HotSketch as importance scores.
        """
        totals = np.zeros(num_features, dtype=np.float64)
        for batch in stream:
            logits, leaf = self.model.forward(batch.categorical, batch.numerical)
            loss = F.binary_cross_entropy_with_logits(logits, batch.labels)
            self.model.zero_grad()
            loss.backward()
            grads = leaf.grad.reshape(-1, self.model.dim)
            norms = np.linalg.norm(grads, axis=1)
            np.add.at(totals, batch.categorical.reshape(-1), norms)
            self.model.store.apply_gradients(batch.categorical, leaf.grad)
            self.dense_optimizer.step()
            self.global_step += 1
        return totals


def train_and_evaluate(
    model: RecommendationModel,
    train_stream: Iterator[Batch],
    test_batch: Batch,
    config: TrainingConfig | None = None,
    eval_every: int | None = None,
) -> dict[str, float | TrainingHistory]:
    """Convenience wrapper: one epoch of online training + final testing AUC.

    Returns a dictionary with the two metrics the paper reports for every
    configuration — the average training loss (online metric) and the testing
    AUC on the held-out last day (offline metric) — plus the raw history.
    """
    trainer = Trainer(model, config)
    history = trainer.train_stream(train_stream, eval_batch=test_batch, eval_every=eval_every)
    test_auc = trainer.evaluate_auc(test_batch)
    test_loss = trainer.evaluate_log_loss(test_batch)
    return {
        "train_loss": history.average_loss,
        "test_auc": test_auc,
        "test_log_loss": test_loss,
        "history": history,
    }

"""Evaluation metrics: AUC, log loss, and recall for top-k tracking."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-statistic (Mann-Whitney) formula.

    Ties in ``scores`` receive average ranks, matching
    ``sklearn.metrics.roc_auc_score``.
    """
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise DataError(f"labels and scores must match in length: {labels.shape} vs {scores.shape}")
    positives = labels > 0.5
    num_pos = int(positives.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise DataError("AUC is undefined when only one class is present")
    ranks = _average_ranks(scores)
    rank_sum_pos = ranks[positives].sum()
    auc = (rank_sum_pos - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg)
    return float(auc)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties assigned their average rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = average
        i = j + 1
    return ranks


def log_loss(labels: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross entropy between labels and predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    probabilities = np.clip(np.asarray(probabilities, dtype=np.float64).reshape(-1), eps, 1 - eps)
    if labels.shape != probabilities.shape:
        raise DataError("labels and probabilities must have the same length")
    return float(-np.mean(labels * np.log(probabilities) + (1 - labels) * np.log(1 - probabilities)))


def recall_at_k(true_items: np.ndarray, reported_items: np.ndarray) -> float:
    """Fraction of ``true_items`` present in ``reported_items``.

    Used for the HotSketch top-k tracking experiments (Figure 18c/d).
    """
    true_set = np.unique(np.asarray(true_items))
    if true_set.size == 0:
        raise DataError("true_items must be non-empty")
    reported_set = set(np.asarray(reported_items).reshape(-1).tolist())
    hits = sum(1 for item in true_set.tolist() if item in reported_set)
    return hits / true_set.size

"""Training harness: trainer, metrics, configuration, latency measurement."""

from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.config import TrainingConfig
from repro.training.latency import LatencyReport, measure_latency, measure_sketch_throughput
from repro.training.metrics import log_loss, recall_at_k, roc_auc
from repro.training.trainer import Trainer, TrainingHistory, train_and_evaluate

__all__ = [
    "TrainingConfig",
    "save_checkpoint",
    "load_checkpoint",
    "Trainer",
    "TrainingHistory",
    "train_and_evaluate",
    "roc_auc",
    "log_loss",
    "recall_at_k",
    "LatencyReport",
    "measure_latency",
    "measure_sketch_throughput",
]

"""Latency and throughput measurement (paper §5.2.5, Figure 13).

The paper measures per-batch training and inference latency of each
compression method at a fixed compression ratio; the differences come almost
entirely from the embedding layer (lookup + update + any migration logic),
because data loading and the dense network are identical across methods.
These helpers time exactly those code paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.stream import Batch
from repro.models.base import RecommendationModel
from repro.training.trainer import Trainer


@dataclass
class LatencyReport:
    """Timing results for one method."""

    method: str
    train_latency_ms: float
    inference_latency_ms: float
    train_throughput: float
    inference_throughput: float
    #: Fraction of lookup/apply_gradients pairs that reused one routing plan
    #: (1 lookup + 1 update per step → 0.5 means every step shared its plan).
    plan_reuse_rate: float = 0.0

    def as_row(self) -> dict[str, float | str]:
        return {
            "method": self.method,
            "train_latency_ms": round(self.train_latency_ms, 3),
            "inference_latency_ms": round(self.inference_latency_ms, 3),
            "train_throughput": round(self.train_throughput, 1),
            "inference_throughput": round(self.inference_throughput, 1),
            "plan_reuse_rate": round(self.plan_reuse_rate, 3),
        }


def measure_latency(
    model: RecommendationModel,
    train_batch: Batch,
    inference_batch: Batch,
    method_name: str,
    warmup: int = 2,
    repeats: int = 5,
) -> LatencyReport:
    """Time training steps and inference passes for one model."""
    trainer = Trainer(model)
    for _ in range(warmup):
        trainer.train_step(train_batch)
        model.predict_proba(inference_batch.categorical, inference_batch.numerical)

    train_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_step(train_batch)
        train_times.append(time.perf_counter() - start)

    inference_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        model.predict_proba(inference_batch.categorical, inference_batch.numerical)
        inference_times.append(time.perf_counter() - start)

    train_latency = float(np.median(train_times))
    inference_latency = float(np.median(inference_times))
    plan_stats = trainer.embedding_plan_stats()
    return LatencyReport(
        method=method_name,
        train_latency_ms=train_latency * 1e3,
        inference_latency_ms=inference_latency * 1e3,
        train_throughput=len(train_batch) / train_latency,
        inference_throughput=len(inference_batch) / inference_latency,
        plan_reuse_rate=plan_stats["reuse_rate"] if plan_stats is not None else 0.0,
    )


def measure_sketch_throughput(sketch, keys: np.ndarray, scores: np.ndarray, repeats: int = 3) -> dict[str, float]:
    """Insert/query throughput of a sketch in operations per second (Fig 18b)."""
    insert_times = []
    query_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        sketch.insert(keys, scores)
        insert_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        sketch.query(keys)
        query_times.append(time.perf_counter() - start)
    n = keys.size
    return {
        "insert_ops_per_s": n / float(np.median(insert_times)),
        "query_ops_per_s": n / float(np.median(query_times)),
    }

"""Latency and throughput measurement (paper §5.2.5, Figure 13).

The paper measures per-batch training and inference latency of each
compression method at a fixed compression ratio; the differences come almost
entirely from the embedding layer (lookup + update + any migration logic),
because data loading and the dense network are identical across methods.
These helpers time exactly those code paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.stream import Batch
from repro.models.base import RecommendationModel
from repro.training.trainer import Trainer


@dataclass
class LatencyReport:
    """Timing results for one method."""

    method: str
    train_latency_ms: float
    inference_latency_ms: float
    train_throughput: float
    inference_throughput: float
    #: Fraction of lookup/apply_gradients pairs that reused one routing plan
    #: (1 lookup + 1 update per step → 0.5 means every step shared its plan).
    plan_reuse_rate: float = 0.0
    #: Per-request serving percentiles measured through the snapshot-backed
    #: micro-batching engine (NaN when serving was not measured).
    serve_p50_ms: float = float("nan")
    serve_p95_ms: float = float("nan")
    serve_p99_ms: float = float("nan")
    #: Serve-while-train: probe-request percentiles measured through the
    #: OnlinePipeline while training keeps publishing snapshots, plus the
    #: snapshot publish latency and the worst staleness (in steps) observed
    #: against the pipeline cadence (NaN/0 when not measured).
    swt_p50_ms: float = float("nan")
    swt_p95_ms: float = float("nan")
    publish_p50_ms: float = float("nan")
    staleness_steps: int = 0
    #: Replicated tier: saturated-throughput ratio of 2 replicas vs 1, and
    #: overall p99 under a 4x flash crowd with the SLO micro-batch
    #: controller active (NaN when the replica replay was not measured).
    replica_speedup_2x: float = float("nan")
    burst_p99_ms: float = float("nan")

    def as_row(self) -> dict[str, float | str]:
        return {
            "method": self.method,
            "train_latency_ms": round(self.train_latency_ms, 3),
            "inference_latency_ms": round(self.inference_latency_ms, 3),
            "train_throughput": round(self.train_throughput, 1),
            "inference_throughput": round(self.inference_throughput, 1),
            "plan_reuse_rate": round(self.plan_reuse_rate, 3),
            "serve_p50_ms": round(self.serve_p50_ms, 3),
            "serve_p95_ms": round(self.serve_p95_ms, 3),
            "serve_p99_ms": round(self.serve_p99_ms, 3),
            "swt_p50_ms": round(self.swt_p50_ms, 3),
            "swt_p95_ms": round(self.swt_p95_ms, 3),
            "publish_p50_ms": round(self.publish_p50_ms, 3),
            "staleness_steps": self.staleness_steps,
            "replica_speedup_2x": round(self.replica_speedup_2x, 3),
            "burst_p99_ms": round(self.burst_p99_ms, 3),
        }


def measure_serving_latency(
    model: RecommendationModel, batch: Batch, micro_batch: int = 64
) -> dict[str, float | int]:
    """Replay ``batch`` row-by-row through the snapshot serving engine.

    Each row is one request; the engine coalesces up to ``micro_batch`` rows
    per forward pass over a copy-on-write store snapshot.  Returns the
    engine's latency summary (p50/p95/p99 in milliseconds).
    """
    from repro.serving.engine import ServingEngine

    engine = ServingEngine(model, max_batch_size=micro_batch)
    has_numerical = batch.numerical.shape[1] > 0
    for row in range(len(batch)):
        engine.submit(batch.categorical[row], batch.numerical[row] if has_numerical else None)
    engine.flush()
    return engine.stats()


def measure_serve_while_train(
    model: RecommendationModel,
    train_batch: Batch,
    probe_batch: Batch,
    trainer: Trainer | None = None,
    steps: int = 12,
    publish_every: int = 4,
    probe_every: int = 2,
    micro_batch: int = 64,
) -> dict[str, float | int]:
    """Probe serving latency while the model trains and publishes snapshots.

    Runs an :class:`~repro.runtime.pipeline.OnlinePipeline` that re-feeds
    ``train_batch`` for ``steps`` training steps, publishing a copy-on-write
    snapshot every ``publish_every`` steps and sending a probe request from
    ``probe_batch`` every ``probe_every`` steps.  Returns the probe latency
    percentiles plus publish latency and the maximum snapshot staleness
    observed (which the pipeline bounds by ``publish_every``).
    """
    from repro.runtime.pipeline import OnlinePipeline, PipelineConfig

    pipeline = OnlinePipeline(
        model,
        config=PipelineConfig(
            publish_every_steps=publish_every,
            probe_every_steps=probe_every,
            serving_micro_batch=micro_batch,
            max_steps=steps,
        ),
        trainer=trainer,
    )
    report = pipeline.run(iter([train_batch] * steps), probe_batch=probe_batch)
    probe = report.probe_stats or {}
    return {
        "swt_p50_ms": float(probe.get("p50_ms", float("nan"))),
        "swt_p95_ms": float(probe.get("p95_ms", float("nan"))),
        "publish_p50_ms": report.publish_percentile_ms(50.0),
        "staleness_steps": report.max_staleness_steps,
        "cadence_steps": report.cadence_steps,
        "staleness_within_cadence": report.staleness_within_cadence,
    }


def measure_replicated_serving(
    model: RecommendationModel,
    schema,
    micro_batch: int = 32,
    requests: int = 1200,
    seed: int = 0,
) -> dict[str, float]:
    """Replica-count scaling and p99-under-burst through the replicated tier.

    Virtual-time queueing replays (:func:`repro.serving.traffic.
    run_workload`) driven by a service model calibrated from this method's
    real forward passes, so both columns reflect its measured compute cost
    while the queueing physics stay deterministic:

    * ``replica_speedup_2x`` — saturated-throughput ratio of 2 replicas vs 1
      under the same Zipfian arrival stream;
    * ``burst_p99_ms`` — overall request p99 (virtual ms) under a 4x
      flash-crowd window on 2 replicas with the SLO micro-batch controller
      active.

    Arrival rates are placed relative to a quick capacity calibration
    (two forward passes) so the replays hit the intended queueing regimes —
    saturation, then a burst past baseline capacity — on any host.
    """
    from repro.serving.replica import ReplicaTier
    from repro.serving.slo import SLOController
    from repro.serving.traffic import TrafficConfig, TrafficGenerator, run_workload

    def fresh_set(num_replicas: int):
        tier = ReplicaTier(model, num_replicas=num_replicas, max_batch_size=micro_batch)
        tier.publish()
        return tier.replicas

    calibration = TrafficGenerator(
        schema,
        TrafficConfig.from_pattern(
            "zipf", duration_s=1.0, base_rate=8.0 * micro_batch, seed=seed
        ),
    ).trace()
    rows = np.concatenate(
        [r.categorical for r in calibration[: 4 * micro_batch]], axis=0
    )
    width = int(getattr(schema, "num_numerical", 0))
    numerical = np.zeros((rows.shape[0], width)) if width else None

    def calib_batch(n):
        return rows[:n], None if numerical is None else numerical[:n]

    replica = fresh_set(1).replicas[0]
    replica.serve_batch(*calib_batch(micro_batch))  # warmup
    _, t_small = replica.serve_batch(*calib_batch(micro_batch))
    _, t_large = replica.serve_batch(rows, numerical)
    per_row_s = max((t_large - t_small) / (rows.shape[0] - micro_batch), 1e-8)
    base_s = max(t_small - micro_batch * per_row_s, 1e-6)
    batch_service_s = base_s + per_row_s * micro_batch
    capacity_rps = micro_batch / batch_service_s

    throughput: dict[int, float] = {}
    saturation_rate = 3.0 * capacity_rps
    for count in (1, 2):
        config = TrafficConfig.from_pattern(
            "zipf",
            duration_s=requests / saturation_rate,
            base_rate=saturation_rate,
            seed=seed,
        )
        trace = TrafficGenerator(schema, config).trace()
        report = run_workload(
            fresh_set(count),
            trace,
            window_s=config.duration_s / 4,
            # Batching timeout on the service-time scale: the default 10 ms
            # would dwarf the whole trace at these calibrated rates.
            max_wait_s=batch_service_s,
            service_model=(base_s, per_row_s),
        )
        throughput[count] = report.throughput_rps or 1.0

    # 55% baseline utilization on 2 replicas, then a 4x flash crowd.
    burst_rate = 1.1 * capacity_rps
    burst_config = TrafficConfig.from_pattern(
        "zipf-burst",
        duration_s=requests / (1.75 * burst_rate),
        base_rate=burst_rate,
        burst_magnitude=4.0,
        diurnal_amplitude=0.0,
        straggler_fraction=0.0,
        seed=seed + 1,
    )
    target_p99_ms = 8.0 * batch_service_s * 1e3
    burst_report = run_workload(
        fresh_set(2),
        TrafficGenerator(schema, burst_config).trace(),
        window_s=burst_config.duration_s / 8,
        max_wait_s=batch_service_s,
        controller=SLOController(target_p99_ms, micro_batch=micro_batch),
        service_model=(base_s, per_row_s),
    )
    return {
        "replica_speedup_2x": throughput[2] / throughput[1],
        "burst_p99_ms": float(burst_report.overall["p99_ms"]),
    }


def measure_latency(
    model: RecommendationModel,
    train_batch: Batch,
    inference_batch: Batch,
    method_name: str,
    warmup: int = 2,
    repeats: int = 5,
    serving_micro_batch: int | None = 64,
    serve_while_train_steps: int = 12,
    schema=None,
) -> LatencyReport:
    """Time training steps, inference passes and (optionally) serving.

    ``serving_micro_batch`` enables the per-request serving measurement
    through the snapshot engine (pass ``None`` to skip it) and, with it, the
    serve-while-train measurement through the online pipeline
    (``serve_while_train_steps=0`` skips just that part).  Passing
    ``schema`` additionally measures the replicated tier (replica-count
    scaling and p99-under-burst) via :func:`measure_replicated_serving`.
    """
    trainer = Trainer(model)
    for _ in range(warmup):
        trainer.train_step(train_batch)
        model.predict_proba(inference_batch.categorical, inference_batch.numerical)

    train_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_step(train_batch)
        train_times.append(time.perf_counter() - start)

    inference_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        model.predict_proba(inference_batch.categorical, inference_batch.numerical)
        inference_times.append(time.perf_counter() - start)

    # Read the plan-cache stats before the serving replay: serving lookups
    # run through the same (copy-on-write-shared) shard objects and would
    # otherwise dilute the training-step reuse rate this column reports.
    plan_stats = trainer.embedding_plan_stats()

    serve_stats: dict[str, float | int] = {}
    swt_stats: dict[str, float | int] = {}
    replica_stats: dict[str, float] = {}
    if serving_micro_batch is not None:
        serve_stats = measure_serving_latency(model, inference_batch, serving_micro_batch)
        if serve_while_train_steps:
            swt_stats = measure_serve_while_train(
                model,
                train_batch,
                inference_batch,
                trainer=trainer,
                steps=serve_while_train_steps,
                micro_batch=serving_micro_batch,
            )
        if schema is not None:
            replica_stats = measure_replicated_serving(model, schema)

    train_latency = float(np.median(train_times))
    inference_latency = float(np.median(inference_times))
    return LatencyReport(
        method=method_name,
        train_latency_ms=train_latency * 1e3,
        inference_latency_ms=inference_latency * 1e3,
        train_throughput=len(train_batch) / train_latency,
        inference_throughput=len(inference_batch) / inference_latency,
        plan_reuse_rate=plan_stats["reuse_rate"] if plan_stats is not None else 0.0,
        serve_p50_ms=float(serve_stats.get("p50_ms", float("nan"))),
        serve_p95_ms=float(serve_stats.get("p95_ms", float("nan"))),
        serve_p99_ms=float(serve_stats.get("p99_ms", float("nan"))),
        swt_p50_ms=float(swt_stats.get("swt_p50_ms", float("nan"))),
        swt_p95_ms=float(swt_stats.get("swt_p95_ms", float("nan"))),
        publish_p50_ms=float(swt_stats.get("publish_p50_ms", float("nan"))),
        staleness_steps=int(swt_stats.get("staleness_steps", 0)),
        replica_speedup_2x=float(replica_stats.get("replica_speedup_2x", float("nan"))),
        burst_p99_ms=float(replica_stats.get("burst_p99_ms", float("nan"))),
    )


def measure_sketch_throughput(sketch, keys: np.ndarray, scores: np.ndarray, repeats: int = 3) -> dict[str, float]:
    """Insert/query throughput of a sketch in operations per second (Fig 18b)."""
    insert_times = []
    query_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        sketch.insert(keys, scores)
        insert_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        sketch.query(keys)
        query_times.append(time.perf_counter() - start)
    n = keys.size
    return {
        "insert_ops_per_s": n / float(np.median(insert_times)),
        "query_ops_per_s": n / float(np.median(query_times)),
    }

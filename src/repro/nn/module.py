"""Module base class: parameter registration, traversal, and state dicts."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Parameter


class Module:
    """Base class for neural-network components.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, mirroring the PyTorch convention so model code stays
    familiar.
    """

    def parameters(self) -> Iterator[Parameter]:
        """Yield every learnable parameter of this module and its children."""
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full_name)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full_name}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{i}", item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules, depth first."""
        yield self
        for value in vars(self).items():
            _, obj = value
            if isinstance(obj, Module):
                yield from obj.modules()
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return int(sum(p.size for p in self.parameters()))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            # Cast to the parameter's existing dtype: a model configured for
            # float32 (or float16 tables) must not be silently promoted to
            # float64 by a checkpoint restore.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

"""Optimizers for dense parameters and for sparse (row-indexed) updates.

Dense optimizers operate on autograd :class:`Parameter` objects after
``backward()``.  The embedding-compression layers manage their own storage
outside the autograd graph (they must intercept per-lookup gradients to feed
HotSketch), so this module also provides *row optimizers* that apply SGD or
Adagrad updates to selected rows of a raw NumPy matrix — the same split
between a "dense" and a "sparse" optimizer that production DLRM trainers use.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter


class Optimizer:
    """Base class for dense optimizers over autograd parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent (optionally with momentum)."""

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adagrad(Optimizer):
    """Adagrad, the optimizer the reference DLRM uses for embeddings."""

    def __init__(self, parameters: list[Parameter], lr: float, eps: float = 1e-10):
        super().__init__(parameters, lr)
        self.eps = float(eps)
        self._accumulators = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, acc in zip(self.parameters, self._accumulators):
            if param.grad is None:
                continue
            acc += param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


# --------------------------------------------------------------------------- #
# Row-wise (sparse) optimizers for embedding storages
# --------------------------------------------------------------------------- #
class RowOptimizer:
    """Applies updates to selected rows of a raw parameter matrix.

    The numeric inner loops — segment sum over duplicate rows, then the
    optimizer scatter — are delegated to a
    :class:`~repro.kernels.KernelBackend`, so the same optimizer runs on the
    pure-numpy reference kernels or an accelerated backend unchanged.
    """

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def update(
        self, table: np.ndarray, rows: np.ndarray, grads: np.ndarray, kernels=None
    ) -> None:
        """Apply the update ``table[rows] -= f(grads)`` in place.

        ``rows`` may contain duplicates; gradients for duplicate rows are
        summed before the update (scatter-add semantics, batch order within
        each row).  This is the unfused entry point: it builds the scatter
        from scratch.  Callers that already hold a
        :class:`~repro.embeddings.plan.ScatterPlan` should segment-sum and
        call :meth:`fused_apply` directly instead.
        """
        from repro.embeddings.plan import ScatterPlan

        if kernels is None:
            from repro.kernels import get_kernel_backend

            kernels = get_kernel_backend()
        scatter = ScatterPlan.from_rows(np.asarray(rows, dtype=np.int64))
        summed = kernels.segment_sum(grads, scatter.perm, scatter.starts)
        self.fused_apply(table, scatter.rows, summed, kernels)

    def fused_apply(
        self, table: np.ndarray, rows: np.ndarray, summed: np.ndarray, kernels
    ) -> None:
        """Apply pre-summed per-row gradients to unique ``rows`` in place.

        This is the fused hot-path entry point: the caller has already
        collapsed duplicate rows with a kernel segment sum, so the only work
        left is one optimizer scatter (plus per-row state, updated in the
        same kernel pass).
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def reset_rows(self, rows: np.ndarray) -> None:
        """Clear any per-row state (used when an embedding row is recycled)."""

    def shared_buffers(self, table: np.ndarray) -> dict[str, np.ndarray]:
        """Per-row state arrays eligible to live in shared memory.

        Called by the process shard runtime so optimizer state rides in the
        same shared segment as the table.  Stateless optimizers return ``{}``;
        stateful ones must materialize their state for ``table`` first so the
        returned arrays are the live ones.
        """
        return {}

    def adopt_shared_buffers(self, buffers: dict[str, np.ndarray]) -> None:
        """Re-point per-row state at externally managed arrays (same keys as
        :meth:`shared_buffers`)."""
        if buffers:  # pragma: no cover - defensive: stateless base has no state
            raise NotImplementedError(
                f"{type(self).__name__} has no shared buffers to adopt: {sorted(buffers)}"
            )

    @staticmethod
    def _deduplicate(rows: np.ndarray, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        unique_rows, inverse = np.unique(rows, return_inverse=True)
        summed = np.zeros((unique_rows.size, grads.shape[1]), dtype=grads.dtype)
        np.add.at(summed, inverse, grads)
        return unique_rows, summed


class RowSGD(RowOptimizer):
    """Sparse SGD over embedding rows."""

    def fused_apply(
        self, table: np.ndarray, rows: np.ndarray, summed: np.ndarray, kernels
    ) -> None:
        kernels.fused_scatter_apply(table, rows, summed, self.lr)


class RowAdagrad(RowOptimizer):
    """Sparse Adagrad over embedding rows (row-wise accumulator).

    The accumulator is lazily sized to the table the first time ``update`` is
    called, and tracks one scalar per row (row-wise Adagrad), which is the
    standard memory-frugal variant used for huge embedding tables.
    """

    def __init__(self, lr: float, eps: float = 1e-10):
        super().__init__(lr)
        self.eps = float(eps)
        self._accumulator: np.ndarray | None = None

    def _ensure_state(self, table: np.ndarray) -> None:
        # The accumulator matches the table dtype so a float32 table keeps
        # its whole optimizer state in single precision too.
        if self._accumulator is None or self._accumulator.shape[0] != table.shape[0]:
            self._accumulator = np.zeros(table.shape[0], dtype=table.dtype)

    def fused_apply(
        self, table: np.ndarray, rows: np.ndarray, summed: np.ndarray, kernels
    ) -> None:
        self._ensure_state(table)
        kernels.fused_scatter_apply(
            table, rows, summed, self.lr, accumulator=self._accumulator, eps=self.eps
        )

    def reset_rows(self, rows: np.ndarray) -> None:
        if self._accumulator is not None:
            self._accumulator[np.asarray(rows, dtype=np.int64)] = 0.0

    def shared_buffers(self, table: np.ndarray) -> dict[str, np.ndarray]:
        self._ensure_state(table)
        assert self._accumulator is not None
        return {"accumulator": self._accumulator}

    def adopt_shared_buffers(self, buffers: dict[str, np.ndarray]) -> None:
        self._accumulator = buffers["accumulator"]


def make_row_optimizer(name: str, lr: float) -> RowOptimizer:
    """Factory used by configuration code: ``"sgd"`` or ``"adagrad"``."""
    lowered = name.lower()
    if lowered == "sgd":
        return RowSGD(lr)
    if lowered == "adagrad":
        return RowAdagrad(lr)
    raise ValueError(f"unknown row optimizer '{name}' (expected 'sgd' or 'adagrad')")

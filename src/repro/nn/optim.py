"""Optimizers for dense parameters and for sparse (row-indexed) updates.

Dense optimizers operate on autograd :class:`Parameter` objects after
``backward()``.  The embedding-compression layers manage their own storage
outside the autograd graph (they must intercept per-lookup gradients to feed
HotSketch), so this module also provides *row optimizers* that apply SGD or
Adagrad updates to selected rows of a raw NumPy matrix — the same split
between a "dense" and a "sparse" optimizer that production DLRM trainers use.
"""

from __future__ import annotations

import re

import numpy as np

from repro.nn.tensor import Parameter


class Optimizer:
    """Base class for dense optimizers over autograd parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent (optionally with momentum)."""

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adagrad(Optimizer):
    """Adagrad, the optimizer the reference DLRM uses for embeddings."""

    def __init__(self, parameters: list[Parameter], lr: float, eps: float = 1e-10):
        super().__init__(parameters, lr)
        self.eps = float(eps)
        self._accumulators = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, acc in zip(self.parameters, self._accumulators):
            if param.grad is None:
                continue
            acc += param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


# --------------------------------------------------------------------------- #
# Row-wise (sparse) optimizers for embedding storages
# --------------------------------------------------------------------------- #
class RowOptimizer:
    """Applies updates to selected rows of a raw parameter matrix.

    The numeric inner loops — segment sum over duplicate rows, then the
    optimizer scatter — are delegated to a
    :class:`~repro.kernels.KernelBackend`, so the same optimizer runs on the
    pure-numpy reference kernels or an accelerated backend unchanged.
    """

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def update(
        self, table: np.ndarray, rows: np.ndarray, grads: np.ndarray, kernels=None
    ) -> None:
        """Apply the update ``table[rows] -= f(grads)`` in place.

        ``rows`` may contain duplicates; gradients for duplicate rows are
        summed before the update (scatter-add semantics, batch order within
        each row).  This is the unfused entry point: it builds the scatter
        from scratch.  Callers that already hold a
        :class:`~repro.embeddings.plan.ScatterPlan` should segment-sum and
        call :meth:`fused_apply` directly instead.
        """
        from repro.embeddings.plan import ScatterPlan

        if kernels is None:
            from repro.kernels import get_kernel_backend

            kernels = get_kernel_backend()
        scatter = ScatterPlan.from_rows(np.asarray(rows, dtype=np.int64))
        summed = kernels.segment_sum(grads, scatter.perm, scatter.starts)
        self.fused_apply(table, scatter.rows, summed, kernels)

    def fused_apply(
        self, table: np.ndarray, rows: np.ndarray, summed: np.ndarray, kernels
    ) -> None:
        """Apply pre-summed per-row gradients to unique ``rows`` in place.

        This is the fused hot-path entry point: the caller has already
        collapsed duplicate rows with a kernel segment sum, so the only work
        left is one optimizer scatter (plus per-row state, updated in the
        same kernel pass).
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def reset_rows(self, rows: np.ndarray) -> None:
        """Clear any per-row state (used when an embedding row is recycled)."""

    def shared_buffers(self, table: np.ndarray) -> dict[str, np.ndarray]:
        """Per-row state arrays eligible to live in shared memory.

        Called by the process shard runtime so optimizer state rides in the
        same shared segment as the table.  Stateless optimizers return ``{}``;
        stateful ones must materialize their state for ``table`` first so the
        returned arrays are the live ones.
        """
        return {}

    def adopt_shared_buffers(self, buffers: dict[str, np.ndarray]) -> None:
        """Re-point per-row state at externally managed arrays (same keys as
        :meth:`shared_buffers`)."""
        if buffers:  # pragma: no cover - defensive: stateless base has no state
            raise NotImplementedError(
                f"{type(self).__name__} has no shared buffers to adopt: {sorted(buffers)}"
            )

    def memory_floats(self) -> int:
        """Per-row state scalars currently held (0 for stateless optimizers)."""
        return 0

    def state_dict(self) -> dict[str, np.ndarray]:
        """Per-row state arrays for checkpointing (``{}`` when stateless or
        not yet materialized)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` arrays.  Copies in place when the live
        arrays match in shape (they may be shared-memory views)."""
        if state:  # pragma: no cover - defensive: stateless base has no state
            raise NotImplementedError(
                f"{type(self).__name__} has no optimizer state to load: {sorted(state)}"
            )

    @staticmethod
    def _deduplicate(rows: np.ndarray, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        unique_rows, inverse = np.unique(rows, return_inverse=True)
        summed = np.zeros((unique_rows.size, grads.shape[1]), dtype=grads.dtype)
        np.add.at(summed, inverse, grads)
        return unique_rows, summed


class RowSGD(RowOptimizer):
    """Sparse SGD over embedding rows."""

    def fused_apply(
        self, table: np.ndarray, rows: np.ndarray, summed: np.ndarray, kernels
    ) -> None:
        kernels.fused_scatter_apply(table, rows, summed, self.lr)


class RowAdagrad(RowOptimizer):
    """Sparse Adagrad over embedding rows (row-wise accumulator).

    The accumulator is lazily sized to the table the first time ``update`` is
    called, and tracks one scalar per row (row-wise Adagrad), which is the
    standard memory-frugal variant used for huge embedding tables.
    """

    def __init__(self, lr: float, eps: float = 1e-10):
        super().__init__(lr)
        self.eps = float(eps)
        self._accumulator: np.ndarray | None = None

    def _ensure_state(self, table: np.ndarray) -> None:
        # The accumulator matches the table dtype so a float32 table keeps
        # its whole optimizer state in single precision too.
        if self._accumulator is None or self._accumulator.shape[0] != table.shape[0]:
            self._accumulator = np.zeros(table.shape[0], dtype=table.dtype)

    def fused_apply(
        self, table: np.ndarray, rows: np.ndarray, summed: np.ndarray, kernels
    ) -> None:
        self._ensure_state(table)
        kernels.fused_scatter_apply(
            table, rows, summed, self.lr, accumulator=self._accumulator, eps=self.eps
        )

    def reset_rows(self, rows: np.ndarray) -> None:
        if self._accumulator is not None:
            self._accumulator[np.asarray(rows, dtype=np.int64)] = 0.0

    def shared_buffers(self, table: np.ndarray) -> dict[str, np.ndarray]:
        self._ensure_state(table)
        assert self._accumulator is not None
        return {"accumulator": self._accumulator}

    def adopt_shared_buffers(self, buffers: dict[str, np.ndarray]) -> None:
        self._accumulator = buffers["accumulator"]

    def memory_floats(self) -> int:
        return 0 if self._accumulator is None else int(self._accumulator.shape[0])

    def state_dict(self) -> dict[str, np.ndarray]:
        if self._accumulator is None:
            return {}
        return {"accumulator": self._accumulator.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "accumulator" not in state:
            return  # old checkpoints carry no optimizer state
        incoming = np.asarray(state["accumulator"])
        if self._accumulator is not None and self._accumulator.shape == incoming.shape:
            self._accumulator[:] = incoming  # in place: may be a shm view
        else:
            self._accumulator = incoming.copy()


class SketchedRowAdagrad(RowOptimizer):
    """Row-wise Adagrad whose accumulator lives in a count-min sketch.

    Exact row-wise Adagrad keeps one accumulator scalar per table row —
    state that scales 1:1 with the table and defeats part of the compression
    win.  This variant bounds the state to ``frac × num_rows`` scalars total
    (``frac=0.25`` by default), split between:

    * a **count-min sketch** of the accumulated squared-gradient mass,
      keyed by row index (``depth`` rows of ``width`` counters, SplitMix64
      positions — the idiom of :class:`repro.sketch.CountMinSketch`).  The
      min-over-depth estimate is a *monotone overestimate*, so hash
      collisions can only shrink the effective learning rate of a colliding
      row — updates degrade gracefully, they never blow up; and
    * an **exact lane** for sketch-identified heavy hitters: a direct-mapped
      cache (hashed slot, stored key) holding the exact accumulator for the
      rows with the largest accumulated mass.  A newcomer evicts a resident
      only when its sketched mass exceeds the resident's exact value; the
      evictee falls back to its sketch estimate, which has kept accumulating
      the whole time (every update is always folded into the sketch).

    Both structures are fixed-size numpy arrays, so the state rides in
    shared memory next to the table exactly like the exact accumulator does
    (:meth:`shared_buffers` / :meth:`adopt_shared_buffers`) and serializes
    through :meth:`state_dict` for checkpoints.
    """

    def __init__(
        self,
        lr: float,
        eps: float = 1e-10,
        frac: float = 0.25,
        depth: int = 3,
        heavy_frac: float = 0.25,
        seed: int = 0,
    ):
        super().__init__(lr)
        if not 0.0 < frac <= 1.0:
            raise ValueError(f"frac must be in (0, 1], got {frac}")
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if not 0.0 <= heavy_frac < 1.0:
            raise ValueError(f"heavy_frac must be in [0, 1), got {heavy_frac}")
        self.eps = float(eps)
        self.frac = float(frac)
        self.depth = int(depth)
        self.heavy_frac = float(heavy_frac)
        self.seed = int(seed)
        self._counters: np.ndarray | None = None  # (depth, width) CM sketch
        self._heavy_keys: np.ndarray | None = None  # (capacity,) int64, -1 = empty
        self._heavy_vals: np.ndarray | None = None  # (capacity,) exact accumulators
        self._width = 0
        self._capacity = 0
        self._sized_rows = -1  # -1: unsized or externally sized (adopted/loaded)

    # ------------------------------------------------------------------ #
    # Sizing
    # ------------------------------------------------------------------ #
    def _ensure_state(self, table: np.ndarray) -> None:
        num_rows = int(table.shape[0])
        if self._counters is not None and (
            self._sized_rows == num_rows or self._sized_rows == -1
        ):
            return
        # Budget: frac × num_rows state scalars, split between the exact
        # lane (key + value = 2 scalars per slot) and the CM counters.
        budget = max(self.depth + 2, int(round(self.frac * num_rows)))
        capacity = max(1, int(self.heavy_frac * budget / 2)) if self.heavy_frac else 0
        width = max(1, (budget - 2 * capacity) // self.depth)
        self._width = width
        self._capacity = capacity
        self._counters = np.zeros((self.depth, width), dtype=table.dtype)
        self._heavy_keys = np.full(max(capacity, 1), -1, dtype=np.int64)
        self._heavy_vals = np.zeros(max(capacity, 1), dtype=table.dtype)
        self._sized_rows = num_rows

    def _positions(self, rows: np.ndarray) -> np.ndarray:
        from repro.utils.hashing import hash_to_range

        return np.stack(
            [hash_to_range(rows, self._width, seed=self.seed + r) for r in range(self.depth)],
            axis=0,
        )

    def _estimate(self, rows: np.ndarray) -> np.ndarray:
        """Count-min (min over depth) accumulator estimate for ``rows``."""
        assert self._counters is not None
        positions = self._positions(rows)
        stacked = np.stack(
            [self._counters[r, positions[r]] for r in range(self.depth)], axis=0
        )
        return stacked.min(axis=0)

    # ------------------------------------------------------------------ #
    # The fused update
    # ------------------------------------------------------------------ #
    def fused_apply(
        self, table: np.ndarray, rows: np.ndarray, summed: np.ndarray, kernels
    ) -> None:
        from repro.utils.hashing import hash_to_range

        self._ensure_state(table)
        assert self._counters is not None
        assert self._heavy_keys is not None and self._heavy_vals is not None
        if rows.shape[0] == 0:
            return
        rows = np.asarray(rows, dtype=np.int64)
        g2 = (summed**2).mean(axis=1)

        # Prior accumulator: exact for lane residents, sketched otherwise.
        estimate = self._estimate(rows)
        if self._capacity:
            slots = hash_to_range(rows, self._capacity, seed=self.seed + 777)
            hits = self._heavy_keys[slots] == rows
            prior = np.where(hits, self._heavy_vals[slots], estimate)
        else:
            slots = np.zeros(rows.shape[0], dtype=np.int64)
            hits = np.zeros(rows.shape[0], dtype=bool)
            prior = estimate
        new_acc = prior + g2

        # Every update folds into the sketch, including lane residents', so
        # an evicted row falls back to an estimate that never stopped
        # accumulating.
        positions = self._positions(rows)
        for r in range(self.depth):
            np.add.at(self._counters[r], positions[r], g2)

        if self._capacity:
            self._heavy_vals[slots[hits]] = new_acc[hits]
            misses = ~hits
            if misses.any():
                # One admission candidate per slot (largest mass, ties to the
                # earlier row — deterministic across executors).
                cand = np.flatnonzero(misses)
                order = np.lexsort((cand, -new_acc[cand]))
                cand = cand[order]
                keep = np.unique(slots[cand], return_index=True)[1]
                cand = cand[keep]
                resident = self._heavy_keys[slots[cand]]
                admit = (resident < 0) | (new_acc[cand] > self._heavy_vals[slots[cand]])
                winners = cand[admit]
                self._heavy_keys[slots[winners]] = rows[winners]
                self._heavy_vals[slots[winners]] = new_acc[winners]

        scale = (self.lr / (np.sqrt(new_acc) + self.eps)).astype(summed.dtype)
        # Rows are unique, so the pre-scaled scatter runs through the same
        # kernel primitive the exact optimizers use (lr folded into scale).
        kernels.fused_scatter_apply(table, rows, scale[:, None] * summed, 1.0)

    def reset_rows(self, rows: np.ndarray) -> None:
        """Evict recycled rows from the exact lane.

        The sketch is additive and cannot forget a single key; a recycled
        row index inherits residual sketch mass (a smaller initial learning
        rate) until decay-by-dilution washes it out — the documented
        approximation of this optimizer.
        """
        if self._heavy_keys is None or not self._capacity:
            return
        from repro.utils.hashing import hash_to_range

        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size == 0:
            return
        slots = hash_to_range(rows, self._capacity, seed=self.seed + 777)
        evict = self._heavy_keys[slots] == rows
        self._heavy_keys[slots[evict]] = -1
        self._heavy_vals[slots[evict]] = 0.0

    # ------------------------------------------------------------------ #
    # Shared memory / checkpoint / accounting
    # ------------------------------------------------------------------ #
    def shared_buffers(self, table: np.ndarray) -> dict[str, np.ndarray]:
        self._ensure_state(table)
        assert self._counters is not None
        assert self._heavy_keys is not None and self._heavy_vals is not None
        return {
            "sketch_counters": self._counters,
            "heavy_keys": self._heavy_keys,
            "heavy_vals": self._heavy_vals,
        }

    def adopt_shared_buffers(self, buffers: dict[str, np.ndarray]) -> None:
        self._counters = buffers["sketch_counters"]
        self._heavy_keys = buffers["heavy_keys"]
        self._heavy_vals = buffers["heavy_vals"]
        self._width = int(self._counters.shape[1])
        self._capacity = int(self._heavy_keys.shape[0]) if self.heavy_frac else 0
        self._sized_rows = -1  # externally sized: trust the adopted arrays

    def memory_floats(self) -> int:
        """State scalars held: CM counters plus 2 per exact-lane slot."""
        if self._counters is None:
            return 0
        return int(self._counters.size + 2 * self._capacity)

    def state_dict(self) -> dict[str, np.ndarray]:
        if self._counters is None:
            return {}
        assert self._heavy_keys is not None and self._heavy_vals is not None
        return {
            "sketch_counters": self._counters.copy(),
            "heavy_keys": self._heavy_keys.copy(),
            "heavy_vals": self._heavy_vals.copy(),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "sketch_counters" not in state:
            return  # old checkpoints carry no optimizer state
        for name, attr in (
            ("sketch_counters", "_counters"),
            ("heavy_keys", "_heavy_keys"),
            ("heavy_vals", "_heavy_vals"),
        ):
            incoming = np.asarray(state[name])
            live = getattr(self, attr)
            if live is not None and live.shape == incoming.shape:
                live[:] = incoming  # in place: may be a shm view
            else:
                setattr(self, attr, incoming.copy())
        assert self._counters is not None and self._heavy_keys is not None
        self._width = int(self._counters.shape[1])
        self._capacity = int(self._heavy_keys.shape[0]) if self.heavy_frac else 0
        self._sized_rows = -1  # externally sized: trust the restored arrays


_OPTIMIZER_SPEC = re.compile(r"^(?P<name>[a-z_]+)(?:\[(?P<options>[^\]]*)\])?$")

#: Option grammar per optimizer name: option -> (parser, validator hint).
_SKETCHED_OPTIONS = ("frac", "depth", "heavy_frac", "seed")


def parse_row_optimizer_spec(spec: str) -> tuple[str, dict[str, float]]:
    """Split ``"name[key=value,...]"`` into ``(name, options)``.

    The grammar mirrors the store spec strings (``"hash[cr=8]"``): a bare
    name, or a name followed by comma-separated ``key=value`` options in
    brackets.  Raises :class:`ValueError` for malformed specs; option *names*
    are validated by :func:`make_row_optimizer` per optimizer.
    """
    match = _OPTIMIZER_SPEC.match(spec.strip().lower())
    if match is None:
        raise ValueError(
            f"malformed row-optimizer spec '{spec}' (expected \"name\" or "
            f"\"name[key=value,...]\", e.g. \"sketched_adagrad[frac=0.25]\")"
        )
    options: dict[str, float] = {}
    raw = match.group("options")
    if raw:
        for item in raw.split(","):
            if "=" not in item:
                raise ValueError(
                    f"malformed option '{item}' in row-optimizer spec '{spec}'"
                )
            key, value = item.split("=", 1)
            try:
                options[key.strip()] = float(value)
            except ValueError as exc:
                raise ValueError(
                    f"non-numeric value for option '{key.strip()}' in "
                    f"row-optimizer spec '{spec}'"
                ) from exc
    return match.group("name"), options


def make_row_optimizer(name: str, lr: float) -> RowOptimizer:
    """Factory used by configuration code.

    Accepts ``"sgd"``, ``"adagrad"``, and ``"sketched_adagrad"`` — the last
    with optional bracket options, e.g. ``"sketched_adagrad[frac=0.25]"``
    (also ``depth``, ``heavy_frac``, ``seed``).
    """
    base, options = parse_row_optimizer_spec(name)
    if base == "sgd":
        if options:
            raise ValueError(f"'sgd' takes no options, got {sorted(options)}")
        return RowSGD(lr)
    if base == "adagrad":
        if options:
            raise ValueError(f"'adagrad' takes no options, got {sorted(options)}")
        return RowAdagrad(lr)
    if base == "sketched_adagrad":
        unknown = sorted(set(options) - set(_SKETCHED_OPTIONS))
        if unknown:
            raise ValueError(
                f"unknown sketched_adagrad option(s) {unknown}; "
                f"expected {list(_SKETCHED_OPTIONS)}"
            )
        return SketchedRowAdagrad(
            lr,
            frac=options.get("frac", 0.25),
            depth=int(options.get("depth", 3)),
            heavy_frac=options.get("heavy_frac", 0.25),
            seed=int(options.get("seed", 0)),
        )
    raise ValueError(
        f"unknown row optimizer '{name}' "
        "(expected 'sgd', 'adagrad' or 'sketched_adagrad[frac=...]')"
    )

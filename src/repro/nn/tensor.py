"""A small reverse-mode automatic differentiation engine over NumPy arrays.

The CAFE paper builds on PyTorch; PyTorch is not available in this offline
environment, so this module provides the minimal-but-real substrate the rest
of the library needs: a ``Tensor`` holding a ``numpy.ndarray``, a dynamic
computation graph, and reverse-mode gradients for the operations used by the
DLRM / WDL / DCN models (matrix multiplication, element-wise arithmetic,
activations, reductions, concatenation, gathering rows from embedding
matrices, and the binary cross entropy loss).

The engine intentionally mirrors PyTorch's mental model (``requires_grad``,
``backward()``, ``grad``) so that the embedding-compression code reads like
the original plug-in module the paper describes.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

ArrayLike = np.ndarray | float | int | list | tuple

# Compute dtype of the autograd engine.  float64 keeps the dense-network
# gradient checks exact; set_default_dtype(np.float32) switches the whole
# graph to single precision (embedding tables manage their own storage dtype
# independently of this).
_DEFAULT_DTYPE = np.dtype(np.float64)


def set_default_dtype(dtype: np.dtype | str) -> None:
    """Set the float dtype every :class:`Tensor` coerces its data to."""
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(f"default dtype must be a float type, got {resolved}")
    _DEFAULT_DTYPE = resolved


def get_default_dtype() -> np.dtype:
    """The float dtype used by the autograd engine."""
    return _DEFAULT_DTYPE


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != _DEFAULT_DTYPE:
            return value.astype(_DEFAULT_DTYPE)
        return value
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in a dynamic autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward_fn: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: ArrayLike | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones, which is the usual convention for scalar
        losses; for non-scalar tensors an explicit upstream gradient of the
        same shape must be provided.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        order = _topological_order(self)
        self._accumulate_grad(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # ------------------------------------------------------------------ #
    # Operator overloads (thin wrappers over repro.nn.functional)
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | ArrayLike") -> "Tensor":
        from repro.nn import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: "Tensor | ArrayLike") -> "Tensor":
        from repro.nn import functional as F

        return F.sub(self, other)

    def __rsub__(self, other: "Tensor | ArrayLike") -> "Tensor":
        from repro.nn import functional as F

        return F.sub(other, self)

    def __mul__(self, other: "Tensor | ArrayLike") -> "Tensor":
        from repro.nn import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        from repro.nn import functional as F

        return F.mul(self, -1.0)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.nn import functional as F

        return F.matmul(self, other)

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.nn import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.nn import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.nn import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def relu(self) -> "Tensor":
        from repro.nn import functional as F

        return F.relu(self)

    def sigmoid(self) -> "Tensor":
        from repro.nn import functional as F

        return F.sigmoid(self)


def ensure_tensor(value: "Tensor | ArrayLike") -> Tensor:
    """Coerce ``value`` into a non-differentiable :class:`Tensor` if needed."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in topological order."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


class Parameter(Tensor):
    """A tensor that is a learnable model parameter (always requires grad)."""

    __slots__ = ()

    def __init__(self, data: ArrayLike, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


def stack_parameters(parameters: Iterable[Parameter]) -> int:
    """Total number of scalar parameters in ``parameters``."""
    return int(sum(p.size for p in parameters))

"""Dense layers: Linear and MLP stacks used by the recommendation models."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.init import kaiming_uniform
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import SeedLike, make_rng


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: SeedLike = None):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        generator = make_rng(rng)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(kaiming_uniform((in_features, out_features), generator), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.add(F.matmul(x, self.weight), self.bias)


class MLP(Module):
    """A stack of Linear layers with ReLU activations between them.

    ``sigmoid_output=True`` applies a sigmoid to the final layer, which the
    reference DLRM uses for its top MLP when producing probabilities; in this
    library the models return raw logits and apply the loss' own sigmoid, so
    the flag exists mainly for API parity and custom use.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        rng: SeedLike = None,
        sigmoid_output: bool = False,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        generator = make_rng(rng)
        self.layer_sizes = list(int(s) for s in layer_sizes)
        self.sigmoid_output = bool(sigmoid_output)
        self.layers = [
            Linear(self.layer_sizes[i], self.layer_sizes[i + 1], rng=generator)
            for i in range(len(self.layer_sizes) - 1)
        ]

    def forward(self, x: Tensor) -> Tensor:
        out = x
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            out = layer(out)
            if i < last:
                out = F.relu(out)
        if self.sigmoid_output:
            out = F.sigmoid(out)
        return out

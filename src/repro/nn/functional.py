"""Differentiable operations over :class:`repro.nn.tensor.Tensor`.

Each function builds the forward result eagerly and registers a closure that
propagates gradients to its inputs.  Only the operations required by the
recommendation models and losses in this library are implemented; they are
all exercised by gradient-checking tests in ``tests/nn``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import ArrayLike, Tensor, _unbroadcast, ensure_tensor


def _make(data: np.ndarray, parents: tuple[Tensor, ...], backward_fn) -> Tensor:
    requires_grad = any(p.requires_grad for p in parents)
    return Tensor(
        data,
        requires_grad=requires_grad,
        parents=tuple(p for p in parents if p.requires_grad),
        backward_fn=backward_fn if requires_grad else None,
    )


# --------------------------------------------------------------------------- #
# Element-wise arithmetic
# --------------------------------------------------------------------------- #
def add(a: Tensor | ArrayLike, b: Tensor | ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate_grad(_unbroadcast(grad, b.shape))

    return _make(out_data, (a, b), backward)


def sub(a: Tensor | ArrayLike, b: Tensor | ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate_grad(_unbroadcast(-grad, b.shape))

    return _make(out_data, (a, b), backward)


def mul(a: Tensor | ArrayLike, b: Tensor | ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate_grad(_unbroadcast(grad * a.data, b.shape))

    return _make(out_data, (a, b), backward)


# --------------------------------------------------------------------------- #
# Linear algebra
# --------------------------------------------------------------------------- #
def matmul(a: Tensor, b: Tensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            grad_a = grad @ np.swapaxes(b.data, -1, -2)
            a._accumulate_grad(_unbroadcast(grad_a, a.shape))
        if b.requires_grad:
            grad_b = np.swapaxes(a.data, -1, -2) @ grad
            b._accumulate_grad(_unbroadcast(grad_b, b.shape))

    return _make(out_data, (a, b), backward)


def batched_outer_interaction(x: Tensor) -> Tensor:
    """Pairwise dot products between field embeddings (DLRM interaction).

    ``x`` has shape ``(batch, fields, dim)``; the result contains, for every
    sample, the strictly-lower-triangular entries of ``x @ x^T`` flattened to
    shape ``(batch, fields * (fields - 1) / 2)``.
    """
    x = ensure_tensor(x)
    batch, fields, _ = x.shape
    gram = x.data @ np.swapaxes(x.data, 1, 2)  # (batch, fields, fields)
    rows, cols = np.tril_indices(fields, k=-1)
    out_data = gram[:, rows, cols]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_gram = np.zeros((batch, fields, fields))
        grad_gram[:, rows, cols] = grad
        # d(x_i . x_j)/dx = contribution to both rows i and j.
        grad_x = grad_gram @ x.data + np.swapaxes(grad_gram, 1, 2) @ x.data
        x._accumulate_grad(grad_x)

    return _make(out_data, (x,), backward)


# --------------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------------- #
def reshape(x: Tensor, shape: tuple[int, ...]) -> Tensor:
    x = ensure_tensor(x)
    out_data = x.data.reshape(shape)
    original_shape = x.shape

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(grad.reshape(original_shape))

    return _make(out_data, (x,), backward)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, boundaries, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate_grad(piece)

    return _make(out_data, tuple(tensors), backward)


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #
def sum(x: Tensor, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> Tensor:  # shadows the builtin on purpose: mirrors np.sum in the functional namespace
    x = ensure_tensor(x)
    out_data = x.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        x._accumulate_grad(np.broadcast_to(g, x.shape).copy())

    return _make(out_data, (x,), backward)


def mean(x: Tensor, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> Tensor:
    x = ensure_tensor(x)
    out_data = x.data.mean(axis=axis, keepdims=keepdims)
    denom = x.data.size / out_data.size

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        x._accumulate_grad(np.broadcast_to(g, x.shape).copy() / denom)

    return _make(out_data, (x,), backward)


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    x = ensure_tensor(x)
    mask = x.data > 0
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(grad * mask)

    return _make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    x = ensure_tensor(x)
    out_data = _stable_sigmoid(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(grad * out_data * (1.0 - out_data))

    return _make(out_data, (x,), backward)


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


# --------------------------------------------------------------------------- #
# Embedding gather
# --------------------------------------------------------------------------- #
def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``indices`` from 2-D ``table``; gradient scatters back.

    ``indices`` may have any shape; the output has shape
    ``indices.shape + (table.shape[1],)``.  The backward pass accumulates with
    ``np.add.at`` so repeated indices within a batch sum their gradients, the
    same semantics as a sparse embedding lookup in PyTorch.
    """
    table = ensure_tensor(table)
    idx = np.asarray(indices, dtype=np.int64)
    out_data = table.data[idx]

    def backward(grad: np.ndarray) -> None:
        if not table.requires_grad:
            return
        grad_table = np.zeros_like(table.data)
        np.add.at(grad_table, idx.reshape(-1), grad.reshape(-1, table.data.shape[1]))
        table._accumulate_grad(grad_table)

    return _make(out_data, (table,), backward)


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross entropy computed from raw logits (numerically stable).

    Uses the identity ``BCE(z, y) = max(z, 0) - z*y + log(1 + exp(-|z|))`` and
    the gradient ``sigmoid(z) - y``, matching
    ``torch.nn.BCEWithLogitsLoss(reduction="mean")``.
    """
    logits = ensure_tensor(logits)
    y = np.asarray(targets, dtype=np.float64).reshape(logits.shape)
    z = logits.data
    losses = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    out_data = np.asarray(losses.mean())
    count = z.size

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            grad_logits = (_stable_sigmoid(z) - y) / count
            logits._accumulate_grad(grad * grad_logits)

    return _make(out_data, (logits,), backward)

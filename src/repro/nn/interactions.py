"""Feature-interaction layers used by DLRM, WDL and DCN.

The three models in the paper (Section 5.1.1) differ only in how they combine
field embeddings with the dense features:

* DLRM performs pairwise dot products between embeddings (``DotInteraction``),
* DCN multiplies embeddings with learned projections producing element-level
  cross terms (``CrossNetwork``),
* WDL feeds the concatenated embeddings to a wide (single linear) part and a
  deep MLP and sums the two predictions (handled in ``repro.models.wdl``).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import SeedLike, make_rng


class DotInteraction(Module):
    """DLRM's pairwise dot-product interaction.

    Input is the per-field embedding tensor of shape ``(batch, fields, dim)``
    (optionally with the projected dense features appended as an extra "field")
    and the output is the flattened strictly-lower-triangular part of the
    per-sample Gram matrix, shape ``(batch, fields*(fields-1)/2)``.
    """

    def forward(self, embeddings: Tensor) -> Tensor:
        return F.batched_outer_interaction(embeddings)

    @staticmethod
    def output_dim(num_fields: int) -> int:
        return num_fields * (num_fields - 1) // 2


class CrossNetwork(Module):
    """DCN cross network: ``x_{l+1} = x_0 * (x_l w_l) + b_l + x_l``.

    Each layer produces element-level feature crosses of increasing degree
    while keeping the dimensionality fixed.
    """

    def __init__(self, input_dim: int, num_layers: int, rng: SeedLike = None):
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        generator = make_rng(rng)
        self.input_dim = int(input_dim)
        self.num_layers = int(num_layers)
        scale = 1.0 / np.sqrt(input_dim)
        self.weights = [
            Parameter(generator.uniform(-scale, scale, size=(input_dim, 1)), name=f"cross_w{i}")
            for i in range(num_layers)
        ]
        self.biases = [Parameter(np.zeros(input_dim), name=f"cross_b{i}") for i in range(num_layers)]

    def forward(self, x0: Tensor) -> Tensor:
        x = x0
        for weight, bias in zip(self.weights, self.biases):
            # (batch, 1) scalar per sample = x_l . w_l
            projected = F.matmul(x, weight)
            crossed = F.mul(x0, projected)  # broadcast over the feature axis
            x = F.add(F.add(crossed, bias), x)
        return x

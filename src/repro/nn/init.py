"""Weight initializers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng


def xavier_uniform(shape: tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense layers."""
    generator = make_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """He/Kaiming uniform initialization suited to ReLU networks."""
    generator = make_rng(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return generator.uniform(-limit, limit, size=shape)


def embedding_uniform(shape: tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """DLRM-style embedding initialization: uniform in ±1/sqrt(num_rows).

    This matches the reference DLRM implementation, which scales the range by
    the table cardinality so that the expected embedding norm is independent
    of the number of rows — important when comparing compressed tables with
    very different row counts.
    """
    generator = make_rng(rng)
    num_rows = max(shape[0], 1)
    limit = 1.0 / np.sqrt(num_rows)
    return generator.uniform(-limit, limit, size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fan-in/fan-out of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]

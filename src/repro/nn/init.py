"""Weight initializers.

Every initializer accepts a ``dtype``; ``None`` keeps the RNG's native
float64, which the dense networks use.  Embedding layers pass their table
dtype (float32 by default) so storage is allocated at the target precision
from the start instead of being down-cast after a float64 materialization.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng

DTypeLike = np.dtype | str | None


def _cast(values: np.ndarray, dtype: DTypeLike) -> np.ndarray:
    if dtype is None or values.dtype == np.dtype(dtype):
        return values
    return values.astype(dtype)


def xavier_uniform(shape: tuple[int, ...], rng: SeedLike = None, dtype: DTypeLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense layers."""
    generator = make_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(generator.uniform(-limit, limit, size=shape), dtype)


def kaiming_uniform(shape: tuple[int, ...], rng: SeedLike = None, dtype: DTypeLike = None) -> np.ndarray:
    """He/Kaiming uniform initialization suited to ReLU networks."""
    generator = make_rng(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _cast(generator.uniform(-limit, limit, size=shape), dtype)


def embedding_uniform(shape: tuple[int, ...], rng: SeedLike = None, dtype: DTypeLike = None) -> np.ndarray:
    """DLRM-style embedding initialization: uniform in ±1/sqrt(num_rows).

    This matches the reference DLRM implementation, which scales the range by
    the table cardinality so that the expected embedding norm is independent
    of the number of rows — important when comparing compressed tables with
    very different row counts.
    """
    generator = make_rng(rng)
    num_rows = max(shape[0], 1)
    limit = 1.0 / np.sqrt(num_rows)
    return _cast(generator.uniform(-limit, limit, size=shape), dtype)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fan-in/fan-out of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]

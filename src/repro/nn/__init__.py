"""Minimal NumPy neural-network substrate (autograd, layers, optimizers)."""

from repro.nn import functional
from repro.nn.init import embedding_uniform, kaiming_uniform, xavier_uniform
from repro.nn.interactions import CrossNetwork, DotInteraction
from repro.nn.layers import MLP, Linear
from repro.nn.module import Module
from repro.nn.optim import (
    Adagrad,
    Adam,
    Optimizer,
    RowAdagrad,
    RowOptimizer,
    RowSGD,
    SGD,
    make_row_optimizer,
)
from repro.nn.tensor import (
    Parameter,
    Tensor,
    ensure_tensor,
    get_default_dtype,
    set_default_dtype,
)

__all__ = [
    "functional",
    "Tensor",
    "Parameter",
    "ensure_tensor",
    "Module",
    "Linear",
    "MLP",
    "DotInteraction",
    "CrossNetwork",
    "Optimizer",
    "SGD",
    "Adagrad",
    "Adam",
    "RowOptimizer",
    "RowSGD",
    "RowAdagrad",
    "make_row_optimizer",
    "xavier_uniform",
    "kaiming_uniform",
    "embedding_uniform",
    "get_default_dtype",
    "set_default_dtype",
]

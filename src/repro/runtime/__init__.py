"""Shard-parallel runtime: executors, latency simulation, online pipeline.

``repro.runtime`` holds the pieces that turn the store + serving stack into
a continuously running system:

* :mod:`repro.runtime.executor` — the :class:`ShardExecutor` interface with
  serial and thread-pool implementations, used by
  :class:`~repro.store.sharded.ShardedEmbeddingStore` to fan per-shard work
  out concurrently;
* :mod:`repro.runtime.process` — :class:`ProcessShardExecutor`, which moves
  each shard into a pinned worker process with its tables in shared memory
  (:mod:`repro.runtime.shm`) for real CPU parallelism;
* :mod:`repro.runtime.simulate` — :class:`LatencySimulatedShard`, an
  embedding wrapper that charges a per-operation stall so remote-shard
  deployments can be benchmarked in-process;
* :mod:`repro.runtime.pipeline` — :class:`OnlinePipeline`, the train→serve
  loop that publishes copy-on-write store snapshots to a live
  :class:`~repro.serving.engine.ServingEngine` on a configurable cadence.

The pipeline names are loaded lazily (PEP 562) because the pipeline pulls in
the training/serving stack, which itself imports the store package.
"""

from repro.runtime.executor import (
    EXECUTOR_KINDS,
    ExecutorStats,
    SerialShardExecutor,
    ShardExecutor,
    ThreadPoolShardExecutor,
    canonical_executor_kind,
    create_executor,
)
from repro.runtime.simulate import LatencySimulatedShard

__all__ = [
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadPoolShardExecutor",
    "ProcessShardExecutor",
    "ShardHandle",
    "ExecutorStats",
    "create_executor",
    "canonical_executor_kind",
    "EXECUTOR_KINDS",
    "LatencySimulatedShard",
    "OnlinePipeline",
    "PipelineConfig",
    "PipelineReport",
]

_PIPELINE_NAMES = ("OnlinePipeline", "PipelineConfig", "PipelineReport")
_PROCESS_NAMES = ("ProcessShardExecutor", "ShardHandle")


def __getattr__(name):
    if name in _PIPELINE_NAMES:
        from repro.runtime import pipeline

        return getattr(pipeline, name)
    if name in _PROCESS_NAMES:
        from repro.runtime import process

        return getattr(process, name)
    raise AttributeError(f"module 'repro.runtime' has no attribute '{name}'")

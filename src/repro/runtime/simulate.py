"""Latency-simulated shards for exercising the fan-out runtime.

On a single in-process core, CPU-bound NumPy shard work cannot run faster
under threads (the GIL serializes it).  What a threaded
:class:`~repro.runtime.executor.ShardExecutor` *does* buy is overlap of
per-shard stalls — the dominant cost once shards live behind an RPC, a
memory-mapped file, or any GIL-releasing kernel.  A
:class:`LatencySimulatedShard` makes that deployment shape testable on a
laptop: it delegates every store operation to a real in-memory backend but
sleeps ``stall_s`` first, emulating the round-trip to a remote shard server.

``time.sleep`` releases the GIL, so stalls on different shards genuinely
overlap under the thread-pool executor; the ``shard_parallel`` section of
``repro.bench`` uses this to measure fan-out speedup deterministically.
"""

from __future__ import annotations

import time

import numpy as np

from repro.embeddings.base import CompressedEmbedding


class LatencySimulatedShard(CompressedEmbedding):
    """Wrap an embedding backend, charging a fixed stall per operation.

    The wrapper is itself a :class:`~repro.embeddings.base.
    CompressedEmbedding`, so a :class:`~repro.store.sharded.
    ShardedEmbeddingStore` accepts it anywhere a real shard goes.  Reads and
    writes are delegated to ``inner`` after the stall; attributes the wrapper
    does not define (``sketch``, ``state_dict``, …) resolve on ``inner``.
    """

    def __init__(self, inner: CompressedEmbedding, stall_s: float = 0.001):
        if stall_s < 0:
            raise ValueError(f"stall_s must be non-negative, got {stall_s}")
        super().__init__(inner.num_features, inner.dim, dtype=inner.dtype)
        self.inner = inner
        self.stall_s = float(stall_s)
        self.stalled_calls = 0

    def _stall(self) -> None:
        self.stalled_calls += 1
        if self.stall_s:
            time.sleep(self.stall_s)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        self._stall()
        return self.inner.lookup(ids)

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        self._stall()
        self.inner.apply_gradients(ids, grads)
        self._step += 1

    def rebalance(self) -> bool:
        self._stall()
        return self.inner.rebalance()

    def memory_floats(self) -> int:
        return self.inner.memory_floats()

    def __getattr__(self, name: str):
        # Only reached for attributes not found on the wrapper itself;
        # forwards introspection (sketch, state_dict, ...).
        try:
            inner = self.__dict__["inner"]
        except KeyError:  # during __init__, before ``inner`` is bound
            raise AttributeError(name) from None
        return getattr(inner, name)

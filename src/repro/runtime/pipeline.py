"""Online train→serve pipeline: continuous training with snapshot publishing.

PR 2 left training and serving as separate scripts: train a while, snapshot
once, replay requests.  Production online learning runs both *at the same
time* — the trainer consumes the day-stream batch by batch while a live
:class:`~repro.serving.engine.ServingEngine` keeps answering requests from
the most recently published copy-on-write snapshot.  :class:`OnlinePipeline`
is that loop:

.. code-block:: text

    day-stream ──► Trainer.train_step ──► live ShardedEmbeddingStore
                        │ every `publish_every_steps`
                        ▼
               engine.refresh()  ── O(1) snapshot + frozen dense net
                        ▼
               ServingEngine ◄── probe / client requests (micro-batched)

Because publishing is copy-on-write, a publish is cheap (no table copies)
and the engine's current snapshot is never older than the configured
cadence — the pipeline records exactly that as its *staleness* metrics,
together with publish latency and serve-while-train request latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.data.stream import Batch
from repro.models.base import RecommendationModel
from repro.serving.engine import ServingEngine
from repro.serving.replica import ReplicaTier
from repro.serving.stats import LatencyTracker
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer


@dataclass(frozen=True)
class PipelineConfig:
    """Cadences and sizes of one online train→serve run.

    ``publish_every_steps`` is the snapshot cadence: after every such number
    of training steps the engine re-snapshots the store, which bounds
    snapshot staleness (in steps) by exactly this value.
    ``probe_every_steps`` optionally sends a probe request through the
    serving engine every N steps to sample serve-while-train latency
    (``0`` disables probing).
    """

    publish_every_steps: int = 20
    serving_micro_batch: int = 64
    probe_every_steps: int = 0
    probe_rows: int = 1
    max_steps: int | None = None
    #: Publish once more after the stream ends so serving finishes fresh.
    final_publish: bool = True

    def __post_init__(self):
        if self.publish_every_steps <= 0:
            raise ValueError(
                f"publish_every_steps must be positive, got {self.publish_every_steps}"
            )
        if self.probe_every_steps < 0:
            raise ValueError(
                f"probe_every_steps must be non-negative, got {self.probe_every_steps}"
            )
        if self.probe_rows <= 0:
            raise ValueError(f"probe_rows must be positive, got {self.probe_rows}")


@dataclass
class PipelineReport:
    """Metrics of one :meth:`OnlinePipeline.run`.

    Staleness is sampled after *every* training step (before any publish
    that step triggers), so ``max_staleness_steps`` is the worst gap between
    the live store and the snapshot being served at any point of the run;
    ``staleness_within_cadence`` asserts the pipeline's contract that this
    never exceeds ``publish_every_steps``.
    """

    steps: int
    cadence_steps: int
    publishes: int
    publish_latencies_s: list[float] = field(default_factory=list)
    max_staleness_steps: int = 0
    max_staleness_s: float = 0.0
    losses: list[float] = field(default_factory=list)
    elapsed_s: float = 0.0
    probe_stats: dict[str, Any] | None = None
    serving_stats: dict[str, Any] | None = None
    replica_stats: dict[str, Any] | None = None
    executor_stats: dict[str, Any] | None = None
    final_snapshot_version: int = 0
    days_seen: list[int] = field(default_factory=list)

    @property
    def staleness_within_cadence(self) -> bool:
        return self.max_staleness_steps <= self.cadence_steps

    @property
    def average_loss(self) -> float:
        return float(np.mean(self.losses)) if self.losses else float("nan")

    def publish_percentile_ms(self, percentile: float) -> float:
        if not self.publish_latencies_s:
            return float("nan")
        return float(np.percentile(np.asarray(self.publish_latencies_s), percentile) * 1e3)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (what the CLI and the bench report)."""
        return {
            "steps": self.steps,
            "steps_per_s": round(self.steps / self.elapsed_s, 2) if self.elapsed_s else 0.0,
            "avg_train_loss": round(self.average_loss, 5),
            "days_seen": self.days_seen,
            "cadence_steps": self.cadence_steps,
            "publishes": self.publishes,
            "publish_p50_ms": round(self.publish_percentile_ms(50.0), 4),
            "publish_max_ms": round(self.publish_percentile_ms(100.0), 4),
            "max_staleness_steps": self.max_staleness_steps,
            "max_staleness_ms": round(self.max_staleness_s * 1e3, 2),
            "staleness_within_cadence": self.staleness_within_cadence,
            "final_snapshot_version": self.final_snapshot_version,
            "probe": self.probe_stats,
            "serving": self.serving_stats,
            "replicas": self.replica_stats,
            "executor": self.executor_stats,
        }


class OnlinePipeline:
    """Continuously train a model while serving from fresh snapshots.

    The pipeline owns a :class:`~repro.training.trainer.Trainer` over the
    live model and a :class:`~repro.serving.engine.ServingEngine` over its
    snapshots.  Both run in the calling thread — what makes "serve while
    train" safe is the copy-on-write snapshot contract, not thread
    separation: requests served between publishes read frozen shard objects
    the trainer is guaranteed never to mutate.  The engine itself is not
    internally locked, so it must stay driven by this one thread (``run``
    calls ``refresh`` and probe ``submit``/``flush`` on it); other threads
    may read the published *snapshots* directly (``engine.snapshot.lookup``)
    at any time, which is what the concurrent-publish tests exercise.
    """

    def __init__(
        self,
        model: RecommendationModel,
        config: PipelineConfig | None = None,
        trainer: Trainer | None = None,
        trainer_config: TrainingConfig | None = None,
        engine: ServingEngine | None = None,
        tier: ReplicaTier | None = None,
    ):
        self.model = model
        self.config = config or PipelineConfig()
        self.trainer = trainer or Trainer(model, trainer_config)
        self.engine = engine or ServingEngine(
            model, max_batch_size=self.config.serving_micro_batch
        )
        #: Optional replicated serving tier: when set, every publish also
        #: ships a delta/full payload to the replicas, and probes are routed
        #: through the replica router instead of the local engine.
        self.tier = tier

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def staleness_steps(self) -> int:
        """Training steps the served snapshot lags behind the live store."""
        snapshot = self.engine.snapshot
        if snapshot is None:
            return 0
        return max(int(self.model.store.step()) - int(snapshot.step), 0)

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def publish(self) -> float:
        """Refresh the engine's snapshot now; returns publish latency in s.

        With a replica tier attached the same cadence also ships one
        versioned payload (delta or full, the publisher decides) to every
        replica; the tier records its own publish latencies separately
        because shipping materialized state is the expensive part the
        delta protocol exists to shrink.
        """
        start = time.perf_counter()
        self.engine.refresh()
        latency = time.perf_counter() - start
        if self.tier is not None:
            self.tier.publish()
        return latency

    def run(self, stream: Iterable[Batch], probe_batch: Batch | None = None) -> PipelineReport:
        """Consume ``stream``, training and publishing on the cadence.

        ``probe_batch`` supplies rows for serve-while-train probes (enabled
        by ``config.probe_every_steps``); each probe is a real request
        through the micro-batching engine against the current snapshot.
        """
        config = self.config
        probe_tracker = LatencyTracker()
        publish_latencies: list[float] = []
        losses: list[float] = []
        days: list[int] = []
        max_staleness_steps = 0
        max_staleness_s = 0.0
        steps = 0
        probes = 0
        if self.tier is not None and not self.tier.ready:
            # Bootstrap the version chain: replicas must hold a full base
            # snapshot before any delta (or probe) can reach them.
            self.tier.publish()
        last_publish = time.perf_counter()
        started = time.perf_counter()

        for batch in stream:
            losses.append(self.trainer.train_step(batch))
            steps += 1
            if not days or days[-1] != batch.day:
                days.append(batch.day)

            # Sample staleness *before* any publish this step triggers: this
            # is the worst lag a request served this step could observe.
            max_staleness_steps = max(max_staleness_steps, self.staleness_steps())
            max_staleness_s = max(max_staleness_s, time.perf_counter() - last_publish)

            if steps % config.publish_every_steps == 0:
                publish_latencies.append(self.publish())
                last_publish = time.perf_counter()

            if (
                probe_batch is not None
                and config.probe_every_steps
                and steps % config.probe_every_steps == 0
            ):
                self._probe(probe_batch, probes, probe_tracker)
                probes += 1

            if config.max_steps is not None and steps >= config.max_steps:
                break

        elapsed = time.perf_counter() - started
        if config.final_publish and self.staleness_steps():
            publish_latencies.append(self.publish())

        return PipelineReport(
            steps=steps,
            cadence_steps=config.publish_every_steps,
            publishes=len(publish_latencies),
            publish_latencies_s=publish_latencies,
            max_staleness_steps=max_staleness_steps,
            max_staleness_s=max_staleness_s,
            losses=losses,
            elapsed_s=elapsed,
            probe_stats=probe_tracker.summary() if len(probe_tracker) else None,
            serving_stats=self.engine.stats(),
            replica_stats=self.tier.stats() if self.tier is not None else None,
            executor_stats=self._executor_stats(),
            final_snapshot_version=self.engine.snapshot_version,
            days_seen=days,
        )

    def _probe(self, probe_batch: Batch, probe_index: int, tracker: LatencyTracker) -> None:
        """Send one serve-while-train request and record its latency."""
        rows = probe_batch.categorical.shape[0]
        start = (probe_index * self.config.probe_rows) % rows
        stop = min(start + self.config.probe_rows, rows)
        numerical = None
        if probe_batch.numerical.shape[1]:
            numerical = probe_batch.numerical[start:stop]
        target = self.tier if self.tier is not None else self.engine
        pending = target.submit(probe_batch.categorical[start:stop], numerical)
        target.flush()
        tracker.record(pending.latency_s)

    def _executor_stats(self) -> dict[str, Any] | None:
        executor = getattr(self.model.store, "executor", None)
        return executor.stats.as_dict() if executor is not None else None

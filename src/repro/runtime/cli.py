"""``python -m repro.pipeline`` — deprecated shim over the consolidated CLI.

The online train→serve pipeline now lives behind the declarative front door:
``python -m repro pipeline --config c.json`` (see :mod:`repro.api.cli`).
This module keeps the historical flag-based interface working by mapping its
arguments onto a :class:`~repro.api.config.SystemConfig` and running the
same :class:`~repro.api.session.Session` the new CLI runs — so both paths
produce identical reports — while :func:`main` emits a single
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import json
import warnings
from pathlib import Path

from repro.runtime.executor import EXECUTOR_KINDS, canonical_executor_kind


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.pipeline",
        description="[deprecated: use `python -m repro pipeline --config ...`] "
                    "Online train->serve pipeline over a sharded embedding store",
    )
    parser.add_argument("--dataset", default="criteo",
                        choices=["avazu", "criteo", "kdd12", "criteotb"])
    parser.add_argument("--model", default="dlrm", choices=["dlrm", "wdl", "dcn"])
    parser.add_argument("--method", default="cafe",
                        help="embedding backend for every shard (default: cafe)")
    parser.add_argument("--field-spec", default=None,
                        help="per-field table-group spec, e.g. 'full:tiny,cafe:tail' "
                             "(overrides --method/--num-shards with a TableGroupStore)")
    parser.add_argument("--num-shards", type=int, default=2,
                        help="hash-partitioned shards in the store (default: 2)")
    parser.add_argument("--executor", default="serial", type=canonical_executor_kind,
                        metavar="{" + ",".join(EXECUTOR_KINDS) + "}",
                        help="shard fan-out runtime; legacy aliases like 'thread' "
                             "canonicalize (default: serial)")
    parser.add_argument("--compression-ratio", type=float, default=10.0)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    parser.add_argument("--publish-every", type=int, default=10,
                        help="snapshot publish cadence in train steps (default: 10)")
    parser.add_argument("--probe-every", type=int, default=5,
                        help="serve-while-train probe cadence in steps; 0 disables (default: 5)")
    parser.add_argument("--micro-batch", type=int, default=64,
                        help="serving micro-batch size (default: 64)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="stop after this many train steps (default: whole stream)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this path")
    return parser


def config_from_args(args: argparse.Namespace):
    """Map the legacy flag surface onto a :class:`SystemConfig`."""
    from repro.api.config import SystemConfig

    return SystemConfig.from_dict(
        {
            "seed": args.seed,
            "data": {"dataset": args.dataset, "scale": args.scale},
            "store": {
                "spec": args.field_spec if args.field_spec is not None else args.method,
                "compression_ratio": args.compression_ratio,
                "num_shards": 1 if args.field_spec is not None else args.num_shards,
                "executor": args.executor,
            },
            "model": {"name": args.model},
            "pipeline": {
                "publish_every_steps": args.publish_every,
                "probe_every_steps": args.probe_every,
                "micro_batch": args.micro_batch,
                "max_steps": args.max_steps,
            },
        }
    )


def run_pipeline_session(args: argparse.Namespace) -> dict:
    """Build dataset/store/model via the Session, run the pipeline, return
    the legacy-shaped JSON report."""
    from repro.api.session import build

    session = build(config_from_args(args))
    report = session.run_pipeline()
    return {
        "workload": {
            "dataset": args.dataset,
            "model": args.model,
            "method": args.method,
            "field_spec": args.field_spec,
            "num_shards": args.num_shards,
            "executor": args.executor,
            "compression_ratio": args.compression_ratio,
            "scale": args.scale,
            "publish_every": args.publish_every,
            "probe_every": args.probe_every,
            "micro_batch": args.micro_batch,
            "max_steps": args.max_steps,
            "seed": args.seed,
        },
        "store": report["store"],
        "pipeline": report["pipeline"],
    }


def main(argv: list[str] | None = None) -> int:
    warnings.warn(
        "`python -m repro.pipeline` is deprecated; use "
        "`python -m repro pipeline --config path.json` (repro.api.cli)",
        DeprecationWarning,
        stacklevel=2,
    )
    args = build_parser().parse_args(argv)
    report = run_pipeline_session(args)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
        print(f"\nwrote {args.output}")
    return 0

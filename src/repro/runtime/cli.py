"""``python -m repro.pipeline`` — run the online train→serve pipeline.

Builds a synthetic dataset preset, a (possibly sharded, possibly
thread-parallel) embedding store and a model, then runs
:class:`~repro.runtime.pipeline.OnlinePipeline` over the chronological
day-stream: train continuously, publish a copy-on-write snapshot to the
serving engine every ``--publish-every`` steps, and fire serve-while-train
probe requests every ``--probe-every`` steps.  Prints a JSON report with
training throughput, publish latency, snapshot staleness and probe latency
percentiles.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.embeddings import create_embedding_store
from repro.experiments.common import build_dataset, get_scale
from repro.models import create_model
from repro.runtime.executor import EXECUTOR_KINDS, create_executor
from repro.runtime.pipeline import OnlinePipeline, PipelineConfig
from repro.training.config import TrainingConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.pipeline",
        description="Online train->serve pipeline over a sharded embedding store",
    )
    parser.add_argument("--dataset", default="criteo",
                        choices=["avazu", "criteo", "kdd12", "criteotb"])
    parser.add_argument("--model", default="dlrm", choices=["dlrm", "wdl", "dcn"])
    parser.add_argument("--method", default="cafe",
                        help="embedding backend for every shard (default: cafe)")
    parser.add_argument("--field-spec", default=None,
                        help="per-field table-group spec, e.g. 'full:tiny,cafe:tail' "
                             "(overrides --method/--num-shards with a TableGroupStore)")
    parser.add_argument("--num-shards", type=int, default=2,
                        help="hash-partitioned shards in the store (default: 2)")
    parser.add_argument("--executor", default="serial", choices=list(EXECUTOR_KINDS),
                        help="shard fan-out runtime (default: serial)")
    parser.add_argument("--compression-ratio", type=float, default=10.0)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    parser.add_argument("--publish-every", type=int, default=10,
                        help="snapshot publish cadence in train steps (default: 10)")
    parser.add_argument("--probe-every", type=int, default=5,
                        help="serve-while-train probe cadence in steps; 0 disables (default: 5)")
    parser.add_argument("--micro-batch", type=int, default=64,
                        help="serving micro-batch size (default: 64)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="stop after this many train steps (default: whole stream)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this path")
    return parser


def run_pipeline_session(args: argparse.Namespace) -> dict:
    """Build dataset/store/model, run the pipeline, return the JSON report."""
    spec = get_scale(args.scale)
    dataset = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
    schema = dataset.schema
    # One dispatch for both store kinds: a table-group spec builds a
    # heterogeneous TableGroupStore (the pipeline publishes group-wise
    # copy-on-write snapshots exactly like uniform ones), a plain method
    # name builds the uniform sharded store.
    store = create_embedding_store(
        schema,
        spec=args.field_spec if args.field_spec is not None else args.method,
        compression_ratio=args.compression_ratio,
        num_shards=1 if args.field_spec is not None else args.num_shards,
        executor=create_executor(args.executor),
        seed=args.seed,
    )
    model = create_model(
        args.model, store, num_fields=schema.num_fields, num_numerical=schema.num_numerical,
        rng=args.seed,
    )
    pipeline = OnlinePipeline(
        model,
        config=PipelineConfig(
            publish_every_steps=args.publish_every,
            serving_micro_batch=args.micro_batch,
            probe_every_steps=args.probe_every,
            max_steps=args.max_steps,
        ),
        trainer_config=TrainingConfig(batch_size=spec.batch_size, seed=args.seed),
    )
    probe_batch = dataset.test_batch(num_samples=max(args.micro_batch, 64))
    report = pipeline.run(dataset.training_stream(spec.batch_size), probe_batch=probe_batch)
    return {
        "workload": {
            "dataset": args.dataset,
            "model": args.model,
            "method": args.method,
            "field_spec": args.field_spec,
            "num_shards": args.num_shards,
            "executor": args.executor,
            "compression_ratio": args.compression_ratio,
            "scale": args.scale,
            "publish_every": args.publish_every,
            "probe_every": args.probe_every,
            "micro_batch": args.micro_batch,
            "max_steps": args.max_steps,
            "seed": args.seed,
        },
        "store": store.describe(),
        "pipeline": report.as_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    report = run_pipeline_session(args)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
        print(f"\nwrote {args.output}")
    return 0

"""Shard executors: one interface, serial and thread-pool implementations.

A :class:`ShardExecutor` runs a set of per-shard tasks — the fan-out half of
every :class:`~repro.store.sharded.ShardedEmbeddingStore` operation
(``lookup``, ``apply_gradients``, ``rebalance``, ``merged_sketch``) — and
records per-shard timing so the benchmarks can attribute time to individual
shards.

Two implementations exist behind the interface:

* :class:`SerialShardExecutor` runs the tasks in shard order on the calling
  thread.  This is the default: it adds zero overhead and keeps every store
  operation deterministic and single-threaded.
* :class:`ThreadPoolShardExecutor` runs the tasks concurrently on a thread
  pool.  Python's GIL means CPU-bound NumPy shard work does not speed up on
  a single core; the pool's win is *overlapping per-shard stalls* — the
  realistic deployment story where each shard sits behind an RPC, a disk
  read, or a GIL-releasing native kernel.  The speedup criterion in
  ``repro.bench`` is therefore measured over latency-simulated shards (see
  :class:`~repro.runtime.simulate.LatencySimulatedShard`).

Tasks submitted in one :meth:`ShardExecutor.run` call must touch *disjoint*
state (the store guarantees this: each task owns one shard object), which is
what makes the threaded execution safe without any locking in the shards.

>>> executor = SerialShardExecutor()
>>> executor.run([(0, lambda: "a"), (2, lambda: "b")])
['a', 'b']
>>> sorted(executor.stats.per_shard)
[0, 2]
>>> executor.stats.per_shard[0].calls
1
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

#: A unit of fan-out work: ``(shard_index, thunk)``.
ShardTask = tuple[int, Callable[[], Any]]


@dataclass
class ShardTiming:
    """Cumulative wall-clock accounting for one shard.

    ``worker_s`` is populated only by executors that can separate on-worker
    compute from round-trip time (the process executor); for those the IPC
    overhead per shard is ``total_s - worker_s``.
    """

    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    worker_s: float = 0.0
    worker_calls: int = 0

    def record(self, seconds: float, worker_s: float | None = None) -> None:
        self.calls += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)
        if worker_s is not None:
            self.worker_s += worker_s
            self.worker_calls += 1

    @property
    def ipc_s(self) -> float:
        """Round-trip overhead: wall time minus on-worker compute."""
        if self.worker_calls == 0:
            return 0.0
        return max(self.total_s - self.worker_s, 0.0)

    def as_dict(self) -> dict[str, float | int]:
        out: dict[str, float | int] = {
            "calls": self.calls,
            "total_ms": round(self.total_s * 1e3, 4),
            "max_ms": round(self.max_s * 1e3, 4),
        }
        if self.worker_calls:
            out["worker_ms"] = round(self.worker_s * 1e3, 4)
            out["ipc_ms"] = round(self.ipc_s * 1e3, 4)
        return out


@dataclass
class ExecutorStats:
    """Per-shard task timings plus whole-fan-out wall time.

    ``parallel_efficiency`` is the ratio of summed per-task seconds to the
    wall-clock seconds spent inside :meth:`ShardExecutor.run`: ~1.0 for a
    serial executor, > 1.0 when tasks genuinely overlapped.
    """

    per_shard: dict[int, ShardTiming] = field(default_factory=dict)
    fanouts: int = 0
    fanout_wall_s: float = 0.0
    task_s: float = 0.0
    worker_s: float = 0.0
    grad_bytes: int = 0
    grad_steps: int = 0
    grad_exchange_mode: str = ""

    def record_task(
        self, shard_index: int, seconds: float, worker_s: float | None = None
    ) -> None:
        timing = self.per_shard.setdefault(int(shard_index), ShardTiming())
        timing.record(seconds, worker_s=worker_s)
        self.task_s += seconds
        if worker_s is not None:
            self.worker_s += worker_s

    def record_fanout(self, seconds: float) -> None:
        self.fanouts += 1
        self.fanout_wall_s += seconds

    def record_grad_exchange(self, nbytes: int, mode: str) -> None:
        """Account one ``apply_gradients`` step's exchange payload.

        ``nbytes`` is the total payload crossing the trainer→shard boundary
        this step (summed over shards) — actual shm traffic for the process
        executor, the identically-sized in-process handoff otherwise, so
        dense-vs-sketched comparisons are transport-independent.
        """
        self.grad_bytes += int(nbytes)
        self.grad_steps += 1
        self.grad_exchange_mode = mode

    @property
    def grad_bytes_per_step(self) -> float:
        """Mean exchange payload bytes per ``apply_gradients`` step."""
        if self.grad_steps == 0:
            return 0.0
        return self.grad_bytes / self.grad_steps

    @property
    def parallel_efficiency(self) -> float:
        if self.fanout_wall_s <= 0.0:
            return 0.0
        return self.task_s / self.fanout_wall_s

    def reset(self) -> None:
        self.per_shard.clear()
        self.fanouts = 0
        self.fanout_wall_s = 0.0
        self.task_s = 0.0
        self.worker_s = 0.0
        self.grad_bytes = 0
        self.grad_steps = 0
        self.grad_exchange_mode = ""

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "fanouts": self.fanouts,
            "fanout_wall_ms": round(self.fanout_wall_s * 1e3, 4),
            "task_ms": round(self.task_s * 1e3, 4),
            "parallel_efficiency": round(self.parallel_efficiency, 3),
            "per_shard": {
                shard: timing.as_dict() for shard, timing in sorted(self.per_shard.items())
            },
        }
        if self.worker_s > 0.0:
            out["worker_ms"] = round(self.worker_s * 1e3, 4)
            out["ipc_overhead_ms"] = round(max(self.task_s - self.worker_s, 0.0) * 1e3, 4)
        if self.grad_steps:
            out["grad_exchange"] = {
                "mode": self.grad_exchange_mode,
                "steps": self.grad_steps,
                "bytes_total": self.grad_bytes,
                "grad_bytes_per_step": round(self.grad_bytes_per_step, 1),
            }
        return out


class ShardExecutor(abc.ABC):
    """Runs one thunk per shard and returns the results in task order.

    Implementations must preserve the order of ``tasks`` in the returned
    list, record per-shard timing into :attr:`stats`, and propagate the
    first exception a task raises.
    """

    def __init__(self):
        self.stats = ExecutorStats()
        self._lock = threading.Lock()

    @abc.abstractmethod
    def run(self, tasks: Sequence[ShardTask]) -> list[Any]:
        """Execute every ``(shard_index, thunk)`` task; results in task order."""

    def close(self) -> None:
        """Release any worker resources (no-op for serial execution)."""

    def _timed(self, shard_index: int, thunk: Callable[[], Any]) -> Any:
        start = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.record_task(shard_index, elapsed)
        return result

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialShardExecutor(ShardExecutor):
    """Run shard tasks one after another on the calling thread (default)."""

    def run(self, tasks: Sequence[ShardTask]) -> list[Any]:
        start = time.perf_counter()
        results = [self._timed(shard_index, thunk) for shard_index, thunk in tasks]
        with self._lock:
            self.stats.record_fanout(time.perf_counter() - start)
        return results

    def __deepcopy__(self, memo) -> "SerialShardExecutor":
        # Executors hold no shard state; a copied store gets a fresh one.
        return SerialShardExecutor()

    def __getstate__(self) -> dict[str, Any]:
        # Stats (and the lock) are runtime state; a store pickled into a
        # shard worker starts with a fresh serial executor.
        return {}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__()


class ThreadPoolShardExecutor(ShardExecutor):
    """Run shard tasks concurrently on a shared thread pool.

    ``max_workers=None`` (the default) sizes the pool lazily to the widest
    fan-out seen, so every shard of a store can stall concurrently.  The
    pool is created on first use and torn down by :meth:`close` (also called
    by ``with``-statement exit and the finalizer).
    """

    def __init__(self, max_workers: int | None = None):
        super().__init__()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        target = self.max_workers if self.max_workers is not None else max(width, 1)
        if self._pool is None or (self.max_workers is None and target > self._pool_width):
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(max_workers=target)
            self._pool_width = target
        return self._pool

    def run(self, tasks: Sequence[ShardTask]) -> list[Any]:
        if len(tasks) <= 1:
            # A single task gains nothing from the pool; skip the handoff.
            start = time.perf_counter()
            results = [self._timed(shard_index, thunk) for shard_index, thunk in tasks]
            with self._lock:
                self.stats.record_fanout(time.perf_counter() - start)
            return results
        pool = self._ensure_pool(len(tasks))
        start = time.perf_counter()
        futures = [pool.submit(self._timed, shard_index, thunk) for shard_index, thunk in tasks]
        results = [future.result() for future in futures]
        with self._lock:
            self.stats.record_fanout(time.perf_counter() - start)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_width = 0

    def __del__(self):  # pragma: no cover - finalizer timing is interpreter-dependent
        self.close()

    def __deepcopy__(self, memo) -> "ThreadPoolShardExecutor":
        # Never copy a live pool (deep-copied stores get their own workers).
        return ThreadPoolShardExecutor(max_workers=self.max_workers)

    def __getstate__(self) -> dict[str, Any]:
        return {"max_workers": self.max_workers}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(max_workers=state["max_workers"])


#: Canonical executor kinds accepted by :func:`create_executor`.
EXECUTOR_KINDS = ("serial", "threads", "processes")

#: Accepted aliases → canonical kind (legacy spellings keep working).
_KIND_ALIASES = {
    "serial": "serial",
    "thread": "threads",
    "threads": "threads",
    "threadpool": "threads",
    "process": "processes",
    "processes": "processes",
}


def canonical_executor_kind(kind: str) -> str:
    """Normalize an executor spelling (``thread`` → ``threads``, …).

    >>> canonical_executor_kind("threadpool")
    'threads'
    """
    canonical = _KIND_ALIASES.get(kind.lower())
    if canonical is None:
        raise ValueError(f"unknown executor kind '{kind}'; expected one of {EXECUTOR_KINDS}")
    return canonical


def create_executor(kind: str, max_workers: int | None = None) -> ShardExecutor:
    """Build a :class:`ShardExecutor` from a CLI/config spelling.

    ``kind`` is ``"serial"``, ``"threads"`` or ``"processes"`` (aliases
    ``thread``, ``threadpool`` and ``process`` are accepted); ``max_workers``
    applies to the threaded and process executors.

    >>> create_executor("serial").run([(0, lambda: 41 + 1)])
    [42]
    """
    canonical = canonical_executor_kind(kind)
    if canonical == "serial":
        return SerialShardExecutor()
    if canonical == "threads":
        return ThreadPoolShardExecutor(max_workers=max_workers)
    from repro.runtime.process import ProcessShardExecutor

    return ProcessShardExecutor(max_workers=max_workers)

"""Shared-memory plumbing for the process shard executor.

Three pieces live here, all built on :mod:`multiprocessing.shared_memory`:

* **Array packing** — :func:`pack_arrays` / :func:`attach_arrays` serialize a
  named dict of NumPy arrays into one segment with a small layout descriptor
  (name, dtype, shape, byte offset) that travels over the control pipe.
* **Arenas** — :class:`ShmArena` is a grow-on-demand scratch segment used for
  request/response payloads (feature ids, gradients, looked-up vectors).  The
  parent creates the arena; when a batch needs more room a *new* segment is
  created and the old one retired, so live views into the previous segment
  stay valid until the caller is done with them.
* **Sealed generations** — :class:`SealedGeneration` is a refcounted handle
  over a read-only snapshot segment.  Each sealed shard view retains the
  generation; when the last reference is released the mapping is closed and
  the segment unlinked (unlink-on-last-close).  The executor keeps a weak
  registry so ``close()`` can reap generations that are still alive when the
  runtime shuts down.

Resource-tracker discipline: Python's :mod:`multiprocessing.resource_tracker`
registers a segment on *create and attach* and deduplicates by name, so any
single ``unlink()`` in the parent settles the books.  The rule used
throughout this package is therefore: **workers never unlink; the parent
unlinks every segment exactly once** (arena retirement, generation release,
or executor close).
"""

from __future__ import annotations

import threading
import weakref
from multiprocessing import shared_memory
from typing import Iterator, Mapping

import numpy as np

from repro.analysis import sanitizer

#: One packed array: ``(key, dtype string, shape, byte offset)``.
ArrayLayout = list[tuple[str, str, tuple[int, ...], int]]

#: The segment handle type; the rest of the package goes through the
#: helpers below instead of importing :mod:`multiprocessing.shared_memory`
#: (this module is the one place allowed to — the lint enforces it).
Segment = shared_memory.SharedMemory

_ALIGNMENT = 64  # cache-line align every array inside a segment

# Capture the /dev/shm baseline before any segment exists (sanitize mode).
sanitizer.install_shm_audit()


def create_segment(size: int, name: str | None = None) -> Segment:
    """Create a new shared-memory segment (the only creation entry point)."""
    segment = shared_memory.SharedMemory(create=True, size=max(int(size), 1), name=name)
    if sanitizer.enabled():
        sanitizer.note_segment_created(segment.name)
    return segment


def attach_segment(name: str) -> Segment:
    """Attach to a segment the other side created."""
    return shared_memory.SharedMemory(name=name)


def unlink_segment(segment: Segment) -> None:
    """Unlink a segment, tolerating a prior unlink (parent-side cleanup)."""
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    if sanitizer.enabled():
        sanitizer.note_segment_unlinked(segment.name)


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def layout_for(arrays: Mapping[str, np.ndarray]) -> tuple[ArrayLayout, int]:
    """Compute the segment layout and total byte size for ``arrays``."""
    layout: ArrayLayout = []
    offset = 0
    for key, array in arrays.items():
        offset = _aligned(offset)
        layout.append((key, str(array.dtype), tuple(array.shape), offset))
        offset += array.nbytes
    return layout, max(offset, 1)


def write_arrays(
    buf: memoryview, layout: ArrayLayout, arrays: Mapping[str, np.ndarray]
) -> None:
    """Copy ``arrays`` into ``buf`` at the offsets recorded in ``layout``."""
    for key, dtype, shape, offset in layout:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        np.copyto(view, arrays[key], casting="no")


def attach_arrays(
    buf: memoryview, layout: ArrayLayout, writable: bool = True
) -> dict[str, np.ndarray]:
    """Return array views over ``buf`` as described by ``layout``."""
    views: dict[str, np.ndarray] = {}
    for key, dtype, shape, offset in layout:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        if not writable:
            view.setflags(write=False)
        views[key] = view
    return views


def close_segment(segment: shared_memory.SharedMemory) -> None:
    """Close a mapping, tolerating NumPy views that still export the buffer."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - depends on caller's GC timing
        pass  # a live view pins the mapping; the OS reclaims it at exit


class ShmArena:
    """A grow-on-demand scratch segment with bump-pointer allocation.

    The parent creates the arena and both sides attach by name.  ``reserve``
    hands out aligned ``(offset, view)`` slices; ``reset`` rewinds the bump
    pointer at the start of each batch.  When a reservation does not fit, a
    larger segment replaces the current one and the old segment is *retired*:
    its mapping (and the unlink, on the owner side) is deferred until
    :meth:`reclaim` so views handed out earlier in the batch stay valid.
    """

    def __init__(
        self,
        name: str | None = None,
        size: int = 1 << 20,
        create: bool = True,
        unlink_retired: bool = True,
    ):
        if create:
            self.segment = create_segment(size, name=name)
        else:
            self.segment = attach_segment(name)
        #: Only the parent side unlinks; workers just close their mappings.
        self.unlink_retired = bool(unlink_retired)
        self._cursor = 0
        self._retired: list[shared_memory.SharedMemory] = []

    @property
    def name(self) -> str:
        return self.segment.name

    @property
    def size(self) -> int:
        return self.segment.size

    def reset(self) -> None:
        self._cursor = 0

    def attach(self, name: str) -> None:
        """Switch to the (larger) segment the other side grew to."""
        if name == self.segment.name:
            return
        self._retired.append(self.segment)
        self.segment = attach_segment(name)
        self._cursor = 0

    def grow(self, minimum: int) -> str:
        """Replace the segment with one at least ``minimum`` bytes large."""
        new_size = max(self.segment.size * 2, _aligned(minimum))
        self._retired.append(self.segment)
        self.segment = create_segment(new_size)
        self._cursor = 0
        return self.segment.name

    def reserve(self, nbytes: int) -> tuple[int, memoryview] | None:
        """Allocate ``nbytes``; ``None`` when the caller must ``grow`` first."""
        start = _aligned(self._cursor)
        if start + nbytes > self.segment.size:
            return None
        self._cursor = start + nbytes
        return start, self.segment.buf[start : start + nbytes]

    def put_array(self, array: np.ndarray) -> tuple[tuple[str, tuple[int, ...], int], bool]:
        """Copy ``array`` in; returns ``((dtype, shape, offset), grew)``."""
        array = np.ascontiguousarray(array)
        grew = False
        slot = self.reserve(array.nbytes)
        if slot is None:
            self.grow(self._cursor + array.nbytes)
            grew = True
            slot = self.reserve(array.nbytes)
            assert slot is not None
        offset, _ = slot
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=self.segment.buf, offset=offset
        )
        np.copyto(view, array, casting="no")
        return (str(array.dtype), tuple(array.shape), offset), grew

    def get_array(self, spec: tuple[str, tuple[int, ...], int]) -> np.ndarray:
        """View an array previously placed by the other side."""
        dtype, shape, offset = spec
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.segment.buf, offset=offset)

    def reclaim(self) -> None:
        """Close (and unlink, when owned) every retired segment."""
        for segment in self._retired:
            close_segment(segment)
            if self.unlink_retired:
                unlink_segment(segment)
        self._retired.clear()

    def close(self, unlink: bool) -> None:
        self.reclaim()
        close_segment(self.segment)
        if unlink:
            unlink_segment(self.segment)


class SealedGeneration:
    """Refcounted read-only mapping of a sealed snapshot segment.

    The parent attaches the segment a worker sealed, hands out read-only
    array views, and retains the generation once per view owner.  The
    segment is unlinked (and the mapping closed) when the last owner
    releases it; a module-level registry lets the executor reap any
    generation still alive at shutdown.
    """

    _live: "weakref.WeakSet[SealedGeneration]" = weakref.WeakSet()
    _live_lock = threading.Lock()

    def __init__(self, name: str, layout: ArrayLayout):
        self.segment = attach_segment(name)
        self.layout = layout
        self._refs = 0
        self._lock = threading.Lock()
        self._released = False
        with SealedGeneration._live_lock:
            SealedGeneration._live.add(self)

    @property
    def name(self) -> str:
        return self.segment.name

    def views(self) -> dict[str, np.ndarray]:
        return attach_arrays(self.segment.buf, self.layout, writable=False)

    def retain(self) -> "SealedGeneration":
        with self._lock:
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            if self._refs < 0 and sanitizer.enabled():
                raise sanitizer.SanitizerViolation(
                    f"refcount underflow on sealed generation {self.segment.name!r}: "
                    f"release() called {-self._refs} more time(s) than retain(); "
                    "each sealed-view owner must release exactly once"
                )
            if self._refs > 0 or self._released:
                return
            self._released = True
        self._destroy()

    def force_release(self) -> None:
        """Unconditionally destroy (executor shutdown path)."""
        with self._lock:
            if self._released:
                return
            self._released = True
        self._destroy()

    def _destroy(self) -> None:
        close_segment(self.segment)
        unlink_segment(self.segment)
        with SealedGeneration._live_lock:
            SealedGeneration._live.discard(self)

    @classmethod
    def reap_all(cls) -> int:
        """Destroy every live generation; returns how many were reaped."""
        with cls._live_lock:
            live = list(cls._live)
        for generation in live:
            generation.force_release()
        return len(live)


def iter_live_generation_names() -> Iterator[str]:
    with SealedGeneration._live_lock:
        live = list(SealedGeneration._live)
    for generation in live:
        if not generation._released:
            yield generation.name


class GenerationLease:
    """Ties one sealed view owner (a snapshot shard) to its generation.

    Attached as an attribute on the reconstructed shard object so the
    generation lives exactly as long as the snapshot does; a finalizer
    releases the reference when the owner is garbage collected.
    """

    def __init__(self, generation: SealedGeneration):
        self.generation = generation.retain()
        self._finalizer = weakref.finalize(self, SealedGeneration.release, generation)

    def release(self) -> None:
        if self._finalizer.detach() is not None:
            self.generation.release()
        elif sanitizer.enabled():
            raise sanitizer.SanitizerViolation(
                f"double release of generation lease on {self.generation.name!r}; "
                "a lease may be released exactly once (the finalizer had already "
                "detached)"
            )

    def __deepcopy__(self, memo: dict) -> None:
        # A deep copy of a sealed view owner copies the mapped arrays into
        # private memory, so the copy must not hold (or ever release) a
        # reference to the shared segment.
        return None

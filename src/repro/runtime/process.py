"""Process-parallel shard runtime: pinned workers over shared-memory tables.

:class:`ProcessShardExecutor` runs each shard (or table group) in a worker
process so the per-shard NumPy work escapes the GIL.  The moving parts:

* **Units** — a shard backend or a whole :class:`~repro.store.table_group.
  TableGroup` is shipped to a worker once (``adopt``); the parent keeps a
  :class:`ShardHandle` proxy.  Workers are pinned round-robin over the
  parent's CPU affinity mask.
* **Batched ops** — :meth:`ProcessShardExecutor.run_ops` sends every
  request of a fan-out before collecting any reply, so one training step
  costs one round-trip per shard.  NumPy payloads travel through per-worker
  request/response arenas (:class:`~repro.runtime.shm.ShmArena`); only small
  control tuples cross the pipe.
* **Sealed generations** — each worker keeps its unit's table and optimizer
  state in a writable shared-memory generation (the backend's
  ``shared_buffers()``).  ``seal`` rotates generations: the worker copies
  the bytes into a fresh writable generation, adopts it, and hands the old
  segment to the parent, which maps it read-only under a refcounted
  :class:`~repro.runtime.shm.SealedGeneration` and grafts the views into an
  otherwise-pickled clone of the unit.  That clone is a bit-exact frozen
  shard for :class:`~repro.store.snapshot.StoreSnapshot`, with zero copies
  on the reader side.  Backends without shared buffers fall back to
  pickling the whole unit at seal time — slower, still bit-exact.
* **Lifecycle** — workers are daemonic; ``close()`` asks them to shut down,
  escalates to terminate/kill, then unlinks every segment the executor
  still owns.  A worker that dies mid-request surfaces as
  :class:`~repro.errors.ShardWorkerCrashed` instead of a hang.

Unlink discipline (see :mod:`repro.runtime.shm`): workers never unlink;
the parent unlinks every segment exactly once.
"""

from __future__ import annotations

import io
import multiprocessing as mp
import os
import pickle
import time
import weakref
from typing import Any, Sequence

import numpy as np

from repro.errors import ShardWorkerCrashed
from repro.runtime import shm as shm_lib
from repro.runtime.executor import ShardExecutor, ShardTask

_OK, _ERR = "ok", "err"

#: Ops after which the worker re-checks that its unit's live arrays still sit
#: inside the writable generation (``load_state_dict`` re-points tables).
_MUTATING_OPS = frozenset(
    {"apply_gradients", "apply_sketched_gradients", "rebalance", "load_state_dict"}
)


# --------------------------------------------------------------------------- #
# Stripped pickling: carry a unit minus its shared arrays
# --------------------------------------------------------------------------- #
class _StrippingPickler(pickle.Pickler):
    """Pickles a unit but replaces its shared arrays with layout keys."""

    def __init__(self, file: io.BytesIO, buffer_ids: dict[int, str]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._buffer_ids = buffer_ids

    def persistent_id(self, obj: Any) -> str | None:
        return self._buffer_ids.get(id(obj))


class _GraftingUnpickler(pickle.Unpickler):
    """Rebuilds a stripped unit, grafting sealed views in place of arrays."""

    def __init__(self, file: io.BytesIO, views: dict[str, np.ndarray]):
        super().__init__(file)
        self._views = views

    def persistent_load(self, pid: str) -> np.ndarray:
        return self._views[pid]


def _dump_stripped(value: Any, buffer_ids: dict[int, str]) -> bytes:
    out = io.BytesIO()
    _StrippingPickler(out, buffer_ids).dump(value)
    return out.getvalue()


def _load_grafted(data: bytes, views: dict[str, np.ndarray]) -> Any:
    return _GraftingUnpickler(io.BytesIO(data), views).load()


def _unlink_segment(name: str) -> None:
    """Attach-and-unlink a segment by name (parent-side cleanup)."""
    try:
        segment = shm_lib.attach_segment(name)
    except FileNotFoundError:
        return
    shm_lib.unlink_segment(segment)
    shm_lib.close_segment(segment)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
class _UnitHost:
    """Worker-side wrapper around one adopted unit."""

    def __init__(self, unit: Any):
        self.unit = unit
        self.gen: shm_lib.Segment | None = None
        self.gen_layout: shm_lib.ArrayLayout | None = None
        self.gen_views: dict[str, np.ndarray] = {}

    # -- specialized by subclasses ------------------------------------- #
    def _buffers(self) -> dict[str, np.ndarray]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _adopt(self, views: dict[str, np.ndarray]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def _seal_value(self) -> Any:
        raise NotImplementedError  # pragma: no cover - abstract

    def info(self) -> dict[str, Any]:
        raise NotImplementedError  # pragma: no cover - abstract

    # -- generation management ------------------------------------------ #
    def ensure_gen(self) -> tuple[str | None, str | None]:
        """(Re)build the writable generation when the unit's arrays moved.

        Returns ``(new_generation_name, retired_generation_name)`` — both
        ``None`` when the current generation still holds the live arrays.
        """
        buffers = self._buffers()
        if not buffers:
            return None, None
        if (
            self.gen is not None
            and set(buffers) == set(self.gen_views)
            and all(buffers[key] is self.gen_views[key] for key in buffers)
        ):
            return None, None
        layout, size = shm_lib.layout_for(buffers)
        segment = shm_lib.create_segment(size)
        shm_lib.write_arrays(segment.buf, layout, buffers)
        views = shm_lib.attach_arrays(segment.buf, layout, writable=True)
        self._adopt(views)
        retired = self._swap_gen(segment, layout, views)
        return segment.name, retired

    def _swap_gen(
        self,
        segment: shm_lib.Segment,
        layout: shm_lib.ArrayLayout,
        views: dict[str, np.ndarray],
    ) -> str | None:
        retired = None
        if self.gen is not None:
            retired = self.gen.name
            self.gen_views = {}
            shm_lib.close_segment(self.gen)
        self.gen, self.gen_layout, self.gen_views = segment, layout, views
        return retired

    def op_seal(self) -> tuple:
        """Seal the current generation; adopt a fresh writable copy.

        Returns either ``("pickle", bytes, synced_gen, synced_retired)`` for
        units without shared buffers, or ``("shm", sealed_name, layout,
        stripped_bytes, fresh_gen_name, synced_retired)``.
        """
        synced_name, synced_retired = self.ensure_gen()
        if self.gen is None:
            data = pickle.dumps(self._seal_value(), protocol=pickle.HIGHEST_PROTOCOL)
            return ("pickle", data, synced_name, synced_retired)
        buffer_ids = {id(array): key for key, array in self.gen_views.items()}
        stripped = _dump_stripped(self._seal_value(), buffer_ids)
        sealed_name, sealed_layout = self.gen.name, list(self.gen_layout or [])
        fresh = shm_lib.create_segment(self.gen.size)
        length = min(len(fresh.buf), len(self.gen.buf))
        fresh.buf[:length] = self.gen.buf[:length]
        views = shm_lib.attach_arrays(fresh.buf, sealed_layout, writable=True)
        self._adopt(views)
        self._swap_gen(fresh, sealed_layout, views)
        return ("shm", sealed_name, sealed_layout, stripped, fresh.name, synced_retired)

    def export(self) -> tuple[Any, str | None]:
        """Detach from shared memory and return the unit with private arrays."""
        retired = None
        if self.gen is not None:
            private = {key: np.array(view, copy=True) for key, view in self.gen_views.items()}
            self._adopt(private)
            retired = self.gen.name
            self.gen_views = {}
            shm_lib.close_segment(self.gen)
            self.gen = self.gen_layout = None
        return self.unit, retired

    def close(self) -> None:
        if self.gen is not None:
            self.gen_views = {}
            shm_lib.close_segment(self.gen)
            self.gen = None


def _instance_caps(backend: Any) -> dict[str, bool]:
    from repro.api import registry as capability_registry

    return capability_registry.instance_capabilities(backend)


class _ShardHost(_UnitHost):
    """Hosts one shard backend (any ``CompressedEmbedding``)."""

    def _buffers(self) -> dict[str, np.ndarray]:
        return self.unit.shared_buffers()

    def _adopt(self, views: dict[str, np.ndarray]) -> None:
        self.unit.adopt_shared_buffers(views)

    def _seal_value(self) -> Any:
        return self.unit

    def info(self) -> dict[str, Any]:
        unit = self.unit
        return {
            "kind": "shard",
            "class": type(unit).__name__,
            "num_features": int(unit.num_features),
            "dim": int(unit.dim),
            "dtype": str(unit.dtype),
            "caps": _instance_caps(unit),
        }

    def op_lookup(self, ids: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(self.unit.lookup(ids))

    def op_apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        self.unit.apply_gradients(ids, grads)

    def op_apply_sketched_gradients(
        self,
        ids: np.ndarray,
        heavy_index: np.ndarray,
        heavy_grads: np.ndarray,
        sketch_table: np.ndarray,
        sketch_counts: np.ndarray,
        seed: int,
    ) -> None:
        """Sketched gradient exchange: recover worker-side, then apply.

        The arena arrays are read synchronously (heavy rows exactly, tail
        rows from the sketch median) and the reconstructed dense update goes
        through the unit's ordinary ``apply_gradients`` — the same recovery
        code the in-process executors run (``apply_sketched_payload``).
        """
        from repro.store.grad_exchange import reconstruct_gradients

        ids, grads = reconstruct_gradients(
            ids, heavy_index, heavy_grads, sketch_table, sketch_counts, seed
        )
        self.unit.apply_gradients(ids, grads)

    def op_rebalance(self) -> bool:
        return bool(self.unit.rebalance())

    def op_sketch(self) -> Any:
        from repro.api import registry as capability_registry

        return capability_registry.sketch_of(self.unit)

    def op_state_dict(self) -> dict:
        return self.unit.state_dict()

    def op_load_state_dict(self, state: dict) -> None:
        self.unit.load_state_dict(state)

    def op_memory_floats(self) -> int:
        return int(self.unit.memory_floats())

    def op_describe(self) -> dict:
        info = dict(self.unit.describe())
        info["plan_reuse_rate"] = round(self.unit.plan_stats.reuse_rate, 3)
        return info

    def op_step(self) -> int:
        return int(self.unit.step())

    def op_set_kernel_backend(self, name: str) -> str | None:
        from repro.api import registry as capability_registry

        if capability_registry.supports_kernel_backend(self.unit):
            return self.unit.set_kernel_backend(name)
        return None


class _GroupHost(_UnitHost):
    """Hosts one :class:`~repro.store.table_group.TableGroup` (backend +
    projection), so the fused lookup/scatter math runs worker-side."""

    def _buffers(self) -> dict[str, np.ndarray]:
        return self.unit.backend.shared_buffers()

    def _adopt(self, views: dict[str, np.ndarray]) -> None:
        self.unit.backend.adopt_shared_buffers(views)

    def _seal_value(self) -> Any:
        projection = self.unit.projection
        return (self.unit.backend, None if projection is None else projection.copy())

    def info(self) -> dict[str, Any]:
        backend = self.unit.backend
        return {
            "kind": "group",
            "class": type(backend).__name__,
            "name": self.unit.name,
            "num_features": int(backend.num_features),
            "dim": int(backend.dim),
            "dtype": str(backend.dtype),
            "caps": _instance_caps(backend),
        }

    def op_lookup(self, local: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(self.unit.lookup_fused(local))

    def op_apply_gradients(self, local: np.ndarray, grad_slice: np.ndarray) -> None:
        self.unit.apply_fused(local, grad_slice)

    def op_rebalance(self) -> bool:
        return bool(self.unit.backend.rebalance())

    def op_sketch(self) -> Any:
        from repro.api import registry as capability_registry

        return capability_registry.sketch_of(self.unit.backend)

    def op_state_dict(self) -> dict:
        projection = self.unit.projection
        return {
            "backend": self.unit.backend.state_dict(),
            "projection": None if projection is None else projection.copy(),
        }

    def op_load_state_dict(self, payload: dict) -> None:
        if payload.get("projection") is not None:
            self.unit.projection = np.asarray(
                payload["projection"], dtype=self.unit.backend.dtype
            ).copy()
        self.unit.backend.load_state_dict(payload["backend"])

    def op_memory_floats(self) -> int:
        return int(self.unit.memory_floats())

    def op_describe(self) -> dict:
        return dict(self.unit.describe())

    def op_step(self) -> int:
        return int(self.unit.backend.step())

    def op_set_kernel_backend(self, name: str) -> str | None:
        from repro.api import registry as capability_registry

        if capability_registry.supports_kernel_backend(self.unit.backend):
            return self.unit.backend.set_kernel_backend(name)
        return None


def _safe_send(conn, payload: tuple) -> None:
    """Send a reply, degrading unpicklable exceptions to a RuntimeError."""
    try:
        conn.send(payload)
    except Exception:  # pragma: no cover - exotic unpicklable exception
        if payload and payload[0] == _ERR:
            exc = payload[1]
            try:
                conn.send((_ERR, RuntimeError(f"{type(exc).__name__}: {exc}")))
            except Exception:
                pass


def _worker_main(conn, worker_index: int, cpu_id: int | None, req_name: str, resp_name: str):
    """Entry point of one shard worker process."""
    if cpu_id is not None:
        try:
            os.sched_setaffinity(0, {cpu_id})
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            pass
    req = shm_lib.ShmArena(name=req_name, create=False, unlink_retired=False)
    resp = shm_lib.ShmArena(name=resp_name, create=False, unlink_retired=False)
    hosts: dict[int, _UnitHost] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            if op == "shutdown":
                names = [h.gen.name for h in hosts.values() if h.gen is not None]
                _safe_send(conn, ("bye", names))
                break
            try:
                if op == "ping":
                    conn.send((_OK, ("raw", "pong"), 0.0, None, None, None))
                elif op == "adopt":
                    _, unit_index, unit_kind, unit = msg
                    host = _GroupHost(unit) if unit_kind == "group" else _ShardHost(unit)
                    gen_name, _ = host.ensure_gen()
                    hosts[unit_index] = host
                    conn.send((_OK, ("raw", host.info()), 0.0, None, gen_name, None))
                elif op == "export":
                    _, unit_index = msg
                    host = hosts.pop(unit_index)
                    unit, retired = host.export()
                    conn.send((_OK, ("raw", unit), 0.0, None, None, retired))
                elif op == "call":
                    _, unit_index, method, args, reset, new_req = msg
                    if new_req is not None:
                        req.attach(new_req)
                    if reset:
                        resp.reclaim()
                        resp.reset()
                    host = hosts[unit_index]
                    decoded = [
                        req.get_array(spec) if tag == "nd" else spec for tag, spec in args
                    ]
                    started = time.perf_counter()
                    value = getattr(host, "op_" + method)(*decoded)
                    compute_s = time.perf_counter() - started
                    gen_name = retired = None
                    if method in _MUTATING_OPS:
                        gen_name, retired = host.ensure_gen()
                    grown = None
                    if isinstance(value, np.ndarray):
                        spec, grew = resp.put_array(value)
                        if grew:
                            grown = resp.name
                        encoded = ("nd", spec)
                    else:
                        encoded = ("raw", value)
                    conn.send((_OK, encoded, compute_s, grown, gen_name, retired))
                else:
                    raise ValueError(f"unknown worker op {op!r}")
            except Exception as exc:  # deliberately broad: forwarded to the parent
                _safe_send(conn, (_ERR, exc))
    finally:
        for host in hosts.values():
            host.close()
        req.close(unlink=False)
        resp.close(unlink=False)
        conn.close()


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class ShardHandle:
    """Parent-side proxy for a unit living in a worker process.

    Quacks like the shard it replaced (``lookup``, ``apply_gradients``,
    ``state_dict``, …) so unconverted store code keeps working; each method
    is one batched op round-trip.  The hot store paths bypass the handle and
    batch ops for all shards through
    :meth:`ProcessShardExecutor.run_ops` directly.
    """

    def __init__(self, executor: "ProcessShardExecutor", unit_index: int, info: dict):
        self._executor = executor
        self.unit_index = int(unit_index)
        self.info = dict(info)
        self.backend_class = info["class"]
        self.num_features = int(info["num_features"])
        self.dim = int(info["dim"])
        self.dtype = np.dtype(info["dtype"])
        #: Capabilities of the real backend, probed in the worker at adopt
        #: time (a structural probe on the proxy would always say yes).
        self.caps = dict(info["caps"])

    def _call(self, method: str, *args: Any) -> Any:
        return self._executor.call(self.unit_index, method, *args)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        # The op result is a view into the response arena, only valid until
        # the next fan-out — hand the caller a private copy.
        return np.array(self._call("lookup", np.asarray(ids)), copy=True)

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        self._call("apply_gradients", np.asarray(ids), np.asarray(grads))

    def rebalance(self) -> bool:
        return bool(self._call("rebalance"))

    def state_dict(self) -> dict:
        return self._call("state_dict")

    def load_state_dict(self, state: dict) -> None:
        self._call("load_state_dict", dict(state))

    def memory_floats(self) -> int:
        return int(self._call("memory_floats"))

    def describe(self) -> dict:
        return self._call("describe")

    def step(self) -> int:
        return int(self._call("step"))

    @property
    def sketch(self) -> Any:
        return self._call("sketch")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardHandle(unit={self.unit_index}, backend={self.backend_class}, "
            f"executor={self._executor!r})"
        )


class _WorkerLink:
    """Parent-side channel to one worker: process, pipe, and both arenas."""

    __slots__ = ("index", "proc", "conn", "req", "resp", "cpu_id")

    def __init__(self, index, proc, conn, req, resp, cpu_id):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.req = req
        self.resp = resp
        self.cpu_id = cpu_id


class ProcessShardExecutor(ShardExecutor):
    """Fan shard work out to pinned worker processes over shared memory.

    Unlike the in-process executors this one *owns* the shard state: a store
    hands its shards over via :meth:`adopt_units` (getting
    :class:`ShardHandle` proxies back) and reclaims them with
    :meth:`release_units`.  Hot paths batch one op per shard through
    :meth:`run_ops`; the generic thunk interface :meth:`run` still works by
    running thunks serially over the proxies (each proxy call is its own
    round-trip — converted callers should prefer ``run_ops``).

    ``start_method`` defaults to ``fork`` where available (no re-import cost,
    instant adoption of warm pages); ``spawn`` is selectable for
    fork-hostile embedders.  ``max_workers`` caps the worker count; units
    are assigned round-robin when there are more units than workers.
    """

    is_process_executor = True

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        pin_cpus: bool = True,
        reply_timeout_s: float = 120.0,
        arena_bytes: int = 1 << 20,
    ):
        super().__init__()
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        methods = mp.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        elif start_method not in methods:
            raise ValueError(
                f"start method '{start_method}' not available; choose from {methods}"
            )
        self.max_workers = max_workers
        self.start_method = start_method
        self.pin_cpus = bool(pin_cpus)
        self.reply_timeout_s = float(reply_timeout_s)
        self.arena_bytes = int(arena_bytes)
        self._ctx = mp.get_context(start_method)
        self._links: list[_WorkerLink] = []
        self._unit_links: list[_WorkerLink] = []
        self._handles: list[ShardHandle] = []
        self._gen_names: dict[int, str] = {}
        self._generations: "weakref.WeakSet[shm_lib.SealedGeneration]" = weakref.WeakSet()
        self._closed = False
        self._broken: str | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def num_units(self) -> int:
        return len(self._unit_links)

    def worker_pids(self) -> list[int]:
        return [link.proc.pid for link in self._links]

    def _cpu_assignment(self, count: int) -> list[int | None]:
        if not self.pin_cpus:
            return [None] * count
        try:
            cpus = sorted(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cpus = list(range(os.cpu_count() or 1))
        if not cpus:  # pragma: no cover - defensive
            return [None] * count
        return [cpus[i % len(cpus)] for i in range(count)]

    def _spawn_link(self, index: int, cpu_id: int | None) -> _WorkerLink:
        parent_conn, child_conn = self._ctx.Pipe()
        req = shm_lib.ShmArena(size=self.arena_bytes)
        resp = shm_lib.ShmArena(size=self.arena_bytes)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, index, cpu_id, req.name, resp.name),
            daemon=True,
            name=f"repro-shard-worker-{index}",
        )
        proc.start()
        child_conn.close()
        return _WorkerLink(index, proc, parent_conn, req, resp, cpu_id)

    def adopt_units(self, units: Sequence[Any], kind: str = "shard") -> list[ShardHandle]:
        """Ship ``units`` to workers; returns one proxy handle per unit."""
        if self._handles:
            raise RuntimeError("adopt_units may only be called once per executor")
        units = list(units)
        if not units:
            raise ValueError("adopt_units requires at least one unit")
        worker_count = min(len(units), self.max_workers or len(units))
        cpu_ids = self._cpu_assignment(worker_count)
        self._links = [self._spawn_link(i, cpu_ids[i]) for i in range(worker_count)]
        # Warm-up: a ping per worker proves the interpreter is up (and, under
        # "spawn", that the module re-imported) before large units ship.
        for link in self._links:
            link.conn.send(("ping",))
        for link in self._links:
            self._consume(link, "ping")
        self._unit_links = [self._links[i % worker_count] for i in range(len(units))]
        for index, unit in enumerate(units):
            self._unit_links[index].conn.send(("adopt", index, kind, unit))
        handles = []
        for index in range(len(units)):
            encoded, _ = self._consume(self._unit_links[index], "adopt", index)
            handles.append(ShardHandle(self, index, encoded[1]))
        self._handles = handles
        return list(handles)

    def release_units(self) -> list[Any]:
        """Fetch every unit back (private arrays, bit-exact state)."""
        self._check_usable()
        units = []
        for index in range(self.num_units):
            link = self._unit_links[index]
            link.conn.send(("export", index))
            encoded, _ = self._consume(link, "export", index)
            self._gen_names.pop(index, None)
            units.append(self._decode(link, encoded))
        self._unit_links = []
        self._handles = []
        return units

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for link in self._links:
            try:
                link.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for link in self._links:
            try:
                if link.conn.poll(1.0):
                    link.conn.recv()  # ("bye", gen names) — tracked already
            except (EOFError, OSError):
                pass
            link.proc.join(timeout=2.0)
            if link.proc.is_alive():
                link.proc.terminate()
                link.proc.join(timeout=1.0)
            if link.proc.is_alive():  # pragma: no cover - stuck in kernel
                link.proc.kill()
                link.proc.join(timeout=1.0)
            try:
                link.conn.close()
            except OSError:  # pragma: no cover
                pass
        for name in self._gen_names.values():
            _unlink_segment(name)
        self._gen_names.clear()
        # Sealed generations unlink on last snapshot release; any still alive
        # at executor teardown are reaped here (their read-only mappings stay
        # valid for in-process readers until those drop their views).
        for generation in list(self._generations):
            generation.force_release()
        for link in self._links:
            link.req.close(unlink=True)
            link.resp.close(unlink=True)
        self._links = []
        self._unit_links = []
        self._handles = []

    def __del__(self):  # pragma: no cover - finalizer timing is interpreter-dependent
        self.close()

    def __deepcopy__(self, memo) -> "ProcessShardExecutor":
        # Never copy live workers; a copied store gets a fresh, un-adopted
        # runtime (mirrors the thread-pool executor's behaviour).
        return ProcessShardExecutor(
            max_workers=self.max_workers,
            start_method=self.start_method,
            pin_cpus=self.pin_cpus,
            reply_timeout_s=self.reply_timeout_s,
            arena_bytes=self.arena_bytes,
        )

    def __getstate__(self) -> dict[str, Any]:
        return {
            "max_workers": self.max_workers,
            "start_method": self.start_method,
            "pin_cpus": self.pin_cpus,
            "reply_timeout_s": self.reply_timeout_s,
            "arena_bytes": self.arena_bytes,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(**state)

    # ------------------------------------------------------------------ #
    # Op plumbing
    # ------------------------------------------------------------------ #
    def _check_usable(self) -> None:
        if self._broken:
            raise ShardWorkerCrashed(self._broken)
        if self._closed:
            raise RuntimeError("ProcessShardExecutor is closed")

    def _mark_broken(self, message: str) -> str:
        self._broken = message
        return message

    def _consume(
        self, link: _WorkerLink, label: str, unit_index: int | None = None
    ) -> tuple[tuple, float]:
        """Receive one reply from ``link``, with crash/timeout detection."""
        deadline = time.perf_counter() + self.reply_timeout_s
        while not link.conn.poll(0.05):
            if not link.proc.is_alive():
                raise ShardWorkerCrashed(
                    self._mark_broken(
                        f"shard worker {link.index} (pid {link.proc.pid}) exited with "
                        f"code {link.proc.exitcode} while the store was waiting on "
                        f"'{label}'; the process runtime is no longer usable — "
                        "rebuild the store or switch it to a fresh executor"
                    )
                )
            if time.perf_counter() > deadline:
                raise ShardWorkerCrashed(
                    self._mark_broken(
                        f"timed out after {self.reply_timeout_s:.0f}s waiting for shard "
                        f"worker {link.index} (pid {link.proc.pid}) to answer '{label}'"
                    )
                )
        try:
            reply = link.conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerCrashed(
                self._mark_broken(
                    f"shard worker {link.index} (pid {link.proc.pid}) closed its pipe "
                    f"mid-reply to '{label}'"
                )
            ) from exc
        if reply[0] == _ERR:
            raise reply[1]
        _, encoded, compute_s, grown_resp, gen_name, gen_retired = reply
        if grown_resp:
            link.resp.attach(grown_resp)
        if gen_retired:
            _unlink_segment(gen_retired)
        if gen_name is not None and unit_index is not None:
            self._gen_names[unit_index] = gen_name
        return encoded, compute_s

    def _decode(self, link: _WorkerLink, encoded: tuple) -> Any:
        tag, value = encoded
        if tag == "nd":
            return link.resp.get_array(value)
        return value

    def _encode_args(self, link: _WorkerLink, args: Sequence[Any]) -> tuple[list, str | None]:
        arrays = [
            np.ascontiguousarray(arg) if isinstance(arg, np.ndarray) else None
            for arg in args
        ]
        needed = sum(array.nbytes + 64 for array in arrays if array is not None)
        grown = None
        for _attempt in range(8):
            encoded: list = []
            restart = False
            for arg, array in zip(args, arrays):
                if array is None:
                    encoded.append(("raw", arg))
                    continue
                slot = link.req.reserve(array.nbytes)
                if slot is None:
                    grown = link.req.grow(needed)
                    restart = True
                    break
                offset, _ = slot
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=link.req.segment.buf, offset=offset
                )
                np.copyto(view, array, casting="no")
                encoded.append(("nd", (str(array.dtype), tuple(array.shape), offset)))
            if not restart:
                return encoded, grown
        raise RuntimeError("request arena failed to grow")  # pragma: no cover

    def run_ops(self, requests: Sequence[tuple[int, str, tuple]]) -> list[Any]:
        """Batched fan-out: send every ``(unit, method, args)`` request, then
        collect replies in request order.

        Array results are views into the response arenas — valid until the
        next executor call; copy anything that must outlive the batch.
        """
        self._check_usable()
        fanout_start = time.perf_counter()
        touched: set[int] = set()
        sends = []
        for unit_index, method, args in requests:
            link = self._unit_links[unit_index]
            first = link.index not in touched
            if first:
                touched.add(link.index)
                link.req.reclaim()
                link.req.reset()
                link.resp.reclaim()
            encoded_args, grown_req = self._encode_args(link, args)
            try:
                link.conn.send(("call", unit_index, method, encoded_args, first, grown_req))
            except (BrokenPipeError, OSError) as exc:
                raise ShardWorkerCrashed(
                    self._mark_broken(
                        f"shard worker {link.index} (pid {link.proc.pid}) is gone "
                        f"(exit code {link.proc.exitcode}); could not send '{method}' "
                        f"for shard {unit_index}"
                    )
                ) from exc
            sends.append((unit_index, method, link, time.perf_counter()))
        results: list[Any] = []
        first_error: Exception | None = None
        for unit_index, method, link, sent_at in sends:
            try:
                encoded, compute_s = self._consume(link, method, unit_index)
            except ShardWorkerCrashed:
                raise
            except Exception as exc:  # worker-raised; drain remaining replies
                if first_error is None:
                    first_error = exc
                results.append(None)
                continue
            wall = time.perf_counter() - sent_at
            with self._lock:
                self.stats.record_task(unit_index, wall, worker_s=compute_s)
            results.append(self._decode(link, encoded))
        with self._lock:
            self.stats.record_fanout(time.perf_counter() - fanout_start)
        if first_error is not None:
            raise first_error
        return results

    def call(self, unit_index: int, method: str, *args: Any) -> Any:
        """Single-op convenience over :meth:`run_ops`."""
        return self.run_ops([(unit_index, method, tuple(args))])[0]

    def run(self, tasks: Sequence[ShardTask]) -> list[Any]:
        """Generic thunk interface: runs thunks serially over the proxies.

        Exists for compatibility with unconverted fan-out call sites; each
        proxy method inside a thunk is its own round-trip, so hot paths use
        :meth:`run_ops` instead.
        """
        start = time.perf_counter()
        results = [self._timed(shard_index, thunk) for shard_index, thunk in tasks]
        with self._lock:
            self.stats.record_fanout(time.perf_counter() - start)
        return results

    # ------------------------------------------------------------------ #
    # Sealed snapshot generations
    # ------------------------------------------------------------------ #
    def seal_units(self) -> list[Any]:
        """Seal every unit's generation; returns frozen parent-side objects.

        Shard units come back as bit-exact backend clones whose arrays are
        read-only views over the sealed segment; group units come back as
        ``(backend, projection)`` tuples.  Each sealed object holds a
        :class:`~repro.runtime.shm.GenerationLease`, so the segment unlinks
        when the last snapshot referencing it is garbage collected.
        """
        payloads = self.run_ops([(i, "seal", ()) for i in range(self.num_units)])
        return [self._materialize(i, payload) for i, payload in enumerate(payloads)]

    def _note_gen(self, unit_index: int, gen_name: str | None, retired: str | None) -> None:
        if retired:
            _unlink_segment(retired)
        if gen_name:
            self._gen_names[unit_index] = gen_name

    def _materialize(self, unit_index: int, payload: tuple) -> Any:
        tag = payload[0]
        if tag == "pickle":
            _, data, synced_name, synced_retired = payload
            self._note_gen(unit_index, synced_name, synced_retired)
            return pickle.loads(data)
        _, sealed_name, layout, stripped, fresh_name, synced_retired = payload
        self._note_gen(unit_index, fresh_name, synced_retired)
        generation = shm_lib.SealedGeneration(sealed_name, layout)
        self._generations.add(generation)
        value = _load_grafted(stripped, generation.views())
        lease = shm_lib.GenerationLease(generation)
        owner = value[0] if isinstance(value, tuple) else value
        owner._sealed_lease = lease
        return value

"""Entry point: ``python -m repro.serve`` (see :mod:`repro.serving.cli`)."""

from repro.serving.cli import build_parser, main, run_serving_session

__all__ = ["main", "build_parser", "run_serving_session"]

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess/CI
    raise SystemExit(main())

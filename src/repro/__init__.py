"""repro: a from-scratch reproduction of CAFE (SIGMOD 2024).

The package provides:

* ``repro.api`` — the declarative front door: ``SystemConfig`` →
  ``Session``, the backend capability registry, and the consolidated
  ``python -m repro`` CLI;
* ``repro.nn`` — a NumPy autograd / neural-network substrate;
* ``repro.sketch`` — HotSketch and reference sketches;
* ``repro.embeddings`` — CAFE, CAFE-ML and all baseline compressed embeddings;
* ``repro.models`` — DLRM, WDL and DCN recommendation models;
* ``repro.store`` — the embedding-store interface, hash-partitioned sharding
  and copy-on-write snapshots;
* ``repro.serving`` — snapshot-backed micro-batching inference engine
  (``python -m repro.serve``);
* ``repro.data`` — synthetic CTR streams, Criteo reader, dataset schemas;
* ``repro.training`` — training/evaluation loops and metrics;
* ``repro.experiments`` — one runner per table/figure of the paper.
"""

from repro.version import __version__

__all__ = ["__version__"]

"""Table 2 — dataset statistics.

The paper's Table 2 lists, for each dataset, the number of samples, unique
features, categorical fields, embedding dimension, and resulting embedding
parameters.  This runner reproduces the table from the constants recorded in
:mod:`repro.data.schema` and, alongside each row, reports the corresponding
scaled synthetic preset actually used by this repository's experiments so the
scale factor is explicit.
"""

from __future__ import annotations

from repro.data.schema import PAPER_DATASET_STATS, make_preset
from repro.experiments.common import get_scale
from repro.experiments.reporting import ExperimentResult


def run_table2(scale: str = "tiny", seed: int = 0) -> ExperimentResult:
    """Regenerate Table 2 and the scaled presets derived from it."""
    spec = get_scale(scale)
    result = ExperimentResult(
        experiment_id="table2",
        title="Overview of the datasets (paper values and scaled presets)",
    )
    for name, stats in PAPER_DATASET_STATS.items():
        preset = make_preset(name, base_cardinality=spec.base_cardinality, seed=seed)
        result.add_row(
            dataset=name,
            paper_samples=stats["samples"],
            paper_features=stats["features"],
            paper_fields=stats["fields"],
            paper_dim=stats["dim"],
            paper_params=stats["params"],
            preset_features=preset.num_features,
            preset_fields=preset.num_fields,
            preset_dim=preset.embedding_dim,
            preset_params=preset.embedding_parameters,
        )
    result.add_note(
        "preset_* columns describe the synthetic presets used by this reproduction; "
        "paper_* columns are the original Table 2 values."
    )
    return result

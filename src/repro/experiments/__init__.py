"""Experiment runners reproducing every table and figure of the paper."""

from repro.experiments.common import (
    SCALES,
    ScaleSpec,
    averaged_rows,
    build_dataset,
    build_embedding,
    build_model,
    compare_methods,
    run_single,
)
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, list_experiments, run_experiment
from repro.experiments.reporting import ExperimentResult, format_table, print_result

__all__ = [
    "SCALES",
    "ScaleSpec",
    "build_dataset",
    "build_embedding",
    "build_model",
    "run_single",
    "compare_methods",
    "averaged_rows",
    "ExperimentResult",
    "format_table",
    "print_result",
    "EXPERIMENTS",
    "ExperimentSpec",
    "list_experiments",
    "run_experiment",
]

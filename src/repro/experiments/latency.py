"""Figure 13 — latency and throughput of each method (CriteoTB preset, 10×).

The paper times one training step (batch 2048) and one inference pass (batch
16384) per method; data loading and the dense network are identical across
methods so the differences isolate the embedding layer.  The reproduction
uses proportionally smaller batches but reports the same rows: per-method
training / inference latency and throughput.
"""

from __future__ import annotations

from repro.experiments.common import build_dataset, build_embedding, build_model, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.training.latency import measure_latency


def run_fig13_latency_throughput(
    scale: str = "tiny",
    seed: int = 0,
    methods: tuple[str, ...] = ("hash", "qr", "mde", "adaembed", "cafe"),
    compression_ratio: float = 10.0,
    train_batch_size: int | None = None,
    inference_batch_size: int | None = None,
    repeats: int = 5,
    serving_micro_batch: int | None = 64,
) -> ExperimentResult:
    """Measure per-method training, inference and serving latency/throughput."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Latency and throughput on CriteoTB (10x)",
    )
    spec = get_scale(scale)
    train_batch_size = train_batch_size or spec.batch_size
    inference_batch_size = inference_batch_size or spec.batch_size * 8

    dataset = build_dataset("criteotb", scale=scale, seed=seed)
    train_batch = dataset.generate_day(0, num_samples=train_batch_size)
    inference_batch = dataset.generate_day(0, num_samples=inference_batch_size, seed_offset=7)

    for method in methods:
        try:
            embedding = build_embedding(method, dataset, compression_ratio, seed=seed)
        except Exception as exc:  # infeasible method at this ratio
            result.add_row(method=method, feasible=False, reason=str(exc)[:60])
            continue
        model = build_model("dlrm", embedding, dataset.schema, seed=seed)
        report = measure_latency(
            model,
            train_batch,
            inference_batch,
            method_name=method,
            repeats=repeats,
            serving_micro_batch=serving_micro_batch,
            schema=dataset.schema,
        )
        result.add_row(feasible=True, **report.as_row())
    result.add_note(
        "expected shape: Hash fastest, Q-R and MDE close behind, CAFE adds sketch maintenance, "
        "AdaEmbed slowest in training due to its reallocation pass"
    )
    result.add_note(
        "plan_reuse_rate: fraction of routing-plan requests served from the lookup-time cache "
        "(each train step hashes once, then apply_gradients reuses the plan)"
    )
    result.add_note(
        "serve_p50/p95/p99_ms: per-request latency through the snapshot serving engine "
        "(single-example requests micro-batched over a copy-on-write store snapshot)"
    )
    result.add_note(
        "swt_p50/p95_ms: serve-while-train probe latency through the OnlinePipeline "
        "(requests answered from the last published snapshot while training continues); "
        "publish_p50_ms is the snapshot publish latency and staleness_steps the worst "
        "snapshot lag observed (bounded by the publish cadence)"
    )
    result.add_note(
        "replica_speedup_2x / burst_p99_ms: replicated-tier replay in virtual time — "
        "saturated-throughput ratio of 2 replicas vs 1, and overall p99 under a 4x "
        "flash crowd with the SLO micro-batch controller adapting"
    )
    return result

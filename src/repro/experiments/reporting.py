"""Result containers and plain-text table rendering for experiment runners.

The paper reports its evaluation as figures (metric-vs-compression-ratio
curves, iteration curves, heatmaps) and tables.  Each experiment runner in
this package returns an :class:`ExperimentResult` whose ``rows`` are exactly
the series / table rows the corresponding figure or table plots, so they can
be printed, asserted on in benchmarks, and compared against the paper's
qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]

    def filter_rows(self, **criteria: Any) -> list[dict[str, Any]]:
        """Rows matching all of the given column=value criteria."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def to_text(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            lines.append(format_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: list[dict[str, Any]]) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = [" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered]
    return "\n".join([header, separator] + body)


def print_result(result: ExperimentResult) -> None:  # pragma: no cover - console helper
    print(result.to_text())

"""Figure 15 — configuration sensitivity of CAFE (Criteo, 1000× in the paper).

Four panels:

* (a) the "hot percentage" — the fraction of the memory budget spent on the
  sketch plus exclusive rows (best around 0.7);
* (b) the hot threshold (too low → churn, too high → wasted exclusive rows);
* (c) the decay coefficient of the sketch scores;
* (d) design details: one exclusive table for all fields vs. one per field,
  and gradient-norm importance vs. raw frequency.

The reproduction sweeps the same knobs at a compression ratio where the
scaled dataset still has a meaningful number of exclusive rows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_dataset, run_single
from repro.experiments.reporting import ExperimentResult


def run_fig15_sensitivity(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    compression_ratio: float = 100.0,
    hot_percentages: tuple[float, ...] = (0.4, 0.5, 0.7, 0.9),
    thresholds: tuple[float, ...] = (5.0, 50.0, 500.0),
    decays: tuple[float, ...] = (0.9, 0.98, 1.0),
) -> ExperimentResult:
    """Sweep CAFE's configuration knobs on the Criteo preset."""
    result = ExperimentResult(
        experiment_id="fig15",
        title="Configuration sensitivity of CAFE (Criteo)",
    )
    dataset = build_dataset("criteo", scale=scale, seed=seeds[0])

    def averaged(embedding_kwargs, use_frequency_label=None, method="cafe"):
        losses, aucs = [], []
        for seed in seeds:
            outcome = run_single(
                dataset,
                method,
                compression_ratio,
                scale=scale,
                seed=seed,
                embedding_kwargs=embedding_kwargs,
            )
            losses.append(outcome.train_loss)
            aucs.append(outcome.test_auc)
        return float(np.mean(losses)), float(np.mean(aucs))

    # (a) memory split between hot (sketch + exclusive rows) and shared table.
    for hot_pct in hot_percentages:
        loss, auc = averaged({"hot_percentage": hot_pct})
        result.add_row(panel="hot_percentage", value=hot_pct, train_loss=round(loss, 4), test_auc=round(auc, 4))

    # (b) fixed hot thresholds (versus the adaptive default).
    for threshold in thresholds:
        loss, auc = averaged({"hot_threshold": threshold})
        result.add_row(panel="threshold", value=threshold, train_loss=round(loss, 4), test_auc=round(auc, 4))
    loss, auc = averaged({})
    result.add_row(panel="threshold", value="adaptive", train_loss=round(loss, 4), test_auc=round(auc, 4))

    # (c) decay coefficient of the sketch scores.
    for decay in decays:
        loss, auc = averaged({"decay": decay})
        result.add_row(panel="decay", value=decay, train_loss=round(loss, 4), test_auc=round(auc, 4))

    # (d) design details: gradient-norm importance vs. raw frequency.
    loss, auc = averaged({"use_frequency": False})
    result.add_row(panel="design", value="gradient_norm", train_loss=round(loss, 4), test_auc=round(auc, 4))
    loss, auc = averaged({"use_frequency": True})
    result.add_row(panel="design", value="frequency", train_loss=round(loss, 4), test_auc=round(auc, 4))
    result.add_note(
        "panel (d)'s one-table-vs-per-field comparison is implicit: this implementation always uses a "
        "single exclusive table shared by all fields, the design the paper finds superior"
    )
    return result

"""End-to-end comparisons: Figures 8, 9, 10 and 11.

* Figure 8 — testing AUC and training loss versus compression ratio for DLRM
  on Criteo and CriteoTB, comparing Hash, Q-R, AdaEmbed, CAFE and the
  uncompressed ideal.
* Figure 9 — the same metrics versus training iterations at fixed compression
  ratios (100× for all methods, 5×/50× where AdaEmbed is feasible).
* Figure 10 — KDD12 (AUC vs CR) and Avazu (loss vs CR, loss vs iterations).
* Figure 11 — WDL and DCN on CriteoTB (AUC / loss vs CR).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import averaged_rows, build_dataset, get_scale, run_single
from repro.experiments.reporting import ExperimentResult

#: Compression ratios used by the scaled sweeps.  The paper sweeps 2×–10000×;
#: at the reduced dataset sizes of this reproduction the largest ratios leave
#: no embedding rows at all, so the sweep stops where every method still has a
#: meaningful number of parameters (see EXPERIMENTS.md).
DEFAULT_RATIOS = (2.0, 10.0, 50.0, 100.0, 500.0)
DEFAULT_METHODS = ("full", "hash", "qr", "adaembed", "cafe")


def run_fig8_metrics_vs_cr(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    datasets: tuple[str, ...] = ("criteo", "criteotb"),
    methods: tuple[str, ...] = DEFAULT_METHODS,
    compression_ratios: tuple[float, ...] = DEFAULT_RATIOS,
    model_name: str = "dlrm",
) -> ExperimentResult:
    """AUC / loss versus compression ratio (DLRM on Criteo and CriteoTB)."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="Metrics vs. compression ratios (DLRM)",
    )
    for dataset_name in datasets:
        dataset = build_dataset(dataset_name, scale=scale, seed=seeds[0])
        ratios = [1.0] + list(compression_ratios)
        rows = averaged_rows(
            dataset, list(methods), ratios, model_name=model_name, scale=scale, seeds=seeds
        )
        for row in rows:
            result.add_row(dataset=dataset_name, **row)
    result.add_note(
        "the 'full' method is the uncompressed ideal; infeasible rows mark methods whose "
        "structural memory floor exceeds the budget (Q-R, AdaEmbed, MDE at large CR)"
    )
    return result


def run_fig9_metrics_vs_iterations(
    scale: str = "tiny",
    seed: int = 0,
    datasets: tuple[str, ...] = ("criteo", "criteotb"),
    methods: tuple[str, ...] = ("hash", "qr", "adaembed", "cafe"),
    high_ratio: float = 100.0,
    low_ratio: float = 5.0,
    eval_every: int = 20,
) -> ExperimentResult:
    """Metric curves over training iterations at fixed compression ratios."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="Metrics vs. iterations",
    )
    for dataset_name in datasets:
        dataset = build_dataset(dataset_name, scale=scale, seed=seed)
        for ratio in (high_ratio, low_ratio):
            for method in methods:
                outcome = run_single(
                    dataset,
                    method,
                    ratio,
                    scale=scale,
                    seed=seed,
                    eval_every=eval_every,
                )
                if not outcome.feasible:
                    result.add_row(
                        dataset=dataset_name, method=method, compression_ratio=ratio, feasible=False
                    )
                    continue
                curve = outcome.history.smoothed_losses(window=10)
                key = f"{dataset_name}_{method}_cr{int(ratio)}"
                result.extras[f"{key}_loss_curve"] = curve
                result.extras[f"{key}_auc_steps"] = np.asarray(outcome.history.eval_steps)
                result.extras[f"{key}_auc_curve"] = np.asarray(outcome.history.eval_aucs)
                result.add_row(
                    dataset=dataset_name,
                    method=method,
                    compression_ratio=ratio,
                    feasible=True,
                    first_loss=round(float(curve[0]), 4) if curve.size else float("nan"),
                    last_loss=round(float(curve[-1]), 4) if curve.size else float("nan"),
                    final_auc=round(float(outcome.history.eval_aucs[-1]), 4)
                    if outcome.history.eval_aucs
                    else round(outcome.test_auc, 4),
                )
    result.add_note("loss curves are smoothed with a 10-step moving average, as in the paper's plots")
    return result


def run_fig10_kdd12_avazu(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    methods: tuple[str, ...] = DEFAULT_METHODS,
    compression_ratios: tuple[float, ...] = DEFAULT_RATIOS,
    iteration_ratio: float = 5.0,
    eval_every: int = 20,
) -> ExperimentResult:
    """KDD12 AUC vs CR; Avazu loss vs CR and loss vs iterations."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="Performance on KDD12 and Avazu",
    )
    # KDD12: no temporal information — random split, offline metric (test AUC).
    kdd12 = build_dataset("kdd12", scale=scale, seed=seeds[0], num_days=2)
    rows = averaged_rows(kdd12, list(methods), [1.0] + list(compression_ratios), scale=scale, seeds=seeds)
    for row in rows:
        result.add_row(dataset="kdd12", **row)

    # Avazu: online metric (training loss) is the focus.
    avazu = build_dataset("avazu", scale=scale, seed=seeds[0])
    rows = averaged_rows(avazu, list(methods), [1.0] + list(compression_ratios), scale=scale, seeds=seeds)
    for row in rows:
        result.add_row(dataset="avazu", **row)

    # Loss-vs-iteration curves on Avazu at a small compression ratio.
    for method in methods:
        outcome = run_single(avazu, method, iteration_ratio, scale=scale, seed=seeds[0], eval_every=eval_every)
        if outcome.feasible:
            result.extras[f"avazu_{method}_loss_curve"] = outcome.history.smoothed_losses(window=10)
    result.add_note("KDD12 has no day structure in the paper; the preset uses a 2-day random-style split")
    return result


def run_fig11_wdl_dcn(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    methods: tuple[str, ...] = ("hash", "qr", "adaembed", "cafe"),
    compression_ratios: tuple[float, ...] = (10.0, 50.0, 100.0, 500.0),
    models: tuple[str, ...] = ("wdl", "dcn"),
) -> ExperimentResult:
    """WDL and DCN on the CriteoTB preset: AUC / loss versus CR."""
    result = ExperimentResult(
        experiment_id="fig11",
        title="WDL and DCN performance on CriteoTB",
    )
    dataset = build_dataset("criteotb", scale=scale, seed=seeds[0])
    for model_name in models:
        rows = averaged_rows(
            dataset, list(methods), list(compression_ratios), model_name=model_name, scale=scale, seeds=seeds
        )
        for row in rows:
            result.add_row(model=model_name, **row)
    return result

"""Shared infrastructure for the per-figure experiment runners.

Every end-to-end experiment follows the same recipe: build a scaled synthetic
dataset preset, construct an embedding method at a target compression ratio,
train one chronological epoch, and record the online metric (average training
loss) and the offline metric (testing AUC on the last day).  This module owns
that recipe so the individual runners contain only the sweep logic specific
to their figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import DatasetSchema, make_preset
from repro.data.synthetic import SyntheticConfig, SyntheticCTRDataset
from repro.embeddings import create_embedding
from repro.embeddings.base import CompressedEmbedding
from repro.errors import MemoryBudgetError
from repro.models import create_model
from repro.models.base import RecommendationModel
from repro.training.config import TrainingConfig
from repro.training.trainer import TrainingHistory, train_and_evaluate
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class ScaleSpec:
    """Workload size of an experiment run.

    ``tiny`` keeps benchmark/CI runtimes in seconds; ``small`` is the default
    for interactive use; ``medium`` gives smoother curves at a few minutes per
    configuration.
    """

    name: str
    base_cardinality: int
    samples_per_day: int
    batch_size: int
    test_samples: int
    max_days: int | None = None


SCALES: dict[str, ScaleSpec] = {
    "tiny": ScaleSpec(
        "tiny", base_cardinality=300, samples_per_day=3000, batch_size=128, test_samples=2048, max_days=6
    ),
    "small": ScaleSpec(
        "small", base_cardinality=800, samples_per_day=6000, batch_size=256, test_samples=4096, max_days=10
    ),
    "medium": ScaleSpec(
        "medium", base_cardinality=3000, samples_per_day=20000, batch_size=512, test_samples=8192, max_days=None
    ),
}


def get_scale(scale: str | ScaleSpec) -> ScaleSpec:
    if isinstance(scale, ScaleSpec):
        return scale
    if scale not in SCALES:
        raise ValueError(f"unknown scale '{scale}'; expected one of {sorted(SCALES)}")
    return SCALES[scale]


def build_dataset(
    dataset_name: str,
    scale: str | ScaleSpec = "tiny",
    seed: int = 0,
    num_days: int | None = None,
    drift=None,
) -> SyntheticCTRDataset:
    """Create the scaled synthetic preset for one of the paper's datasets.

    ``num_days`` overrides the preset's day count; otherwise the scale's
    ``max_days`` caps it so that the larger presets (CriteoTB has 24 days)
    stay affordable at benchmark scale.
    """
    spec = get_scale(scale)
    schema = make_preset(dataset_name, base_cardinality=spec.base_cardinality, seed=seed)
    if num_days is not None:
        schema.num_days = num_days
    elif spec.max_days is not None:
        schema.num_days = min(schema.num_days, spec.max_days)
    config = SyntheticConfig(samples_per_day=spec.samples_per_day, seed=seed)
    return SyntheticCTRDataset(schema, config=config, drift=drift)


def build_embedding(
    method: str,
    dataset: SyntheticCTRDataset,
    compression_ratio: float,
    seed: int = 0,
    optimizer: str = "adagrad",
    learning_rate: float = 0.1,
    dtype: str = "float32",
    **kwargs,
) -> CompressedEmbedding:
    """Instantiate an embedding method for ``dataset`` at a compression ratio.

    Methods that need side information receive it automatically: MDE gets the
    field cardinalities, the offline-separation oracle gets the exact
    training-stream frequencies.
    """
    schema = dataset.schema
    extra = dict(kwargs)
    if method == "offline" and "frequencies" not in extra:
        extra["frequencies"] = dataset.feature_frequencies()
    return create_embedding(
        method,
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        compression_ratio=compression_ratio,
        field_cardinalities=schema.field_cardinalities,
        optimizer=optimizer,
        learning_rate=learning_rate,
        dtype=dtype,
        rng=np.random.default_rng(seed + 13),
        **extra,
    )


def build_model(
    model_name: str,
    embedding: CompressedEmbedding,
    schema: DatasetSchema,
    seed: int = 0,
) -> RecommendationModel:
    return create_model(
        model_name,
        embedding,
        num_fields=schema.num_fields,
        num_numerical=schema.num_numerical,
        rng=np.random.default_rng(seed + 17),
    )


@dataclass
class RunOutcome:
    """Metrics of one (method, compression ratio, model, dataset) run."""

    method: str
    compression_ratio: float
    achieved_ratio: float
    train_loss: float
    test_auc: float
    test_log_loss: float
    history: TrainingHistory
    feasible: bool = True
    failure_reason: str = ""

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "compression_ratio": self.compression_ratio,
            "achieved_ratio": round(self.achieved_ratio, 1),
            "train_loss": round(self.train_loss, 4),
            "test_auc": round(self.test_auc, 4),
            "test_log_loss": round(self.test_log_loss, 4),
            "feasible": self.feasible,
        }


def run_single(
    dataset: SyntheticCTRDataset,
    method: str,
    compression_ratio: float,
    model_name: str = "dlrm",
    scale: str | ScaleSpec = "tiny",
    seed: int = 0,
    eval_every: int | None = None,
    embedding_kwargs: dict | None = None,
) -> RunOutcome:
    """Train one configuration end to end; infeasible budgets are reported,
    not raised, because the paper's figures simply omit those points.

    ``method`` may also be a per-field table-group spec (it contains a
    ``:``, e.g. ``"full:tiny,cafe:tail"``): the run then trains over a
    heterogeneous :class:`~repro.store.table_group.TableGroupStore` instead
    of one uniform layer, opening the mixed-policy scenario axis.
    """
    spec = get_scale(scale)
    config = TrainingConfig(batch_size=spec.batch_size, seed=seed)
    try:
        # One parser decides: grouped specs and option-carrying uniform
        # specs ("cafe[cr=8,shards=2]") go through the store factory; a bare
        # method name keeps the historical direct-embedding construction
        # (bit-exact with every recorded figure).
        from repro.api.spec import parse_spec

        parsed = parse_spec(method)
        if parsed.grouped or parsed.entries[0].options:
            from repro.embeddings import create_embedding_store

            embedding = create_embedding_store(
                dataset.schema,
                spec=method,
                compression_ratio=compression_ratio,
                seed=seed,
                optimizer=config.sparse_optimizer,
                learning_rate=config.sparse_learning_rate,
                dtype=config.embedding_dtype,
                **(embedding_kwargs or {}),
            )
        else:
            embedding = build_embedding(
                method,
                dataset,
                compression_ratio,
                seed=seed,
                optimizer=config.sparse_optimizer,
                learning_rate=config.sparse_learning_rate,
                dtype=config.embedding_dtype,
                **(embedding_kwargs or {}),
            )
    except MemoryBudgetError as exc:
        logger.info("%s infeasible at CR %.0fx: %s", method, compression_ratio, exc)
        return RunOutcome(
            method=method,
            compression_ratio=compression_ratio,
            achieved_ratio=float("nan"),
            train_loss=float("nan"),
            test_auc=float("nan"),
            test_log_loss=float("nan"),
            history=TrainingHistory(),
            feasible=False,
            failure_reason=str(exc),
        )
    model = build_model(model_name, embedding, dataset.schema, seed=seed)
    stream = dataset.training_stream(spec.batch_size)
    test_batch = dataset.test_batch(num_samples=spec.test_samples)
    results = train_and_evaluate(model, stream, test_batch, config=config, eval_every=eval_every)
    return RunOutcome(
        method=method,
        compression_ratio=compression_ratio,
        achieved_ratio=embedding.compression_ratio(),
        train_loss=results["train_loss"],
        test_auc=results["test_auc"],
        test_log_loss=results["test_log_loss"],
        history=results["history"],
    )


def compare_methods(
    dataset: SyntheticCTRDataset,
    methods: list[str],
    compression_ratios: list[float],
    model_name: str = "dlrm",
    scale: str | ScaleSpec = "tiny",
    seed: int = 0,
    eval_every: int | None = None,
) -> list[RunOutcome]:
    """Sweep methods × compression ratios (the generic figure-8-style grid)."""
    outcomes = []
    for method in methods:
        for ratio in compression_ratios:
            if method == "full" and ratio != 1.0:
                continue
            outcomes.append(
                run_single(
                    dataset,
                    method,
                    ratio,
                    model_name=model_name,
                    scale=scale,
                    seed=seed,
                    eval_every=eval_every,
                )
            )
    return outcomes


def averaged_rows(
    dataset: SyntheticCTRDataset,
    methods: list[str],
    compression_ratios: list[float],
    model_name: str = "dlrm",
    scale: str | ScaleSpec = "tiny",
    seeds: tuple[int, ...] = (0,),
    eval_every: int | None = None,
) -> list[dict]:
    """Run the method × CR grid for several seeds and average the metrics.

    The paper's curves are single training runs on very large datasets; at the
    reduced scale of this reproduction a small amount of seed averaging is the
    cheapest way to recover comparable stability.  Rows for infeasible
    configurations (e.g. AdaEmbed beyond its memory floor) are kept with
    ``feasible=False`` so the tables show the same gaps the paper reports.
    """
    grouped: dict[tuple[str, float], list[RunOutcome]] = {}
    for seed in seeds:
        for outcome in compare_methods(
            dataset,
            methods,
            compression_ratios,
            model_name=model_name,
            scale=scale,
            seed=seed,
            eval_every=eval_every,
        ):
            grouped.setdefault((outcome.method, outcome.compression_ratio), []).append(outcome)

    rows = []
    for (method, ratio), outcomes in grouped.items():
        feasible = [o for o in outcomes if o.feasible]
        if feasible:
            rows.append(
                {
                    "method": method,
                    "compression_ratio": ratio,
                    "achieved_ratio": round(float(np.mean([o.achieved_ratio for o in feasible])), 1),
                    "train_loss": round(float(np.mean([o.train_loss for o in feasible])), 4),
                    "test_auc": round(float(np.mean([o.test_auc for o in feasible])), 4),
                    "test_log_loss": round(float(np.mean([o.test_log_loss for o in feasible])), 4),
                    "feasible": True,
                    "num_seeds": len(feasible),
                }
            )
        else:
            rows.append(
                {
                    "method": method,
                    "compression_ratio": ratio,
                    "achieved_ratio": float("nan"),
                    "train_loss": float("nan"),
                    "test_auc": float("nan"),
                    "test_log_loss": float("nan"),
                    "feasible": False,
                    "num_seeds": 0,
                }
            )
    rows.sort(key=lambda r: (r["method"], r["compression_ratio"]))
    return rows

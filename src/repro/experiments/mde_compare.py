"""Figure 12 — comparison with MDE (column compression).

MDE keeps one (narrow) row per feature, so its compression ratio is bounded
by the embedding dimension and its accuracy collapses once the per-feature
width approaches one column; CAFE and the Hash baseline are row-compression
methods without that bound.  The runner sweeps compression ratios and records
the AUC / loss of MDE, Hash and CAFE side by side.
"""

from __future__ import annotations

from repro.experiments.common import averaged_rows, build_dataset
from repro.experiments.reporting import ExperimentResult


def run_fig12_mde(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    datasets: tuple[str, ...] = ("criteo", "criteotb"),
    methods: tuple[str, ...] = ("hash", "mde", "cafe"),
    compression_ratios: tuple[float, ...] = (2.0, 5.0, 10.0, 50.0, 100.0),
) -> ExperimentResult:
    """AUC / loss vs CR for MDE against Hash and CAFE."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="Comparison with MDE (column compression)",
    )
    for dataset_name in datasets:
        dataset = build_dataset(dataset_name, scale=scale, seed=seeds[0])
        rows = averaged_rows(dataset, list(methods), list(compression_ratios), scale=scale, seeds=seeds)
        for row in rows:
            result.add_row(dataset=dataset_name, **row)
    result.add_note(
        "MDE becomes infeasible once the budget drops below one column per feature "
        "(compression ratio close to the embedding dimension)"
    )
    return result

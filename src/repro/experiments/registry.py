"""Registry mapping every paper table / figure to its experiment runner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.ablations import (
    run_ablation_adaptivity,
    run_ablation_slots_per_bucket,
)
from repro.experiments.drift import run_fig2_kl_divergence, run_fig17_drift_shift
from repro.experiments.end_to_end import (
    run_fig8_metrics_vs_cr,
    run_fig9_metrics_vs_iterations,
    run_fig10_kdd12_avazu,
    run_fig11_wdl_dcn,
)
from repro.experiments.hotsketch_eval import (
    run_fig3_gradient_zipf,
    run_fig7_probability_grid,
    run_fig18_hotsketch,
)
from repro.experiments.latency import run_fig13_latency_throughput
from repro.experiments.mde_compare import run_fig12_mde
from repro.experiments.multilevel import run_fig16_multilevel
from repro.experiments.offline_compare import run_fig14_offline_separation
from repro.experiments.reporting import ExperimentResult
from repro.experiments.sensitivity import run_fig15_sensitivity
from repro.experiments.tables import run_table2


@dataclass(frozen=True)
class ExperimentSpec:
    """One entry of the experiment registry."""

    experiment_id: str
    title: str
    runner: Callable[..., ExperimentResult]
    paper_reference: str


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec("table2", "Dataset statistics", run_table2, "Table 2"),
        ExperimentSpec("fig2", "KL divergence between days", run_fig2_kl_divergence, "Figure 2"),
        ExperimentSpec("fig3", "Gradient norms vs Zipf", run_fig3_gradient_zipf, "Figure 3"),
        ExperimentSpec("fig7", "HotSketch probability bound", run_fig7_probability_grid, "Figure 7"),
        ExperimentSpec("fig8", "Metrics vs compression ratio", run_fig8_metrics_vs_cr, "Figure 8"),
        ExperimentSpec("fig9", "Metrics vs iterations", run_fig9_metrics_vs_iterations, "Figure 9"),
        ExperimentSpec("fig10", "KDD12 and Avazu", run_fig10_kdd12_avazu, "Figure 10"),
        ExperimentSpec("fig11", "WDL and DCN on CriteoTB", run_fig11_wdl_dcn, "Figure 11"),
        ExperimentSpec("fig12", "Comparison with MDE", run_fig12_mde, "Figure 12"),
        ExperimentSpec("fig13", "Latency and throughput", run_fig13_latency_throughput, "Figure 13"),
        ExperimentSpec("fig14", "CAFE vs offline separation", run_fig14_offline_separation, "Figure 14"),
        ExperimentSpec("fig15", "Configuration sensitivity", run_fig15_sensitivity, "Figure 15"),
        ExperimentSpec("fig16", "Multi-level hash embedding", run_fig16_multilevel, "Figure 16"),
        ExperimentSpec("fig17", "CriteoTB-1/3 drift", run_fig17_drift_shift, "Figure 17"),
        ExperimentSpec("fig18", "HotSketch performance", run_fig18_hotsketch, "Figure 18"),
    ]
}


#: Additional ablations that go beyond the paper's own figures (see
#: ``repro.experiments.ablations``).  They are kept separate from
#: :data:`EXPERIMENTS` so the latter maps one-to-one onto paper artifacts.
ABLATIONS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "ablation_slots",
            "HotSketch slots-per-bucket (end-to-end)",
            run_ablation_slots_per_bucket,
            "Corollary 3.5 / Figure 18(a)",
        ),
        ExperimentSpec(
            "ablation_adaptivity",
            "Migration and decay under drift",
            run_ablation_adaptivity,
            "Section 3.3",
        ),
    ]
}


def list_experiments(include_ablations: bool = False) -> list[str]:
    """Identifiers of all registered experiments, in paper order."""
    ids = list(EXPERIMENTS)
    if include_ablations:
        ids += list(ABLATIONS)
    return ids


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment or ablation by id (e.g. ``"fig8"``)."""
    if experiment_id in EXPERIMENTS:
        return EXPERIMENTS[experiment_id].runner(**kwargs)
    if experiment_id in ABLATIONS:
        return ABLATIONS[experiment_id].runner(**kwargs)
    raise KeyError(
        f"unknown experiment '{experiment_id}'; available: {list_experiments(include_ablations=True)}"
    )

"""Figure 16 — multi-level hash embedding (CAFE vs CAFE-ML) on Criteo."""

from __future__ import annotations

from repro.experiments.common import averaged_rows, build_dataset
from repro.experiments.reporting import ExperimentResult


def run_fig16_multilevel(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    compression_ratios: tuple[float, ...] = (10.0, 50.0, 100.0, 500.0),
) -> ExperimentResult:
    """AUC / loss vs CR for CAFE and its 2-level variant."""
    result = ExperimentResult(
        experiment_id="fig16",
        title="Multi-level hash embedding on Criteo (CAFE vs CAFE-ML)",
    )
    dataset = build_dataset("criteo", scale=scale, seed=seeds[0])
    rows = averaged_rows(dataset, ["cafe", "cafe_ml"], list(compression_ratios), scale=scale, seeds=seeds)
    for row in rows:
        result.add_row(**row)
    result.add_note(
        "CAFE-ML assigns medium-importance features two pooled hash embeddings and cold features one; "
        "the paper reports ~0.08% AUC gain, largest at small compression ratios"
    )
    return result

"""Figure 14 — CAFE versus offline feature separation.

The offline oracle makes a full statistics pass over the training data,
splits hot/non-hot by exact frequency, and never adapts.  The paper shows the
two reach nearly identical quality (the oracle is slightly ahead early in
training before HotSketch warms up), which validates the sketch-based online
separation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_dataset, get_scale, run_single
from repro.experiments.reporting import ExperimentResult


def run_fig14_offline_separation(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    compression_ratios: tuple[float, ...] = (10.0, 100.0, 500.0),
    iteration_ratio: float = 100.0,
    eval_every: int = 20,
) -> ExperimentResult:
    """CAFE vs the frequency-oracle offline split on the Criteo preset."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="CAFE vs. offline feature separation (Criteo)",
    )
    dataset = build_dataset("criteo", scale=scale, seed=seeds[0])
    for method in ("cafe", "offline"):
        for ratio in compression_ratios:
            losses, aucs = [], []
            curve = None
            for seed in seeds:
                outcome = run_single(
                    dataset,
                    method,
                    ratio,
                    scale=scale,
                    seed=seed,
                    eval_every=eval_every if ratio == iteration_ratio else None,
                )
                losses.append(outcome.train_loss)
                aucs.append(outcome.test_auc)
                if ratio == iteration_ratio and curve is None:
                    curve = outcome.history.smoothed_losses(window=10)
            result.add_row(
                method=method,
                compression_ratio=ratio,
                train_loss=round(float(np.mean(losses)), 4),
                test_auc=round(float(np.mean(aucs)), 4),
            )
            if curve is not None:
                result.extras[f"{method}_loss_curve_cr{int(iteration_ratio)}"] = curve
    result.add_note(
        "the offline oracle is not deployable (it needs a full statistics pass and cannot adapt online); "
        "matching it validates HotSketch's online separation"
    )
    return result

"""HotSketch analyses: Figures 3, 7 and 18.

* Figure 3 — the distribution of per-feature importance (accumulated gradient
  norms) closely follows a Zipf distribution; this runner measures the norms
  on a real training run and fits the exponent.
* Figure 7 — numerical evaluation of the Theorem 3.3 retention-probability
  bound over a (hotness γ, skewness z) grid.
* Figure 18 — (a) recall of the true top-k features and (b) insert/query
  throughput for different slots-per-bucket values under a fixed memory
  budget; (c)/(d) real-time recall of the up-to-date and sliding-window top-k
  during online training with drifting data.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_dataset, build_embedding, build_model, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.sketch.analysis import optimal_slots_per_bucket, retention_probability_grid
from repro.sketch.hotsketch import HotSketch
from repro.training.config import TrainingConfig
from repro.training.latency import measure_sketch_throughput
from repro.training.metrics import recall_at_k
from repro.training.trainer import Trainer
from repro.utils.zipf import ZipfDistribution, fit_zipf_exponent


def run_fig3_gradient_zipf(
    scale: str = "tiny",
    seed: int = 0,
    datasets: tuple[str, ...] = ("criteo", "criteotb"),
    fit_top_fraction: float = 0.05,
) -> ExperimentResult:
    """Fit a Zipf exponent to the measured per-feature gradient norms."""
    result = ExperimentResult(
        experiment_id="fig3",
        title="Comparing gradient norm and Zipf distributions",
    )
    spec = get_scale(scale)
    for dataset_name in datasets:
        dataset = build_dataset(dataset_name, scale=scale, seed=seed)
        embedding = build_embedding("full", dataset, 1.0, seed=seed)
        model = build_model("dlrm", embedding, dataset.schema, seed=seed)
        trainer = Trainer(model, TrainingConfig(batch_size=spec.batch_size, seed=seed))
        stream = dataset.training_stream(spec.batch_size, days=dataset.train_days[:2])
        norms = trainer.collect_gradient_norms(stream, dataset.schema.num_features)
        positive = norms[norms > 0]
        max_rank = max(int(positive.size * fit_top_fraction), 10)
        exponent = fit_zipf_exponent(norms, min_rank=1, max_rank=max_rank)
        result.extras[f"{dataset_name}_gradient_norms"] = np.sort(positive)[::-1]
        result.add_row(
            dataset=dataset_name,
            num_features_with_gradient=int(positive.size),
            fitted_zipf_exponent=round(exponent, 3),
            configured_zipf_exponent=dataset.schema.zipf_exponent,
            top_1pct_mass=round(float(np.sort(norms)[::-1][: max(norms.size // 100, 1)].sum() / norms.sum()), 4),
        )
    result.add_note(
        "the fitted exponent reflects the scaled presets; the paper fits 1.05 (Criteo) and 1.1 (CriteoTB) "
        "on the full-size datasets"
    )
    return result


def run_fig7_probability_grid(
    num_buckets: int = 10000,
    slots_per_bucket: int = 4,
    gammas: tuple[float, ...] = (1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3),
    zipf_exponents: tuple[float, ...] = (1.1, 1.4, 1.7, 2.0),
) -> ExperimentResult:
    """Numerical solution of the Theorem 3.3 bound (the paper uses w=10000, c=4)."""
    result = ExperimentResult(
        experiment_id="fig7",
        title="Probability of HotSketch identifying hot features (Theorem 3.3)",
    )
    grid = retention_probability_grid(np.asarray(gammas), np.asarray(zipf_exponents), num_buckets, slots_per_bucket)
    result.extras["probability_grid"] = grid
    for i, z in enumerate(zipf_exponents):
        for j, gamma in enumerate(gammas):
            result.add_row(zipf_exponent=z, gamma=gamma, probability=round(float(grid[i, j]), 4))
    result.add_note("probability increases with both the feature hotness γ and the stream skewness z")
    return result


def run_fig18_hotsketch(
    scale: str = "tiny",
    seed: int = 0,
    slots_options: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    memory_slots: int = 4096,
    top_k: int = 256,
    stream_length: int = 200_000,
    zipf_exponent: float = 1.1,
    num_items: int = 100_000,
    tracking_ratios: tuple[float, ...] = (100.0, 1000.0),
    window_fraction: float = 0.5,
) -> ExperimentResult:
    """HotSketch recall/throughput and real-time top-k tracking."""
    result = ExperimentResult(
        experiment_id="fig18",
        title="Experiments on HotSketch",
    )
    rng = np.random.default_rng(seed)

    # --- (a)/(b): recall and throughput vs slots per bucket under fixed memory.
    zipf = ZipfDistribution(num_items, zipf_exponent)
    stream = zipf.sample(stream_length, rng)
    counts = np.bincount(stream, minlength=num_items)
    true_top = np.argsort(counts)[::-1][:top_k]
    for slots in slots_options:
        buckets = max(memory_slots // slots, 1)
        sketch = HotSketch(num_buckets=buckets, slots_per_bucket=slots, hot_threshold=1.0, seed=seed)
        sketch.insert(stream)
        reported = sketch.top_k(top_k)
        recall = recall_at_k(true_top, reported)
        throughput = measure_sketch_throughput(
            HotSketch(num_buckets=buckets, slots_per_bucket=slots, hot_threshold=1.0, seed=seed),
            stream[:20000],
            np.ones(20000),
        )
        result.add_row(
            panel="recall_throughput",
            slots_per_bucket=slots,
            num_buckets=buckets,
            recall=round(recall, 4),
            insert_mops=round(throughput["insert_ops_per_s"] / 1e6, 3),
            query_mops=round(throughput["query_ops_per_s"] / 1e6, 3),
        )
    result.extras["recommended_slots"] = optimal_slots_per_bucket(zipf_exponent)

    # --- (c)/(d): real-time top-k recall during online training with drift.
    spec = get_scale(scale)
    dataset = build_dataset("criteo", scale=scale, seed=seed)
    for ratio in tracking_ratios:
        embedding = build_embedding("cafe", dataset, ratio, seed=seed)
        model = build_model("dlrm", embedding, dataset.schema, seed=seed)
        trainer = Trainer(model, TrainingConfig(batch_size=spec.batch_size, seed=seed))
        cumulative = np.zeros(dataset.schema.num_features)
        k = embedding.num_hot_rows
        window = max(int(dataset.config.samples_per_day * window_fraction), spec.batch_size)
        window_counts = np.zeros(dataset.schema.num_features)
        window_seen = 0
        for day in dataset.train_days:
            for batch in dataset.day_batches(day, spec.batch_size):
                trainer.train_step(batch)
                ids = batch.categorical.reshape(-1)
                np.add.at(cumulative, ids, 1.0)
                np.add.at(window_counts, ids, 1.0)
                window_seen += len(batch)
                if window_seen >= window:
                    reported = embedding.sketch.top_k(k)
                    recall_cum = recall_at_k(np.argsort(cumulative)[::-1][:k], reported)
                    recall_win = recall_at_k(np.argsort(window_counts)[::-1][:k], reported)
                    result.add_row(
                        panel="tracking",
                        compression_ratio=ratio,
                        day=day,
                        recall_up_to_date=round(recall_cum, 4),
                        recall_window=round(recall_win, 4),
                    )
                    window_counts[:] = 0.0
                    window_seen = 0
    result.add_note(
        "panel=recall_throughput reproduces Fig 18(a)/(b); panel=tracking reproduces Fig 18(c)/(d) "
        "(recall of the up-to-date and previous-window top-k during online training)"
    )
    return result

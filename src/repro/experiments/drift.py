"""Distribution-shift experiments: Figure 2 and Figure 17.

Figure 2 plots, for Avazu / Criteo / CriteoTB, the KL divergence between the
feature distributions of every pair of days; divergence grows with the number
of days between the two distributions.  Figure 17 trains on CriteoTB-1/3 — a
version of CriteoTB keeping every third day — whose larger day-to-day shift
stresses the adaptive methods (CAFE, AdaEmbed) against the static ones.
"""

from __future__ import annotations

import numpy as np

from repro.data.stats import kl_divergence_matrix
from repro.experiments.common import averaged_rows, build_dataset, get_scale, run_single
from repro.experiments.reporting import ExperimentResult


def run_fig2_kl_divergence(
    scale: str = "tiny",
    seed: int = 0,
    datasets: tuple[str, ...] = ("avazu", "criteo", "criteotb"),
    max_days: int = 8,
) -> ExperimentResult:
    """KL-divergence heatmaps between per-day feature distributions."""
    result = ExperimentResult(
        experiment_id="fig2",
        title="KL divergence between distributions on each day",
    )
    for name in datasets:
        dataset = build_dataset(name, scale=scale, seed=seed)
        days = min(dataset.num_days, max_days)
        dataset.schema.num_days = days
        histograms = dataset.day_histograms()
        matrix = kl_divergence_matrix(histograms)
        result.extras[f"{name}_kl_matrix"] = matrix
        for i in range(days):
            for j in range(days):
                if i != j:
                    result.add_row(dataset=name, day_i=i, day_j=j, kl=round(float(matrix[i, j]), 4))
        # Summary statistic the figure conveys: KL grows with the day gap.
        gaps = {}
        for i in range(days):
            for j in range(days):
                if i != j:
                    gaps.setdefault(abs(i - j), []).append(matrix[i, j])
        mean_by_gap = {gap: float(np.mean(values)) for gap, values in gaps.items()}
        result.extras[f"{name}_mean_kl_by_gap"] = mean_by_gap
        result.add_note(
            f"{name}: mean KL for adjacent days {mean_by_gap.get(1, float('nan')):.4f}, "
            f"for the largest gap {mean_by_gap.get(days - 1, float('nan')):.4f}"
        )
    return result


def run_fig17_drift_shift(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    methods: tuple[str, ...] = ("hash", "cafe", "adaembed"),
    compression_ratios: tuple[float, ...] = (5.0, 10.0, 50.0),
    iteration_ratio: float = 50.0,
) -> ExperimentResult:
    """CriteoTB-1/3: keep every third day to amplify distribution shift."""
    result = ExperimentResult(
        experiment_id="fig17",
        title="Experiments on CriteoTB-1/3 (stronger distribution shift)",
    )
    dataset = build_dataset("criteotb", scale=scale, seed=seeds[0])
    # Keep days 0, 3, 6, ... plus the original last day as the test day,
    # mirroring the paper's "days 1,4,7,...,22 + unchanged test data".
    subsampled = list(range(0, dataset.num_days - 1, 3))
    full_days = dataset.schema.num_days
    spec = get_scale(scale)

    for method in methods:
        for ratio in compression_ratios:
            losses, aucs, feasible = [], [], True
            history = None
            for seed in seeds:
                outcome = _run_on_days(dataset, method, ratio, subsampled, scale, seed)
                if not outcome.feasible:
                    feasible = False
                    break
                losses.append(outcome.train_loss)
                aucs.append(outcome.test_auc)
                history = outcome.history
            if not feasible:
                result.add_row(method=method, compression_ratio=ratio, feasible=False)
                continue
            row = {
                "method": method,
                "compression_ratio": ratio,
                "train_loss": round(float(np.mean(losses)), 4),
                "test_auc": round(float(np.mean(aucs)), 4),
                "feasible": True,
            }
            if ratio == iteration_ratio:
                # Serve-while-train columns: probe the online pipeline under
                # the same amplified-drift stream at the focus ratio.
                row.update(
                    _serve_while_train_columns(dataset, method, ratio, subsampled, scale, seeds[0])
                )
            result.add_row(**row)
            if ratio == iteration_ratio and history is not None:
                result.extras[f"{method}_loss_curve"] = history.smoothed_losses(window=10)
    result.add_note(
        f"training days subsampled 1-in-3 from {full_days} days; test day unchanged "
        f"({spec.samples_per_day} samples/day)"
    )
    result.add_note(
        "swt_p95_ms / publish_p50_ms / staleness_steps (focus-ratio rows): serve-while-train "
        "probe latency, snapshot publish latency and worst snapshot staleness of an "
        "OnlinePipeline run over the drifted stream"
    )
    result.add_note(
        "replica_speedup_2x / burst_p99_ms (focus-ratio rows): replicated-tier replay of "
        "the drift-trained model — 2-replica saturated-throughput speedup and p99 under "
        "a 4x flash crowd with the SLO controller adapting"
    )
    return result


def _serve_while_train_columns(dataset, method, ratio, days, scale, seed) -> dict:
    """OnlinePipeline metrics for one method under the drifted day-stream."""
    from repro.errors import MemoryBudgetError
    from repro.experiments.common import build_embedding, build_model
    from repro.runtime.pipeline import OnlinePipeline, PipelineConfig
    from repro.training.latency import measure_replicated_serving

    spec = get_scale(scale)
    try:
        embedding = build_embedding(method, dataset, ratio, seed=seed)
    except MemoryBudgetError:
        return {}
    model = build_model("dlrm", embedding, dataset.schema, seed=seed)
    pipeline = OnlinePipeline(
        model,
        config=PipelineConfig(
            publish_every_steps=5, probe_every_steps=2, serving_micro_batch=64, max_steps=20
        ),
    )
    report = pipeline.run(
        dataset.training_stream(spec.batch_size, days=days),
        probe_batch=dataset.test_batch(num_samples=64),
    )
    probe = report.probe_stats or {}
    replica = measure_replicated_serving(model, dataset.schema, requests=800, seed=seed)
    return {
        "swt_p95_ms": round(float(probe.get("p95_ms", float("nan"))), 3),
        "publish_p50_ms": round(report.publish_percentile_ms(50.0), 3),
        "staleness_steps": report.max_staleness_steps,
        "replica_speedup_2x": round(replica["replica_speedup_2x"], 3),
        "burst_p99_ms": round(replica["burst_p99_ms"], 3),
    }


def _run_on_days(dataset, method, ratio, days, scale, seed):
    """Run one configuration with a restricted list of training days."""
    from repro.experiments.common import ScaleSpec, build_embedding, build_model
    from repro.errors import MemoryBudgetError
    from repro.training.config import TrainingConfig
    from repro.training.trainer import train_and_evaluate
    from repro.experiments.common import RunOutcome
    from repro.training.trainer import TrainingHistory

    spec = get_scale(scale)
    config = TrainingConfig(batch_size=spec.batch_size, seed=seed)
    try:
        embedding = build_embedding(
            method,
            dataset,
            ratio,
            seed=seed,
            optimizer=config.sparse_optimizer,
            learning_rate=config.sparse_learning_rate,
        )
    except MemoryBudgetError as exc:
        return RunOutcome(
            method=method,
            compression_ratio=ratio,
            achieved_ratio=float("nan"),
            train_loss=float("nan"),
            test_auc=float("nan"),
            test_log_loss=float("nan"),
            history=TrainingHistory(),
            feasible=False,
            failure_reason=str(exc),
        )
    model = build_model("dlrm", embedding, dataset.schema, seed=seed)
    stream = dataset.training_stream(spec.batch_size, days=days)
    test_batch = dataset.test_batch(num_samples=spec.test_samples)
    results = train_and_evaluate(model, stream, test_batch, config=config)
    return RunOutcome(
        method=method,
        compression_ratio=ratio,
        achieved_ratio=embedding.compression_ratio(),
        train_loss=results["train_loss"],
        test_auc=results["test_auc"],
        test_log_loss=results["test_log_loss"],
        history=results["history"],
    )

"""Ablations of CAFE's design choices beyond the paper's Figure 15.

The paper motivates several design decisions that Figure 15 only partially
quantifies.  These runners isolate them end to end on the Criteo preset:

* ``slots-per-bucket`` — Corollary 3.5 predicts an optimum trade-off between
  few large buckets and many small ones at fixed sketch memory; Figure 18(a)
  measures it on raw streams, this ablation measures its end-to-end effect on
  model quality.
* ``migration`` — disabling demotion/eviction handling reduces CAFE to a
  "first features to cross the threshold keep their rows forever" scheme,
  quantifying how much the adaptive migration of §3.3 actually contributes.
* ``decay`` — with no score decay the sketch never forgets, which hurts under
  distribution drift.
"""

from __future__ import annotations

import numpy as np

from repro.data.drift import RotatingDrift
from repro.experiments.common import build_dataset, get_scale, run_single
from repro.experiments.reporting import ExperimentResult


def run_ablation_slots_per_bucket(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    compression_ratio: float = 50.0,
    slots_options: tuple[int, ...] = (1, 2, 4, 8),
) -> ExperimentResult:
    """End-to-end model quality as a function of HotSketch's slots per bucket."""
    result = ExperimentResult(
        experiment_id="ablation_slots",
        title="CAFE ablation: HotSketch slots per bucket (fixed sketch memory)",
    )
    dataset = build_dataset("criteo", scale=scale, seed=seeds[0])
    for slots in slots_options:
        losses, aucs = [], []
        for seed in seeds:
            outcome = run_single(
                dataset,
                "cafe",
                compression_ratio,
                scale=scale,
                seed=seed,
                embedding_kwargs={"slots_per_bucket": slots},
            )
            losses.append(outcome.train_loss)
            aucs.append(outcome.test_auc)
        result.add_row(
            slots_per_bucket=slots,
            train_loss=round(float(np.mean(losses)), 4),
            test_auc=round(float(np.mean(aucs)), 4),
        )
    result.add_note("the paper adopts 4 slots per bucket as the recall/throughput sweet spot (§5.6)")
    return result


def run_ablation_adaptivity(
    scale: str = "tiny",
    seeds: tuple[int, ...] = (0,),
    compression_ratio: float = 50.0,
    drift_swap_fraction: float = 0.15,
) -> ExperimentResult:
    """Contribution of migration and decay under strong distribution drift."""
    result = ExperimentResult(
        experiment_id="ablation_adaptivity",
        title="CAFE ablation: migration and decay under distribution drift",
    )
    spec = get_scale(scale)
    drift = RotatingDrift(swap_fraction=drift_swap_fraction, seed=seeds[0] + 1)
    dataset = build_dataset("criteo", scale=scale, seed=seeds[0], drift=drift)

    variants = {
        # Full CAFE: adaptive threshold, frequent rebalance, decaying scores.
        "cafe": {},
        # No decay: scores accumulate forever, old hot features never fade.
        "cafe_no_decay": {"decay": 1.0},
        # Frozen assignment: an absurdly long rebalance interval means features
        # that grab exclusive rows early keep them regardless of later drift.
        "cafe_no_migration": {"rebalance_interval": 10_000_000, "hot_threshold": 1.0},
        # Static hash baseline for reference.
        "hash": None,
    }
    for name, kwargs in variants.items():
        method = "hash" if kwargs is None else "cafe"
        losses, aucs = [], []
        for seed in seeds:
            outcome = run_single(
                dataset,
                method,
                compression_ratio,
                scale=scale,
                seed=seed,
                embedding_kwargs=kwargs or {},
            )
            losses.append(outcome.train_loss)
            aucs.append(outcome.test_auc)
        result.add_row(
            variant=name,
            train_loss=round(float(np.mean(losses)), 4),
            test_auc=round(float(np.mean(aucs)), 4),
        )
    result.add_note(
        f"stream uses an amplified drift (swap fraction {drift_swap_fraction}); "
        f"{spec.samples_per_day} samples/day"
    )
    return result

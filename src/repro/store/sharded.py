"""Hash-partitioned sharding of any embedding backend.

A :class:`ShardedEmbeddingStore` splits the global feature-id space across
``N`` shards with a SplitMix64 hash; each shard is a full
:class:`~repro.embeddings.base.CompressedEmbedding` of any scheme (CAFE,
AdaEmbed, MDE, Q-R, hash, full) holding ``1/N`` of the total memory budget.
The store itself is also a ``CompressedEmbedding``, so the routing-plan
engine from the embedding layer applies at *both* levels:

* the store caches the shard partition of a batch (one hash + one stable
  sort per training step, shared by ``lookup`` and ``apply_gradients``);
* each shard backend caches its own per-sub-batch routing plan, because the
  store hands it the identical sub-batch in both halves of the step.

With one shard the store skips partitioning entirely and delegates to the
backend, which keeps the default configuration bit-exact with the historical
direct-embedding path.

Snapshots are copy-on-write: :meth:`ShardedEmbeddingStore.snapshot` is O(1)
(it freezes the current shard objects); the first ``apply_gradients`` that
touches a frozen shard replaces it with a private deep copy, leaving the
frozen object immutable for every outstanding snapshot.

Per-shard work — ``lookup``, ``apply_gradients``, :meth:`ShardedEmbedding
Store.rebalance` and :meth:`ShardedEmbeddingStore.merged_sketch` — is fanned
out through a pluggable :class:`~repro.runtime.executor.ShardExecutor`
(serial by default; a thread pool overlaps per-shard stalls).  The fan-out
is safe without shard-level locking because the tasks of one operation touch
disjoint shard objects, and all store-level bookkeeping (plan cache,
copy-on-write swaps, step counter) happens on the calling thread before or
after the fan-out.

With a :class:`~repro.runtime.process.ProcessShardExecutor` the store goes
*remote*: the shard objects are adopted into pinned worker processes
(tables in shared memory) and ``self._shards`` holds
:class:`~repro.runtime.process.ShardHandle` proxies instead.  Hot paths
batch one op per shard through ``run_ops``; ``snapshot()`` swaps the
copy-on-write discipline for *sealed generations* — the workers freeze
their current segments, the parent maps them read-only, and the returned
:class:`~repro.store.snapshot.StoreSnapshot` is bit-exact with the serial
one while training keeps writing fresh generations.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from repro.analysis.sanitizer import freeze_arrays, single_writer
from repro.api import registry as capability_registry
from repro.embeddings.base import CompressedEmbedding
from repro.embeddings.plan import PlanStats
from repro.runtime.executor import SerialShardExecutor, ShardExecutor, create_executor
from repro.store.base import EmbeddingStore
from repro.store.grad_exchange import GRAD_EXCHANGE_MODES
from repro.store.snapshot import StoreSnapshot
from repro.utils.hashing import hash_to_range

#: Default seed of the id -> shard hash (distinct from every backend seed so
#: shard assignment is independent of intra-shard routing).
DEFAULT_SHARD_SEED = 2029


def partition_by_shard(
    flat_ids: np.ndarray, num_shards: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Group a flat id batch by owning shard.

    Returns ``(order, starts)``: ``order`` is a stable permutation sorting
    the batch by shard, and ``starts`` has ``num_shards + 1`` entries so that
    ``order[starts[s]:starts[s + 1]]`` indexes shard ``s``'s sub-batch.
    """
    shard_of = hash_to_range(flat_ids, num_shards, seed=seed)
    order = np.argsort(shard_of, kind="stable")
    starts = np.searchsorted(shard_of[order], np.arange(num_shards + 1))
    return order, starts


class ShardedEmbeddingStore(CompressedEmbedding, EmbeddingStore):
    """N hash-partitioned embedding shards behind one store interface."""

    def __init__(
        self,
        shards: Sequence[CompressedEmbedding],
        shard_seed: int = DEFAULT_SHARD_SEED,
        executor: ShardExecutor | str | None = None,
        grad_exchange: str = "dense",
    ):
        if grad_exchange not in GRAD_EXCHANGE_MODES:
            raise ValueError(
                f"unknown grad_exchange mode '{grad_exchange}'; "
                f"expected one of {GRAD_EXCHANGE_MODES}"
            )
        shards = list(shards)
        if not shards:
            raise ValueError("ShardedEmbeddingStore requires at least one shard")
        dims = {shard.dim for shard in shards}
        features = {shard.num_features for shard in shards}
        if len(dims) != 1 or len(features) != 1:
            raise ValueError(
                f"all shards must agree on (num_features, dim); got dims={sorted(dims)}, "
                f"num_features={sorted(features)}"
            )
        super().__init__(shards[0].num_features, shards[0].dim, dtype=shards[0].dtype)
        self._shards = shards
        self.num_shards = len(shards)
        self.shard_seed = int(shard_seed)
        self.grad_exchange = grad_exchange
        # The most recent step's per-shard gradient sketches merged by
        # addition (sketched exchange only); see merged_grad_sketch().
        self._grad_sketch = None
        if executor is None:
            executor = SerialShardExecutor()
        elif isinstance(executor, str):
            executor = create_executor(executor)
        self.executor = executor
        # Shards become frozen (shared with a snapshot) when snapshot() runs;
        # the first write afterwards swaps in a private copy.
        self._cow_pending = [False] * self.num_shards
        self.snapshots_taken = 0
        self.cow_copies = 0
        # Optional per-shard record of fused-scatter target rows (the delta
        # publisher's O(churn) diff source); None until enable_write_log().
        self._write_log: list[list[np.ndarray] | None] | None = None
        if self.num_shards == 1:
            # The delegating fast path never touches the store-level plan
            # cache, so surface the backend's stats instead.
            self.plan_stats = self._shards[0].plan_stats
        self._remote = False
        self._adopt_if_remote()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        method: str,
        num_features: int,
        dim: int,
        num_shards: int,
        compression_ratio: float = 1.0,
        shard_seed: int = DEFAULT_SHARD_SEED,
        seed: int = 0,
        executor: ShardExecutor | str | None = None,
        grad_exchange: str = "dense",
        **kwargs,
    ) -> "ShardedEmbeddingStore":
        """Build ``num_shards`` shards of ``method`` splitting one budget.

        Every shard keeps the *global* id space (ids are not re-indexed; the
        shard hash decides ownership) but receives ``1/num_shards`` of the
        total float budget, which is expressed by scaling the per-shard
        compression ratio.  ``executor`` selects the fan-out runtime
        (``"serial"``, ``"thread"``, or a :class:`~repro.runtime.executor.
        ShardExecutor` instance).  Remaining ``kwargs`` are forwarded to
        :func:`repro.embeddings.create_embedding` (e.g. ``optimizer``,
        ``field_cardinalities``).
        """
        from repro.embeddings import create_embedding

        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        shards = [
            create_embedding(
                method,
                num_features=num_features,
                dim=dim,
                compression_ratio=compression_ratio * num_shards,
                rng=np.random.default_rng(seed + 7919 * index),
                **kwargs,
            )
            for index in range(num_shards)
        ]
        return cls(
            shards, shard_seed=shard_seed, executor=executor, grad_exchange=grad_exchange
        )

    @property
    def shards(self) -> tuple[CompressedEmbedding, ...]:
        return tuple(self._shards)

    # ------------------------------------------------------------------ #
    # Routing (store level: the shard partition)
    # ------------------------------------------------------------------ #
    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        order, starts = partition_by_shard(flat_ids, self.num_shards, self.shard_seed)
        return {"order": order, "starts": starts}

    def _shard_slices(self, plan):
        """Yield ``(shard_index, sub_batch_index_array)`` for non-empty shards."""
        order = plan.routes["order"]
        starts = plan.routes["starts"]
        for shard_index in range(self.num_shards):
            idx = order[starts[shard_index]: starts[shard_index + 1]]
            if idx.size:
                yield shard_index, idx

    # ------------------------------------------------------------------ #
    # Process-parallel runtime (remote shards)
    # ------------------------------------------------------------------ #
    @property
    def remote(self) -> bool:
        """True when the shards live in worker processes behind proxies."""
        return self._remote

    def _adopt_if_remote(self) -> None:
        if not getattr(self.executor, "is_process_executor", False):
            return
        for shard in self._shards:
            if not capability_registry.supports_process_parallel(shard):
                raise ValueError(
                    f"shard backend {type(shard).__name__} opts out of the process "
                    "executor (supports_process_parallel=False); use 'serial' or "
                    "'threads' instead"
                )
        self._shards = list(self.executor.adopt_units(self._shards, kind="shard"))
        self._remote = True
        self._cow_pending = [False] * self.num_shards
        # Worker-side plans are out of reach; delta publishers fall back to
        # row diffs against the sealed generations.
        self._write_log = None
        if self.num_shards == 1:
            # The backend's plan cache now lives in the worker; its reuse
            # rate is surfaced through describe() instead of this alias.
            self.plan_stats = PlanStats()

    def _shard_supports(self, shard, capability: str) -> bool:
        """Capability check that works for both local shards and proxies.

        Proxies carry the capabilities probed on the real backend at adopt
        time (a structural probe on the proxy would always say yes).
        """
        caps = getattr(shard, "caps", None)
        if caps is not None:
            return bool(caps.get(capability, False))
        if capability == "sketch":
            return capability_registry.supports_sketch(shard)
        return getattr(capability_registry, "supports_" + capability)(shard)

    # ------------------------------------------------------------------ #
    # EmbeddingStore / CompressedEmbedding interface
    # ------------------------------------------------------------------ #
    def set_executor(self, executor: ShardExecutor | str) -> None:
        """Swap the fan-out runtime (``"serial"``, ``"threads"``,
        ``"processes"``, or an instance).

        Leaving a process executor first pulls every shard back out of its
        worker (bit-exact, private arrays); entering one adopts the shards
        into fresh workers.
        """
        if isinstance(executor, str):
            executor = create_executor(executor)
        if self._remote:
            self._shards = list(self.executor.release_units())
            self._remote = False
            if self.num_shards == 1:
                self.plan_stats = self._shards[0].plan_stats
        self.executor.close()
        self.executor = executor
        self._adopt_if_remote()

    def set_kernel_backend(self, name: str) -> str:
        """Switch every shard's fused kernel backend (``"numpy"``, ``"numba"``,
        ``"auto"`` or a registered third-party name); returns the resolved
        name.  Remote shards are switched worker-side through ``run_ops``.
        No table values change — the backends are bit-compatible by the
        kernel contract — so copy-on-write bookkeeping is untouched.
        """
        from repro.kernels import resolve_kernel_backend_name

        resolved = resolve_kernel_backend_name(name)
        if self._remote:
            self.executor.run_ops(
                [
                    (shard_index, "set_kernel_backend", (resolved,))
                    for shard_index in range(self.num_shards)
                ]
            )
        else:
            for shard in self._shards:
                if capability_registry.supports_kernel_backend(shard):
                    shard.set_kernel_backend(resolved)
        return resolved

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather embeddings from every owning shard; see the base contract.

        The shard partition of the batch is computed (or reused from the
        plan cache) on the calling thread; per-shard gathers then run
        through :attr:`executor`.  Each task writes a disjoint row subset of
        the output array, so threaded execution needs no synchronisation.
        """
        ids = self._check_ids(ids)
        if self.num_shards == 1:
            return self._shards[0].lookup(ids)
        plan = self.plan_for(ids)
        out = np.empty((len(plan), self.dim), dtype=self.dtype)
        if self._remote:
            slices = list(self._shard_slices(plan))
            results = self.executor.run_ops(
                [
                    (shard_index, "lookup", (plan.flat_ids[idx],))
                    for shard_index, idx in slices
                ]
            )
            for (shard_index, idx), vectors in zip(slices, results):
                out[idx] = vectors  # copies out of the response arena
            return out.reshape(plan.ids_shape + (self.dim,))

        def gather(shard, idx):
            out[idx] = shard.lookup(plan.flat_ids[idx])

        self.executor.run(
            [
                (shard_index, lambda s=self._shards[shard_index], i=idx: gather(s, i))
                for shard_index, idx in self._shard_slices(plan)
            ]
        )
        return out.reshape(plan.ids_shape + (self.dim,))

    @single_writer
    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Scatter per-lookup gradients to the owning shards.

        Copy-on-write swaps (:meth:`_ensure_private`) happen serially on the
        calling thread *before* the fan-out, so outstanding snapshots never
        observe a write and the executor tasks only ever touch private,
        mutually disjoint shard objects.
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        if self.grad_exchange == "sketched":
            self._apply_gradients_sketched(ids, grads)
            return
        from repro.store.grad_exchange import dense_payload_bytes

        if self.num_shards == 1:
            self._ensure_private(0)
            self._shards[0].apply_gradients(ids, grads)
            if self._write_log is not None:
                self._log_write(0)
            self.executor.stats.record_grad_exchange(
                dense_payload_bytes(ids, grads), "dense"
            )
            self._step += 1
            return
        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        payload_bytes = sum(
            dense_payload_bytes(plan.flat_ids[idx], flat_grads[idx])
            for _, idx in self._shard_slices(plan)
        )
        if self._remote:
            self.executor.run_ops(
                [
                    (shard_index, "apply_gradients", (plan.flat_ids[idx], flat_grads[idx]))
                    for shard_index, idx in self._shard_slices(plan)
                ]
            )
            self.executor.stats.record_grad_exchange(payload_bytes, "dense")
            self._step += 1
            return
        tasks = []
        for shard_index, idx in self._shard_slices(plan):
            self._ensure_private(shard_index)
            shard = self._shards[shard_index]
            tasks.append(
                (
                    shard_index,
                    lambda s=shard, i=idx: s.apply_gradients(plan.flat_ids[i], flat_grads[i]),
                )
            )
        self.executor.run(tasks)
        if self._write_log is not None:
            for shard_index, _ in tasks:
                self._log_write(shard_index)
        self.executor.stats.record_grad_exchange(payload_bytes, "dense")
        self._step += 1

    def _apply_gradients_sketched(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Sketched exchange: fold, ship compact payloads, recover shard-side.

        Per shard the trainer folds the sub-batch's deduplicated gradients
        into a fixed-size :class:`~repro.sketch.CSVec`, ships
        ``(unique ids, exact heavy gradients, sketch)`` and the shard
        reconstructs — heavy rows exactly, tail rows from the sketch median.
        All shards share one ``(width, depth, seed)`` derived from the whole
        batch, so the per-shard sketches merge by addition into the global
        per-step gradient sketch exposed by :meth:`merged_grad_sketch`.
        The build/recover math is identical on every executor; only the
        transport differs (shm arena for processes, in-process otherwise).
        """
        from repro.sketch.csvec import CSVec
        from repro.store.grad_exchange import (
            apply_sketched_payload,
            build_sketched_payload,
            exchange_width,
        )

        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        width = exchange_width(np.unique(plan.flat_ids).size)
        seed = self.shard_seed + 7  # one exchange hash family per store
        slices = list(self._shard_slices(plan))
        payloads = [
            build_sketched_payload(
                plan.flat_ids[idx], flat_grads[idx], width=width, seed=seed
            )
            for _, idx in slices
        ]
        if self._remote:
            self.executor.run_ops(
                [
                    (
                        shard_index,
                        "apply_sketched_gradients",
                        (*payload.arrays(), payload.seed),
                    )
                    for (shard_index, _), payload in zip(slices, payloads)
                ]
            )
        else:
            tasks = []
            for (shard_index, _), payload in zip(slices, payloads):
                self._ensure_private(shard_index)
                shard = self._shards[shard_index]
                tasks.append(
                    (shard_index, lambda s=shard, p=payload: apply_sketched_payload(s, p))
                )
            self.executor.run(tasks)
            if self._write_log is not None:
                for shard_index, _ in tasks:
                    self._log_write(shard_index)
        self._grad_sketch = CSVec.merge_all(
            [
                CSVec.from_state(p.sketch_table, p.sketch_counts, p.seed)
                for p in payloads
            ]
        )
        self.executor.stats.record_grad_exchange(
            sum(payload.nbytes() for payload in payloads), "sketched"
        )
        self._step += 1

    def merged_grad_sketch(self):
        """The last step's shard gradient sketches merged by addition.

        ``None`` until a sketched-exchange step ran.  Heavy rows of the
        *global* batch can be recovered from it
        (:meth:`~repro.sketch.CSVec.heavy_hitters` /
        :meth:`~repro.sketch.CSVec.query`) without re-touching any shard.
        """
        return self._grad_sketch

    @single_writer
    def rebalance(self) -> bool:
        """Fan one explicit adaptivity pass out across all shards.

        Counts as a write: a shard still shared with a snapshot is
        privatised first — but only if its backend declares the
        ``supports_rebalance`` capability (:mod:`repro.api.registry`), so
        the call is free (no copies, no tasks) on static backends.  Returns
        ``True`` if at least one shard performed a rebalance.
        """
        supported = [
            shard_index
            for shard_index in range(self.num_shards)
            if self._shard_supports(self._shards[shard_index], "rebalance")
        ]
        if not supported:
            return False
        if self._remote:
            results = self.executor.run_ops(
                [(shard_index, "rebalance", ()) for shard_index in supported]
            )
        else:
            for shard_index in supported:
                self._ensure_private(shard_index)
            results = self.executor.run(
                [(shard_index, self._shards[shard_index].rebalance) for shard_index in supported]
            )
        for shard_index in supported:
            # Row migration rewrites state outside the scatter path.
            self._poison_write_log(shard_index)
        self.invalidate_plan()
        return any(results)

    def memory_floats(self) -> int:
        """Sum of all shard footprints (each shard holds 1/N of the budget)."""
        return int(sum(shard.memory_floats() for shard in self._shards))

    # ------------------------------------------------------------------ #
    # Write log (delta-snapshot extraction)
    # ------------------------------------------------------------------ #
    def enable_write_log(self) -> bool:
        """Start recording which table rows each ``apply_gradients`` hits.

        The delta publisher (:mod:`repro.serving.delta`) drains the log at
        every publish and compares only those rows between snapshots, so
        extraction cost follows hot-set churn instead of table size.  The
        log is *exact*, not sampled: rows are read from the same scatter
        plan the write just executed, inside this store's own methods, so
        no interleaving can slip a write past it.  Mutations that bypass
        the scatter path (:meth:`rebalance`, :meth:`load_state_dict`)
        poison the affected shards' logs, which downgrades them to a full
        row diff on the next publish — slower, never wrong.

        Returns ``False`` (and records nothing) under the process executor:
        worker-side plans are out of reach, and sealed generations make the
        publisher's row-diff fallback the honest path there.
        """
        if self._remote:
            return False
        if self._write_log is None:
            self._write_log = [[] for _ in range(self.num_shards)]
        return True

    def drain_write_log(self) -> list[np.ndarray | None] | None:
        """Per-shard unique written rows since the last drain (then reset).

        ``None`` entries mark shards whose log was poisoned; an overall
        ``None`` means logging is off.  Draining also clears poison — it
        only ever applies to the interval that contained the bypassing
        mutation.
        """
        if self._write_log is None:
            return None
        drained: list[np.ndarray | None] = []
        for entries in self._write_log:
            if entries is None:
                drained.append(None)
            elif entries:
                drained.append(np.unique(np.concatenate(entries)))
            else:
                drained.append(np.empty(0, dtype=np.int64))
        self._write_log = [[] for _ in range(self.num_shards)]
        return drained

    def _log_write(self, shard_index: int) -> None:
        log = self._write_log
        if log is None or log[shard_index] is None:
            return
        plan = getattr(self._shards[shard_index], "_cached_plan", None)
        scatter = plan.routes.get("scatter") if plan is not None else None
        if scatter is None:
            # The backend routed without a scatter plan; coverage unprovable.
            log[shard_index] = None
            return
        log[shard_index].append(np.asarray(scatter.rows, dtype=np.int64))

    def _poison_write_log(self, shard_index: int | None = None) -> None:
        if self._write_log is None:
            return
        if shard_index is None:
            self._write_log = [None] * self.num_shards
        else:
            self._write_log[shard_index] = None

    # ------------------------------------------------------------------ #
    # Snapshots (copy-on-write)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> StoreSnapshot:
        """Freeze the current parameters into a read-only serving view.

        O(1): no tables are copied here.  The store marks every shard as
        shared; training's next write to a shard replaces it with a private
        deep copy (:attr:`cow_copies` counts those), so the returned view
        keeps serving exactly the values visible now.

        Under the process executor the same contract is kept by *sealed
        generations* instead: every worker seals its current shared-memory
        segment (the parent maps it read-only and grafts it into a frozen
        shard clone) and continues training in a fresh writable generation,
        so no copy-on-write is needed afterwards.
        """
        self.snapshots_taken += 1
        if self._remote:
            shards = tuple(self.executor.seal_units())
        else:
            self._cow_pending = [True] * self.num_shards
            shards = tuple(self._shards)
        view = StoreSnapshot(
            shards=shards,
            shard_seed=self.shard_seed,
            dim=self.dim,
            num_features=self.num_features,
            dtype=self.dtype,
            version=self.snapshots_taken,
            step=self._step,
        )
        # Published arrays are read-only from here on: a stray serve-path
        # write raises instead of corrupting readers.  Training thaws shards
        # naturally — the COW deep copy yields private writable arrays.
        freeze_arrays(view)
        return view

    def _ensure_private(self, shard_index: int) -> None:
        if self._remote or not self._cow_pending[shard_index]:
            return
        self._shards[shard_index] = copy.deepcopy(self._shards[shard_index])
        self._cow_pending[shard_index] = False
        self.cow_copies += 1
        if self.num_shards == 1:
            self.plan_stats = self._shards[0].plan_stats

    # ------------------------------------------------------------------ #
    # Introspection / checkpointing
    # ------------------------------------------------------------------ #
    def merged_sketch(self):
        """One global HotSketch merged from all sketch-carrying shards.

        Per-shard sketch retrieval fans out through :attr:`executor` (for a
        remote shard this is the expensive half); the pairwise SpaceSaving
        merge then runs on the calling thread.  Only meaningful when the
        shards are CAFE-style backends; returns ``None`` when no shard
        exposes a sketch.
        """
        supported = [
            shard_index
            for shard_index, shard in enumerate(self._shards)
            if self._shard_supports(shard, "sketch")
        ]
        if not supported:
            return None
        if self._remote:
            sketches = self.executor.run_ops(
                [(shard_index, "sketch", ()) for shard_index in supported]
            )
        else:
            sketches = self.executor.run(
                [
                    (shard_index, lambda s=self._shards[shard_index]: s.sketch)
                    for shard_index in supported
                ]
            )
        sketches = [sketch for sketch in sketches if sketch is not None]
        if not sketches:
            return None
        return type(sketches[0]).merge_all(sketches)

    def describe(self) -> dict[str, float | int | str]:
        info = super().describe()
        info["num_shards"] = self.num_shards
        first = self._shards[0]
        info["backend"] = getattr(first, "backend_class", None) or type(first).__name__
        info["executor"] = type(self.executor).__name__
        if self._remote:
            # Per-worker wall vs on-worker compute (IPC overhead) breakdown.
            info["executor_stats"] = self.executor.stats.as_dict()
        stats = self.executor.stats
        if stats.grad_steps:
            info["grad_exchange"] = {
                "mode": stats.grad_exchange_mode,
                "grad_bytes_per_step": round(stats.grad_bytes_per_step, 1),
            }
        return info

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flatten every shard's state under ``shard{i}.`` prefixes plus the
        shard-count header; the inverse of :meth:`load_state_dict`.
        """
        state: dict[str, np.ndarray] = {"num_shards": np.asarray(self.num_shards)}
        for index, shard in enumerate(self._shards):
            if not self._shard_supports(shard, "state_dict"):
                name = getattr(shard, "backend_class", None) or type(shard).__name__
                raise NotImplementedError(
                    f"shard backend {name} does not support state_dict"
                )
            for key, value in shard.state_dict().items():
                state[f"shard{index}.{key}"] = value
        return state

    @single_writer
    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore all shards from :meth:`state_dict` output (shard counts must
        match); also absorbs a pre-store single-layer checkpoint into a
        single-shard store.  Counts as a write for copy-on-write purposes.
        """
        if "num_shards" not in state:
            # Checkpoint written against a bare embedding layer (pre-store
            # format): only a single-shard store can absorb it.
            if self.num_shards != 1:
                raise ValueError(
                    "checkpoint has no shard layout and cannot be loaded into a "
                    f"{self.num_shards}-shard store"
                )
            self._load_into_shard(0, dict(state))
            self.invalidate_plan()
            return
        if int(state["num_shards"]) != self.num_shards:
            raise ValueError(
                f"checkpoint has {int(state['num_shards'])} shards, store has {self.num_shards}"
            )
        for index in range(self.num_shards):
            prefix = f"shard{index}."
            self._load_into_shard(
                index,
                {key[len(prefix):]: value for key, value in state.items() if key.startswith(prefix)},
            )
        self.invalidate_plan()

    def _load_into_shard(self, index: int, state: dict[str, np.ndarray]) -> None:
        # Restoring is a write: never mutate a shard a snapshot still serves.
        self._ensure_private(index)
        self._poison_write_log(index)
        shard = self._shards[index]
        if not self._shard_supports(shard, "load_state_dict"):
            name = getattr(shard, "backend_class", None) or type(shard).__name__
            raise ValueError(f"shard backend {name} cannot load a state dict")
        shard.load_state_dict(state)

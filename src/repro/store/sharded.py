"""Hash-partitioned sharding of any embedding backend.

A :class:`ShardedEmbeddingStore` splits the global feature-id space across
``N`` shards with a SplitMix64 hash; each shard is a full
:class:`~repro.embeddings.base.CompressedEmbedding` of any scheme (CAFE,
AdaEmbed, MDE, Q-R, hash, full) holding ``1/N`` of the total memory budget.
The store itself is also a ``CompressedEmbedding``, so the routing-plan
engine from the embedding layer applies at *both* levels:

* the store caches the shard partition of a batch (one hash + one stable
  sort per training step, shared by ``lookup`` and ``apply_gradients``);
* each shard backend caches its own per-sub-batch routing plan, because the
  store hands it the identical sub-batch in both halves of the step.

With one shard the store skips partitioning entirely and delegates to the
backend, which keeps the default configuration bit-exact with the historical
direct-embedding path.

Snapshots are copy-on-write: :meth:`ShardedEmbeddingStore.snapshot` is O(1)
(it freezes the current shard objects); the first ``apply_gradients`` that
touches a frozen shard replaces it with a private deep copy, leaving the
frozen object immutable for every outstanding snapshot.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from repro.embeddings.base import CompressedEmbedding
from repro.store.base import EmbeddingStore
from repro.store.snapshot import StoreSnapshot
from repro.utils.hashing import hash_to_range

#: Default seed of the id -> shard hash (distinct from every backend seed so
#: shard assignment is independent of intra-shard routing).
DEFAULT_SHARD_SEED = 2029


def partition_by_shard(
    flat_ids: np.ndarray, num_shards: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Group a flat id batch by owning shard.

    Returns ``(order, starts)``: ``order`` is a stable permutation sorting
    the batch by shard, and ``starts`` has ``num_shards + 1`` entries so that
    ``order[starts[s]:starts[s + 1]]`` indexes shard ``s``'s sub-batch.
    """
    shard_of = hash_to_range(flat_ids, num_shards, seed=seed)
    order = np.argsort(shard_of, kind="stable")
    starts = np.searchsorted(shard_of[order], np.arange(num_shards + 1))
    return order, starts


class ShardedEmbeddingStore(CompressedEmbedding, EmbeddingStore):
    """N hash-partitioned embedding shards behind one store interface."""

    def __init__(self, shards: Sequence[CompressedEmbedding], shard_seed: int = DEFAULT_SHARD_SEED):
        shards = list(shards)
        if not shards:
            raise ValueError("ShardedEmbeddingStore requires at least one shard")
        dims = {shard.dim for shard in shards}
        features = {shard.num_features for shard in shards}
        if len(dims) != 1 or len(features) != 1:
            raise ValueError(
                f"all shards must agree on (num_features, dim); got dims={sorted(dims)}, "
                f"num_features={sorted(features)}"
            )
        super().__init__(shards[0].num_features, shards[0].dim, dtype=shards[0].dtype)
        self._shards = shards
        self.num_shards = len(shards)
        self.shard_seed = int(shard_seed)
        # Shards become frozen (shared with a snapshot) when snapshot() runs;
        # the first write afterwards swaps in a private copy.
        self._cow_pending = [False] * self.num_shards
        self.snapshots_taken = 0
        self.cow_copies = 0
        if self.num_shards == 1:
            # The delegating fast path never touches the store-level plan
            # cache, so surface the backend's stats instead.
            self.plan_stats = self._shards[0].plan_stats

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        method: str,
        num_features: int,
        dim: int,
        num_shards: int,
        compression_ratio: float = 1.0,
        shard_seed: int = DEFAULT_SHARD_SEED,
        seed: int = 0,
        **kwargs,
    ) -> "ShardedEmbeddingStore":
        """Build ``num_shards`` shards of ``method`` splitting one budget.

        Every shard keeps the *global* id space (ids are not re-indexed; the
        shard hash decides ownership) but receives ``1/num_shards`` of the
        total float budget, which is expressed by scaling the per-shard
        compression ratio.  ``kwargs`` are forwarded to
        :func:`repro.embeddings.create_embedding` (e.g. ``optimizer``,
        ``field_cardinalities``).
        """
        from repro.embeddings import create_embedding

        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        shards = [
            create_embedding(
                method,
                num_features=num_features,
                dim=dim,
                compression_ratio=compression_ratio * num_shards,
                rng=np.random.default_rng(seed + 7919 * index),
                **kwargs,
            )
            for index in range(num_shards)
        ]
        return cls(shards, shard_seed=shard_seed)

    @property
    def shards(self) -> tuple[CompressedEmbedding, ...]:
        return tuple(self._shards)

    # ------------------------------------------------------------------ #
    # Routing (store level: the shard partition)
    # ------------------------------------------------------------------ #
    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        order, starts = partition_by_shard(flat_ids, self.num_shards, self.shard_seed)
        return {"order": order, "starts": starts}

    def _shard_slices(self, plan):
        """Yield ``(shard_index, sub_batch_index_array)`` for non-empty shards."""
        order = plan.routes["order"]
        starts = plan.routes["starts"]
        for shard_index in range(self.num_shards):
            idx = order[starts[shard_index]: starts[shard_index + 1]]
            if idx.size:
                yield shard_index, idx

    # ------------------------------------------------------------------ #
    # EmbeddingStore / CompressedEmbedding interface
    # ------------------------------------------------------------------ #
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        if self.num_shards == 1:
            return self._shards[0].lookup(ids)
        plan = self.plan_for(ids)
        out = np.empty((len(plan), self.dim), dtype=self.dtype)
        for shard_index, idx in self._shard_slices(plan):
            out[idx] = self._shards[shard_index].lookup(plan.flat_ids[idx])
        return out.reshape(plan.ids_shape + (self.dim,))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        if self.num_shards == 1:
            self._ensure_private(0)
            self._shards[0].apply_gradients(ids, grads)
            self._step += 1
            return
        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        for shard_index, idx in self._shard_slices(plan):
            self._ensure_private(shard_index)
            self._shards[shard_index].apply_gradients(plan.flat_ids[idx], flat_grads[idx])
        self._step += 1

    def memory_floats(self) -> int:
        return int(sum(shard.memory_floats() for shard in self._shards))

    # ------------------------------------------------------------------ #
    # Snapshots (copy-on-write)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> StoreSnapshot:
        """Freeze the current parameters into a read-only serving view.

        O(1): no tables are copied here.  The store marks every shard as
        shared; training's next write to a shard replaces it with a private
        deep copy (:attr:`cow_copies` counts those), so the returned view
        keeps serving exactly the values visible now.
        """
        self._cow_pending = [True] * self.num_shards
        self.snapshots_taken += 1
        return StoreSnapshot(
            shards=tuple(self._shards),
            shard_seed=self.shard_seed,
            dim=self.dim,
            num_features=self.num_features,
            dtype=self.dtype,
            version=self.snapshots_taken,
            step=self._step,
        )

    def _ensure_private(self, shard_index: int) -> None:
        if not self._cow_pending[shard_index]:
            return
        self._shards[shard_index] = copy.deepcopy(self._shards[shard_index])
        self._cow_pending[shard_index] = False
        self.cow_copies += 1
        if self.num_shards == 1:
            self.plan_stats = self._shards[0].plan_stats

    # ------------------------------------------------------------------ #
    # Introspection / checkpointing
    # ------------------------------------------------------------------ #
    def merged_sketch(self):
        """One global HotSketch merged from all sketch-carrying shards.

        Only meaningful when the shards are CAFE-style backends; returns
        ``None`` when no shard exposes a sketch.
        """
        sketches = [shard.sketch for shard in self._shards if hasattr(shard, "sketch")]
        if not sketches:
            return None
        return type(sketches[0]).merge_all(sketches)

    def describe(self) -> dict[str, float | int | str]:
        info = super().describe()
        info["num_shards"] = self.num_shards
        info["backend"] = type(self._shards[0]).__name__
        return info

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"num_shards": np.asarray(self.num_shards)}
        for index, shard in enumerate(self._shards):
            if not hasattr(shard, "state_dict"):
                raise NotImplementedError(
                    f"shard backend {type(shard).__name__} does not support state_dict"
                )
            for key, value in shard.state_dict().items():
                state[f"shard{index}.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "num_shards" not in state:
            # Checkpoint written against a bare embedding layer (pre-store
            # format): only a single-shard store can absorb it.
            if self.num_shards != 1:
                raise ValueError(
                    "checkpoint has no shard layout and cannot be loaded into a "
                    f"{self.num_shards}-shard store"
                )
            self._load_into_shard(0, dict(state))
            self.invalidate_plan()
            return
        if int(state["num_shards"]) != self.num_shards:
            raise ValueError(
                f"checkpoint has {int(state['num_shards'])} shards, store has {self.num_shards}"
            )
        for index in range(self.num_shards):
            prefix = f"shard{index}."
            self._load_into_shard(
                index,
                {key[len(prefix):]: value for key, value in state.items() if key.startswith(prefix)},
            )
        self.invalidate_plan()

    def _load_into_shard(self, index: int, state: dict[str, np.ndarray]) -> None:
        # Restoring is a write: never mutate a shard a snapshot still serves.
        self._ensure_private(index)
        shard = self._shards[index]
        if not hasattr(shard, "load_state_dict"):
            raise ValueError(f"shard backend {type(shard).__name__} cannot load a state dict")
        shard.load_state_dict(state)

"""Hash-partitioned sharding of any embedding backend.

A :class:`ShardedEmbeddingStore` splits the global feature-id space across
``N`` shards with a SplitMix64 hash; each shard is a full
:class:`~repro.embeddings.base.CompressedEmbedding` of any scheme (CAFE,
AdaEmbed, MDE, Q-R, hash, full) holding ``1/N`` of the total memory budget.
The store itself is also a ``CompressedEmbedding``, so the routing-plan
engine from the embedding layer applies at *both* levels:

* the store caches the shard partition of a batch (one hash + one stable
  sort per training step, shared by ``lookup`` and ``apply_gradients``);
* each shard backend caches its own per-sub-batch routing plan, because the
  store hands it the identical sub-batch in both halves of the step.

With one shard the store skips partitioning entirely and delegates to the
backend, which keeps the default configuration bit-exact with the historical
direct-embedding path.

Snapshots are copy-on-write: :meth:`ShardedEmbeddingStore.snapshot` is O(1)
(it freezes the current shard objects); the first ``apply_gradients`` that
touches a frozen shard replaces it with a private deep copy, leaving the
frozen object immutable for every outstanding snapshot.

Per-shard work — ``lookup``, ``apply_gradients``, :meth:`ShardedEmbedding
Store.rebalance` and :meth:`ShardedEmbeddingStore.merged_sketch` — is fanned
out through a pluggable :class:`~repro.runtime.executor.ShardExecutor`
(serial by default; a thread pool overlaps per-shard stalls).  The fan-out
is safe without shard-level locking because the tasks of one operation touch
disjoint shard objects, and all store-level bookkeeping (plan cache,
copy-on-write swaps, step counter) happens on the calling thread before or
after the fan-out.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from repro.api import registry as capability_registry
from repro.embeddings.base import CompressedEmbedding
from repro.runtime.executor import SerialShardExecutor, ShardExecutor, create_executor
from repro.store.base import EmbeddingStore
from repro.store.snapshot import StoreSnapshot
from repro.utils.hashing import hash_to_range

#: Default seed of the id -> shard hash (distinct from every backend seed so
#: shard assignment is independent of intra-shard routing).
DEFAULT_SHARD_SEED = 2029


def partition_by_shard(
    flat_ids: np.ndarray, num_shards: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Group a flat id batch by owning shard.

    Returns ``(order, starts)``: ``order`` is a stable permutation sorting
    the batch by shard, and ``starts`` has ``num_shards + 1`` entries so that
    ``order[starts[s]:starts[s + 1]]`` indexes shard ``s``'s sub-batch.
    """
    shard_of = hash_to_range(flat_ids, num_shards, seed=seed)
    order = np.argsort(shard_of, kind="stable")
    starts = np.searchsorted(shard_of[order], np.arange(num_shards + 1))
    return order, starts


class ShardedEmbeddingStore(CompressedEmbedding, EmbeddingStore):
    """N hash-partitioned embedding shards behind one store interface."""

    def __init__(
        self,
        shards: Sequence[CompressedEmbedding],
        shard_seed: int = DEFAULT_SHARD_SEED,
        executor: ShardExecutor | str | None = None,
    ):
        shards = list(shards)
        if not shards:
            raise ValueError("ShardedEmbeddingStore requires at least one shard")
        dims = {shard.dim for shard in shards}
        features = {shard.num_features for shard in shards}
        if len(dims) != 1 or len(features) != 1:
            raise ValueError(
                f"all shards must agree on (num_features, dim); got dims={sorted(dims)}, "
                f"num_features={sorted(features)}"
            )
        super().__init__(shards[0].num_features, shards[0].dim, dtype=shards[0].dtype)
        self._shards = shards
        self.num_shards = len(shards)
        self.shard_seed = int(shard_seed)
        if executor is None:
            executor = SerialShardExecutor()
        elif isinstance(executor, str):
            executor = create_executor(executor)
        self.executor = executor
        # Shards become frozen (shared with a snapshot) when snapshot() runs;
        # the first write afterwards swaps in a private copy.
        self._cow_pending = [False] * self.num_shards
        self.snapshots_taken = 0
        self.cow_copies = 0
        if self.num_shards == 1:
            # The delegating fast path never touches the store-level plan
            # cache, so surface the backend's stats instead.
            self.plan_stats = self._shards[0].plan_stats

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        method: str,
        num_features: int,
        dim: int,
        num_shards: int,
        compression_ratio: float = 1.0,
        shard_seed: int = DEFAULT_SHARD_SEED,
        seed: int = 0,
        executor: ShardExecutor | str | None = None,
        **kwargs,
    ) -> "ShardedEmbeddingStore":
        """Build ``num_shards`` shards of ``method`` splitting one budget.

        Every shard keeps the *global* id space (ids are not re-indexed; the
        shard hash decides ownership) but receives ``1/num_shards`` of the
        total float budget, which is expressed by scaling the per-shard
        compression ratio.  ``executor`` selects the fan-out runtime
        (``"serial"``, ``"thread"``, or a :class:`~repro.runtime.executor.
        ShardExecutor` instance).  Remaining ``kwargs`` are forwarded to
        :func:`repro.embeddings.create_embedding` (e.g. ``optimizer``,
        ``field_cardinalities``).
        """
        from repro.embeddings import create_embedding

        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        shards = [
            create_embedding(
                method,
                num_features=num_features,
                dim=dim,
                compression_ratio=compression_ratio * num_shards,
                rng=np.random.default_rng(seed + 7919 * index),
                **kwargs,
            )
            for index in range(num_shards)
        ]
        return cls(shards, shard_seed=shard_seed, executor=executor)

    @property
    def shards(self) -> tuple[CompressedEmbedding, ...]:
        return tuple(self._shards)

    # ------------------------------------------------------------------ #
    # Routing (store level: the shard partition)
    # ------------------------------------------------------------------ #
    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        order, starts = partition_by_shard(flat_ids, self.num_shards, self.shard_seed)
        return {"order": order, "starts": starts}

    def _shard_slices(self, plan):
        """Yield ``(shard_index, sub_batch_index_array)`` for non-empty shards."""
        order = plan.routes["order"]
        starts = plan.routes["starts"]
        for shard_index in range(self.num_shards):
            idx = order[starts[shard_index]: starts[shard_index + 1]]
            if idx.size:
                yield shard_index, idx

    # ------------------------------------------------------------------ #
    # EmbeddingStore / CompressedEmbedding interface
    # ------------------------------------------------------------------ #
    def set_executor(self, executor: ShardExecutor | str) -> None:
        """Swap the fan-out runtime (``"serial"``, ``"thread"``, or instance)."""
        if isinstance(executor, str):
            executor = create_executor(executor)
        self.executor.close()
        self.executor = executor

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Gather embeddings from every owning shard; see the base contract.

        The shard partition of the batch is computed (or reused from the
        plan cache) on the calling thread; per-shard gathers then run
        through :attr:`executor`.  Each task writes a disjoint row subset of
        the output array, so threaded execution needs no synchronisation.
        """
        ids = self._check_ids(ids)
        if self.num_shards == 1:
            return self._shards[0].lookup(ids)
        plan = self.plan_for(ids)
        out = np.empty((len(plan), self.dim), dtype=self.dtype)

        def gather(shard, idx):
            out[idx] = shard.lookup(plan.flat_ids[idx])

        self.executor.run(
            [
                (shard_index, lambda s=self._shards[shard_index], i=idx: gather(s, i))
                for shard_index, idx in self._shard_slices(plan)
            ]
        )
        return out.reshape(plan.ids_shape + (self.dim,))

    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Scatter per-lookup gradients to the owning shards.

        Copy-on-write swaps (:meth:`_ensure_private`) happen serially on the
        calling thread *before* the fan-out, so outstanding snapshots never
        observe a write and the executor tasks only ever touch private,
        mutually disjoint shard objects.
        """
        ids = self._check_ids(ids)
        grads = self._check_grads(ids, grads)
        if self.num_shards == 1:
            self._ensure_private(0)
            self._shards[0].apply_gradients(ids, grads)
            self._step += 1
            return
        plan = self.plan_for(ids)
        flat_grads = grads.reshape(len(plan), -1)
        tasks = []
        for shard_index, idx in self._shard_slices(plan):
            self._ensure_private(shard_index)
            shard = self._shards[shard_index]
            tasks.append(
                (
                    shard_index,
                    lambda s=shard, i=idx: s.apply_gradients(plan.flat_ids[i], flat_grads[i]),
                )
            )
        self.executor.run(tasks)
        self._step += 1

    def rebalance(self) -> bool:
        """Fan one explicit adaptivity pass out across all shards.

        Counts as a write: a shard still shared with a snapshot is
        privatised first — but only if its backend declares the
        ``supports_rebalance`` capability (:mod:`repro.api.registry`), so
        the call is free (no copies, no tasks) on static backends.  Returns
        ``True`` if at least one shard performed a rebalance.
        """
        supported = [
            shard_index
            for shard_index in range(self.num_shards)
            if capability_registry.supports_rebalance(self._shards[shard_index])
        ]
        if not supported:
            return False
        for shard_index in supported:
            self._ensure_private(shard_index)
        results = self.executor.run(
            [(shard_index, self._shards[shard_index].rebalance) for shard_index in supported]
        )
        self.invalidate_plan()
        return any(results)

    def memory_floats(self) -> int:
        """Sum of all shard footprints (each shard holds 1/N of the budget)."""
        return int(sum(shard.memory_floats() for shard in self._shards))

    # ------------------------------------------------------------------ #
    # Snapshots (copy-on-write)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> StoreSnapshot:
        """Freeze the current parameters into a read-only serving view.

        O(1): no tables are copied here.  The store marks every shard as
        shared; training's next write to a shard replaces it with a private
        deep copy (:attr:`cow_copies` counts those), so the returned view
        keeps serving exactly the values visible now.
        """
        self._cow_pending = [True] * self.num_shards
        self.snapshots_taken += 1
        return StoreSnapshot(
            shards=tuple(self._shards),
            shard_seed=self.shard_seed,
            dim=self.dim,
            num_features=self.num_features,
            dtype=self.dtype,
            version=self.snapshots_taken,
            step=self._step,
        )

    def _ensure_private(self, shard_index: int) -> None:
        if not self._cow_pending[shard_index]:
            return
        self._shards[shard_index] = copy.deepcopy(self._shards[shard_index])
        self._cow_pending[shard_index] = False
        self.cow_copies += 1
        if self.num_shards == 1:
            self.plan_stats = self._shards[0].plan_stats

    # ------------------------------------------------------------------ #
    # Introspection / checkpointing
    # ------------------------------------------------------------------ #
    def merged_sketch(self):
        """One global HotSketch merged from all sketch-carrying shards.

        Per-shard sketch retrieval fans out through :attr:`executor` (for a
        remote shard this is the expensive half); the pairwise SpaceSaving
        merge then runs on the calling thread.  Only meaningful when the
        shards are CAFE-style backends; returns ``None`` when no shard
        exposes a sketch.
        """
        tasks = [
            (shard_index, lambda s=shard: s.sketch)
            for shard_index, shard in enumerate(self._shards)
            if hasattr(shard, "sketch")
        ]
        if not tasks:
            return None
        sketches = self.executor.run(tasks)
        return type(sketches[0]).merge_all(sketches)

    def describe(self) -> dict[str, float | int | str]:
        info = super().describe()
        info["num_shards"] = self.num_shards
        info["backend"] = type(self._shards[0]).__name__
        info["executor"] = type(self.executor).__name__
        return info

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flatten every shard's state under ``shard{i}.`` prefixes plus the
        shard-count header; the inverse of :meth:`load_state_dict`.
        """
        state: dict[str, np.ndarray] = {"num_shards": np.asarray(self.num_shards)}
        for index, shard in enumerate(self._shards):
            if not capability_registry.supports_state_dict(shard):
                raise NotImplementedError(
                    f"shard backend {type(shard).__name__} does not support state_dict"
                )
            for key, value in shard.state_dict().items():
                state[f"shard{index}.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore all shards from :meth:`state_dict` output (shard counts must
        match); also absorbs a pre-store single-layer checkpoint into a
        single-shard store.  Counts as a write for copy-on-write purposes.
        """
        if "num_shards" not in state:
            # Checkpoint written against a bare embedding layer (pre-store
            # format): only a single-shard store can absorb it.
            if self.num_shards != 1:
                raise ValueError(
                    "checkpoint has no shard layout and cannot be loaded into a "
                    f"{self.num_shards}-shard store"
                )
            self._load_into_shard(0, dict(state))
            self.invalidate_plan()
            return
        if int(state["num_shards"]) != self.num_shards:
            raise ValueError(
                f"checkpoint has {int(state['num_shards'])} shards, store has {self.num_shards}"
            )
        for index in range(self.num_shards):
            prefix = f"shard{index}."
            self._load_into_shard(
                index,
                {key[len(prefix):]: value for key, value in state.items() if key.startswith(prefix)},
            )
        self.invalidate_plan()

    def _load_into_shard(self, index: int, state: dict[str, np.ndarray]) -> None:
        # Restoring is a write: never mutate a shard a snapshot still serves.
        self._ensure_private(index)
        shard = self._shards[index]
        if not capability_registry.supports_load_state_dict(shard):
            raise ValueError(f"shard backend {type(shard).__name__} cannot load a state dict")
        shard.load_state_dict(state)

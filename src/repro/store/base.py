"""The embedding *store* interface the models and trainer program against.

Historically the models held a bare :class:`~repro.embeddings.base.
CompressedEmbedding` and called ``lookup`` / ``apply_gradients`` on it
directly.  That couples the model to one in-process table and closes the door
on horizontal scaling.  An :class:`EmbeddingStore` is the seam between the
two: it has the same training-time surface as an embedding layer (so the
single-shard case stays bit-exact with the direct path) plus the serving
operations a scalable deployment needs:

* :meth:`EmbeddingStore.snapshot` — a copy-on-write, read-only view of the
  current parameters that inference can use while training keeps mutating
  the live store;
* shard introspection (``num_shards``, per-shard memory) so benchmarks and
  experiments can measure scaling behaviour.

:func:`ensure_store` adapts a bare embedding layer by wrapping it in a
single-shard :class:`~repro.store.sharded.ShardedEmbeddingStore`, which
delegates straight through to the layer — no re-partitioning, no copies —
so existing fixed-seed runs reproduce exactly.
"""

from __future__ import annotations

import abc

import numpy as np


class EmbeddingStore(abc.ABC):
    """Abstract interface of a (possibly sharded) embedding parameter store.

    A store has the training-time surface of an embedding layer (``lookup``
    then ``apply_gradients``, once each per step) plus :meth:`snapshot` for
    serving.  Implementations are single-writer: exactly one thread (the
    trainer) may call ``apply_gradients``; any number of threads may read
    from *snapshots* concurrently, because snapshots are immutable by
    contract.  Calling ``lookup`` on the live store from a second thread is
    not safe — route concurrent readers through a snapshot instead.
    """

    #: Embedding dimension served by the store.
    dim: int
    #: Size of the global feature-id space.
    num_features: int

    @abc.abstractmethod
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Return embeddings of shape ``ids.shape + (dim,)``.

        Reads the *live* parameters (training's most recent writes).  Not
        thread-safe against a concurrent ``apply_gradients``; serving paths
        must read through :meth:`snapshot` views instead.
        """

    @abc.abstractmethod
    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Apply per-lookup gradients of shape ``ids.shape + (dim,)``.

        The store's only mutating operation (checkpoint restore aside).
        Must be called from a single writer thread; triggers the lazy
        copy-on-write of any shard still shared with a snapshot before the
        shard is touched.
        """

    @abc.abstractmethod
    def memory_floats(self) -> int:
        """Total footprint in float32-equivalent parameters, all shards."""

    @abc.abstractmethod
    def snapshot(self):
        """Return a read-only, copy-on-write view of the current parameters.

        The view keeps serving the parameter values from the moment of the
        call even while training continues on the store (the store copies a
        shard lazily on its first write after the snapshot).  Snapshots are
        therefore safe to read from any number of threads while exactly one
        thread keeps training the live store — the mechanism that makes
        serve-while-train work without locks.  Taking a snapshot is O(1);
        memory is only spent when training first rewrites a frozen shard.
        """


def ensure_store(embedding) -> EmbeddingStore:
    """Adapt ``embedding`` to the store interface.

    Stores pass through unchanged; a bare embedding layer is wrapped in a
    single-shard sharded store that delegates to it directly (bit-exact with
    calling the layer itself).

    >>> from repro.embeddings.hash_embedding import HashEmbedding
    >>> store = ensure_store(HashEmbedding(100, 4, num_rows=10, rng=0))
    >>> store.num_shards, store.num_features, store.dim
    (1, 100, 4)
    >>> ensure_store(store) is store
    True
    """
    if isinstance(embedding, EmbeddingStore):
        return embedding
    from repro.store.sharded import ShardedEmbeddingStore

    return ShardedEmbeddingStore([embedding])

"""Read-only snapshot views over a sharded embedding store.

A :class:`StoreSnapshot` captures the shard objects that were live when
:meth:`~repro.store.sharded.ShardedEmbeddingStore.snapshot` ran.  The store
guarantees those objects are never written again (copy-on-write: training
swaps in private copies before mutating), so the snapshot can serve lookups
indefinitely at the frozen parameter values — the serving engine reads from
snapshots while online training keeps advancing the live store.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.hashing import hash_to_range


class StoreSnapshot:
    """Immutable lookup view over frozen embedding shards."""

    __slots__ = ("_shards", "shard_seed", "dim", "num_features", "dtype", "version", "step")

    def __init__(
        self,
        shards: Sequence,
        shard_seed: int,
        dim: int,
        num_features: int,
        dtype: np.dtype,
        version: int = 0,
        step: int = 0,
    ):
        self._shards = tuple(shards)
        self.shard_seed = int(shard_seed)
        self.dim = int(dim)
        self.num_features = int(num_features)
        self.dtype = np.dtype(dtype)
        #: Monotonic snapshot counter of the owning store (for cache keys).
        self.version = int(version)
        #: Training step of the store at snapshot time.
        self.step = int(step)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple:
        """The frozen shard objects (immutable by the copy-on-write contract).

        The delta publisher diffs consecutive snapshots shard by shard:
        identical objects mean the shard was never written between the two
        (copy-on-write swaps in a private copy on the first write), so the
        identity check alone clears unchanged shards in O(1).
        """
        return self._shards

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Embeddings of shape ``ids.shape + (dim,)`` at the frozen values."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_features):
            raise ValueError(
                f"feature ids must lie in [0, {self.num_features}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        if self.num_shards == 1:
            return self._shards[0].lookup(ids)
        flat = ids.reshape(-1)
        shard_of = hash_to_range(flat, self.num_shards, seed=self.shard_seed)
        out = np.empty((flat.shape[0], self.dim), dtype=self.dtype)
        for shard_index, shard in enumerate(self._shards):
            mask = shard_of == shard_index
            if mask.any():
                out[mask] = shard.lookup(flat[mask])
        return out.reshape(ids.shape + (self.dim,))

    def memory_floats(self) -> int:
        """Footprint of the frozen shards (shared with the live store until
        copy-on-write copies diverge).
        """
        return int(sum(shard.memory_floats() for shard in self._shards))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StoreSnapshot(version={self.version}, step={self.step}, "
            f"num_shards={self.num_shards}, dim={self.dim})"
        )

"""Per-field table groups: heterogeneous backends behind one fused store.

The sharded store scales one policy horizontally; a
:class:`TableGroupStore` makes the policy itself *per field*.  Every
categorical field carries a :class:`~repro.data.schema.FieldConfig`
(backend, native dimension, memory budget, hash policy, intra-group shard
count); fields with equal configs pool into one **table group** that owns a
single embedding backend over the concatenated id space of its member
fields.  A three-field dataset might run

* field ``country`` (cardinality 50) in a ``full`` group — uncompressed,
  exact, 50 rows are cheaper than any sketch;
* field ``ad_id`` (cardinality 10M, Zipf-skewed) in a ``cafe`` group at
  100x compression;
* field ``device`` (cardinality 5k) in a ``hash`` group at 8x.

The store presents the ordinary :class:`~repro.store.base.EmbeddingStore`
surface: models hand it the ``(batch, fields)`` global-id matrix and get a
fused ``(batch, fields, dim)`` tensor back.  Internally a **fused lookup
planner** splits the matrix into per-group sub-lookups exactly once per
training step: the split (group columns, global→group-local id remap) is
cached in the PR-1 :class:`~repro.embeddings.plan.RoutingPlan`, so
``apply_gradients`` reuses it, and each group backend receives the identical
sub-batch object in both halves of the step — its own intra-group plan
cache hits too.  Groups whose native dimension is narrower than the fused
output dimension are projected up with a trainable matrix (the MDE idiom),
and the projection is back-propagated through on the gradient scatter.

Groups compose with the rest of the store stack:

* a group backend may itself be a :class:`~repro.store.sharded.
  ShardedEmbeddingStore` (``num_shards`` in the field config), sharding
  *within* the group;
* :meth:`TableGroupStore.snapshot` returns a group-wise copy-on-write
  :class:`TableGroupSnapshot` — O(1), with training's first write to a
  group swapping in a private copy — so the serving engine and the online
  pipeline publish mixed-policy snapshots exactly like uniform ones;
* checkpoints are group-namespaced (``group{i}.backend.*``) and a
  single-group store migrates pre-refactor flat state dicts.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from repro.analysis.sanitizer import freeze_arrays, single_writer
from repro.api import registry as capability_registry
from repro.data.schema import DatasetSchema, FieldConfig, field_configs_from_spec
from repro.embeddings.base import DEFAULT_DTYPE, CompressedEmbedding
from repro.nn.init import xavier_uniform
from repro.runtime.executor import SerialShardExecutor, ShardExecutor, create_executor
from repro.store.base import EmbeddingStore
from repro.utils.rng import make_rng


class TableGroup:
    """One field group: a backend plus the columns and id remap it owns."""

    def __init__(
        self,
        name: str,
        backend: CompressedEmbedding,
        field_indices: np.ndarray,
        global_shift: np.ndarray,
        projection: np.ndarray | None = None,
        projection_lr: float = 0.005,
        config: FieldConfig | None = None,
    ):
        self.name = str(name)
        self.backend = backend
        #: Columns of the ``(batch, fields)`` id matrix this group owns.
        self.field_indices = np.asarray(field_indices, dtype=np.int64)
        #: Per owned column: ``global_id - global_shift = group-local id``.
        self.global_shift = np.asarray(global_shift, dtype=np.int64)
        if self.field_indices.shape != self.global_shift.shape:
            raise ValueError("field_indices and global_shift must align")
        if self.field_indices.size == 0:
            raise ValueError(f"table group '{self.name}' owns no fields")
        self.projection = projection
        self.projection_lr = float(projection_lr)
        #: The config the group was built from (prototype of its members).
        self.config = config

    @property
    def dim(self) -> int:
        """Native row width of the group's tables."""
        return self.backend.dim

    @property
    def num_fields(self) -> int:
        return int(self.field_indices.size)

    def local_ids(self, ids: np.ndarray) -> np.ndarray:
        """Slice the group's columns out of ``(batch, fields)`` and remap to
        the group-local id space."""
        return ids[:, self.field_indices] - self.global_shift[None, :]

    def lookup_fused(self, local: np.ndarray) -> np.ndarray:
        """Backend lookup projected up to the fused output dimension."""
        vectors = self.backend.lookup(local)
        if self.projection is not None:
            vectors = vectors @ self.projection
        return vectors

    def apply_fused(self, local: np.ndarray, grad_slice: np.ndarray) -> None:
        """Scatter fused-dim gradients into the backend (and projection).

        Groups with a projection back-propagate through it: the narrow
        table receives ``grad @ P^T`` and the projection trains on the
        outer product with the pre-update rows (the MDE rule).
        """
        if self.projection is None:
            self.backend.apply_gradients(local, grad_slice)
            return
        # Pre-update rows (plan-cache hit: lookup built this batch's plan).
        vectors = self.backend.lookup(local)
        flat_rows = vectors.reshape(-1, self.dim)
        flat_grads = grad_slice.reshape(-1, grad_slice.shape[-1])
        grad_rows = flat_grads @ self.projection.T
        grad_projection = flat_rows.T @ flat_grads
        self.backend.apply_gradients(local, grad_rows.reshape(vectors.shape))
        self.projection -= self.projection_lr * grad_projection

    def memory_floats(self) -> int:
        """Backend footprint plus the projection matrix, if any."""
        total = self.backend.memory_floats()
        if self.projection is not None:
            total += self.projection.size
        return int(total)

    def describe(self) -> dict:
        """Per-group summary row.

        Reports the same core keys as every backend/store ``describe()``
        (``dtype``, ``memory_floats``, ``compression_ratio``, …) so
        aggregators like :meth:`repro.api.session.Session.describe` can rely
        on one schema across heterogeneous groups.
        """
        native_params = self.backend.num_features * self.dim
        info = {
            "name": self.name,
            "backend": type(self.backend).__name__,
            "num_fields": self.num_fields,
            "num_features": self.backend.num_features,
            "dim": self.dim,
            "dtype": str(self.backend.dtype),
            "memory_floats": self.memory_floats(),
            "compression_ratio": round(native_params / max(self.memory_floats(), 1), 2),
        }
        shards = capability_registry.shard_count(self.backend)
        if shards is not None:
            info["num_shards"] = shards
        return info


class TableGroupSnapshot:
    """Immutable fused lookup view over frozen table groups.

    Holds the group backends that were live at snapshot time (the store
    copy-on-writes them before any later mutation) plus private copies of
    the small projection matrices, so readers keep seeing exactly the
    snapshot-time parameters while training continues.
    """

    __slots__ = (
        "_groups",
        "dim",
        "num_fields",
        "num_features",
        "dtype",
        "version",
        "step",
    )

    def __init__(
        self,
        groups: Sequence[tuple[CompressedEmbedding, np.ndarray, np.ndarray, np.ndarray | None]],
        dim: int,
        num_fields: int,
        num_features: int,
        dtype: np.dtype,
        version: int = 0,
        step: int = 0,
    ):
        #: ``(backend, field_indices, global_shift, projection-or-None)``.
        self._groups = tuple(groups)
        self.dim = int(dim)
        self.num_fields = int(num_fields)
        self.num_features = int(num_features)
        self.dtype = np.dtype(dtype)
        self.version = int(version)
        self.step = int(step)

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Fused embeddings ``(batch, fields, dim)`` at the frozen values."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2 or ids.shape[1] != self.num_fields:
            raise ValueError(
                f"expected ids of shape (batch, {self.num_fields}), got {ids.shape}"
            )
        out = np.empty(ids.shape + (self.dim,), dtype=self.dtype)
        if ids.shape[0] == 0:
            return out
        for backend, field_indices, global_shift, projection in self._groups:
            local = ids[:, field_indices] - global_shift[None, :]
            vectors = backend.lookup(local)
            if projection is not None:
                vectors = vectors @ projection
            out[:, field_indices, :] = vectors
        return out

    def memory_floats(self) -> int:
        total = 0
        for backend, _, _, projection in self._groups:
            total += backend.memory_floats()
            if projection is not None:
                total += projection.size
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TableGroupSnapshot(version={self.version}, step={self.step}, "
            f"num_groups={self.num_groups}, dim={self.dim})"
        )


class TableGroupStore(CompressedEmbedding, EmbeddingStore):
    """Heterogeneous per-field table groups behind one fused store."""

    def __init__(
        self,
        groups: Sequence[TableGroup],
        num_fields: int,
        num_features: int,
        dim: int,
        executor: ShardExecutor | str | None = None,
    ):
        groups = list(groups)
        if not groups:
            raise ValueError("TableGroupStore requires at least one group")
        dtype = groups[0].backend.dtype
        super().__init__(num_features, dim, dtype=dtype)
        self.num_fields = int(num_fields)
        owned = np.concatenate([group.field_indices for group in groups])
        if not np.array_equal(np.sort(owned), np.arange(self.num_fields)):
            raise ValueError(
                "groups must partition the field columns exactly once; got "
                f"{sorted(owned.tolist())} for {self.num_fields} fields"
            )
        for group in groups:
            if group.backend.dtype != dtype:
                raise ValueError(
                    f"group '{group.name}' dtype {group.backend.dtype} does not match "
                    f"store dtype {dtype}"
                )
            if group.dim > dim:
                raise ValueError(
                    f"group '{group.name}' dim {group.dim} exceeds the fused dim {dim}"
                )
            if group.dim != dim and group.projection is None:
                raise ValueError(
                    f"group '{group.name}' has native dim {group.dim} != {dim} but no "
                    "projection matrix"
                )
        self._groups = groups
        self.num_groups = len(groups)
        if executor is None:
            executor = SerialShardExecutor()
        elif isinstance(executor, str):
            executor = create_executor(executor)
        self.executor = executor
        self._cow_pending = [False] * self.num_groups
        self.snapshots_taken = 0
        self.cow_copies = 0
        self._remote = False
        self._handles: list = []
        #: Projection presence per group, captured before any adoption moves
        #: the projection matrix into a worker process.
        self._has_projection = [group.projection is not None for group in groups]
        self._adopt_if_remote()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_schema(
        cls,
        schema: DatasetSchema,
        spec: str | None = None,
        compression_ratio: float = 1.0,
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        seed: int = 0,
        executor: ShardExecutor | str | None = None,
        kernels: str | None = None,
        **spec_kwargs,
    ) -> "TableGroupStore":
        """Build groups for ``schema`` from a spec string or attached configs.

        Resolution order: an explicit ``spec`` (see :func:`~repro.data.
        schema.field_configs_from_spec`; ``spec_kwargs`` forwards e.g.
        ``tiny_max`` / ``tail_min``), else ``schema.field_configs``, else the
        uniform single-group default ``"cafe:all"`` at ``compression_ratio``.
        Each group backend is built by :func:`repro.embeddings.
        create_embedding` over the group's concatenated id space, wrapped in
        a :class:`~repro.store.sharded.ShardedEmbeddingStore` when its config
        asks for intra-group shards.
        """
        if spec is not None:
            configs = field_configs_from_spec(
                schema, spec, compression_ratio=compression_ratio, **spec_kwargs
            )
        elif schema.field_configs is not None:
            configs = schema.field_configs
        else:
            configs = field_configs_from_spec(
                schema, "cafe:all", compression_ratio=compression_ratio
            )
        return cls.from_configs(
            schema,
            configs,
            optimizer=optimizer,
            learning_rate=learning_rate,
            dtype=dtype,
            seed=seed,
            executor=executor,
            kernels=kernels,
        )

    @classmethod
    def from_configs(
        cls,
        schema: DatasetSchema,
        configs: Sequence[FieldConfig],
        optimizer: str = "sgd",
        learning_rate: float = 0.05,
        dtype: np.dtype | str = DEFAULT_DTYPE,
        seed: int = 0,
        executor: ShardExecutor | str | None = None,
        kernels: str | None = None,
    ) -> "TableGroupStore":
        """Build one backend per distinct config and assemble the store."""
        from repro.embeddings import create_embedding
        from repro.store.sharded import ShardedEmbeddingStore

        configs = list(configs)
        if len(configs) != schema.num_fields:
            raise ValueError(
                f"need one FieldConfig per field ({schema.num_fields}), got {len(configs)}"
            )
        cardinalities = schema.field_cardinalities
        global_offsets = schema.field_offsets

        # Group fields by policy, preserving first-appearance order.
        grouped: dict[tuple, list[int]] = {}
        for index, config in enumerate(configs):
            grouped.setdefault(config.group_key(), []).append(index)

        groups = []
        for group_index, (key, member_indices) in enumerate(grouped.items()):
            prototype = configs[member_indices[0]]
            member_cards = [cardinalities[i] for i in member_indices]
            local_offsets = np.concatenate([[0], np.cumsum(member_cards)]).astype(np.int64)
            group_features = int(local_offsets[-1])
            group_dim = prototype.dim or schema.embedding_dim
            if prototype.memory_floats is not None:
                target = sum(
                    configs[i].memory_floats or 0 for i in member_indices
                )
                group_ratio = (group_features * group_dim) / max(target, 1)
            else:
                group_ratio = prototype.compression_ratio
            registered = capability_registry.get_backend(prototype.backend)
            extra: dict = {}
            if prototype.hash_seed is not None:
                if "seed" not in registered.spec_options:
                    raise ValueError(
                        f"backend '{prototype.backend}' does not route by hash and "
                        "takes no [seed=N] spec option (group "
                        f"'{prototype.field}')"
                    )
                extra["hash_seed"] = prototype.hash_seed
            # Any backend declaring the side input in the registry gets the
            # group's member cardinalities (MDE built-in or third-party).
            if "field_cardinalities" in registered.requires:
                extra["field_cardinalities"] = member_cards
            rng = np.random.default_rng(seed + 104729 * group_index)
            if prototype.num_shards > 1:
                backend: CompressedEmbedding = ShardedEmbeddingStore.build(
                    prototype.backend,
                    num_features=group_features,
                    dim=group_dim,
                    num_shards=prototype.num_shards,
                    compression_ratio=group_ratio,
                    seed=seed + 104729 * group_index,
                    optimizer=optimizer,
                    learning_rate=learning_rate,
                    dtype=dtype,
                    kernels=kernels,
                    **extra,
                )
            else:
                backend = create_embedding(
                    prototype.backend,
                    num_features=group_features,
                    dim=group_dim,
                    compression_ratio=group_ratio,
                    optimizer=optimizer,
                    learning_rate=learning_rate,
                    dtype=dtype,
                    rng=rng,
                    kernels=kernels,
                    **extra,
                )
            projection = None
            if group_dim != schema.embedding_dim:
                projection = xavier_uniform(
                    (group_dim, schema.embedding_dim), make_rng(rng), dtype=backend.dtype
                )
            shift = np.asarray(
                [global_offsets[i] for i in member_indices], dtype=np.int64
            ) - local_offsets[:-1]
            groups.append(
                TableGroup(
                    name=f"g{group_index}_{prototype.backend.lower()}",
                    backend=backend,
                    field_indices=np.asarray(member_indices, dtype=np.int64),
                    global_shift=shift,
                    projection=projection,
                    projection_lr=learning_rate * 0.1,
                    config=prototype,
                )
            )
        return cls(
            groups,
            num_fields=schema.num_fields,
            num_features=schema.num_features,
            dim=schema.embedding_dim,
            executor=executor,
        )

    @property
    def groups(self) -> tuple[TableGroup, ...]:
        return tuple(self._groups)

    # ------------------------------------------------------------------ #
    # Fused planner (store level: the per-group split of a batch)
    # ------------------------------------------------------------------ #
    def _check_matrix(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        if ids.ndim != 2 or ids.shape[1] != self.num_fields:
            raise ValueError(
                f"TableGroupStore expects field-aligned ids of shape "
                f"(batch, {self.num_fields}), got {ids.shape}"
            )
        return ids

    def _build_routes(self, flat_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Split the batch into per-group local-id sub-matrices, once.

        The arrays stored here are handed verbatim to the group backends in
        both ``lookup`` and ``apply_gradients``, so each backend's own plan
        cache sees the identical object and the intra-group hashing also
        runs once per step.
        """
        ids = flat_ids.reshape(-1, self.num_fields)
        return {
            f"local{index}": group.local_ids(ids)
            for index, group in enumerate(self._groups)
        }

    # ------------------------------------------------------------------ #
    # Process-parallel runtime (remote groups)
    # ------------------------------------------------------------------ #
    @property
    def remote(self) -> bool:
        """True when the groups live in worker processes behind proxies."""
        return self._remote

    def _adopt_if_remote(self) -> None:
        if not getattr(self.executor, "is_process_executor", False):
            return
        for group in self._groups:
            if not capability_registry.supports_process_parallel(group.backend):
                raise ValueError(
                    f"group '{group.name}' backend {type(group.backend).__name__} opts "
                    "out of the process executor (supports_process_parallel=False); "
                    "use 'serial' or 'threads' instead"
                )
        handles = self.executor.adopt_units(self._groups, kind="group")
        # The whole group (backend + projection) now lives in the worker; the
        # parent-side group keeps only the routing arrays and the proxy, so
        # the fused math (projection included) runs worker-side.
        for group, handle in zip(self._groups, handles):
            group.backend = handle
            group.projection = None
        self._handles = list(handles)
        self._remote = True
        self._cow_pending = [False] * self.num_groups

    def _group_supports(self, group: TableGroup, capability: str) -> bool:
        """Capability check on the group's backend, proxy-aware."""
        caps = getattr(group.backend, "caps", None)
        if caps is not None:
            return bool(caps.get(capability, False))
        if capability == "sketch":
            return capability_registry.supports_sketch(group.backend)
        return getattr(capability_registry, "supports_" + capability)(group.backend)

    def set_executor(self, executor: ShardExecutor | str) -> None:
        """Swap the group fan-out runtime (``"serial"``, ``"threads"``,
        ``"processes"``, or an instance).

        Leaving a process executor pulls every group back out of its worker
        (bit-exact, private arrays); entering one adopts the groups into
        fresh workers.
        """
        if isinstance(executor, str):
            executor = create_executor(executor)
        if self._remote:
            self._groups = list(self.executor.release_units())
            self._handles = []
            self._remote = False
        self.executor.close()
        self.executor = executor
        self._adopt_if_remote()

    def set_kernel_backend(self, name: str) -> str:
        """Switch every group backend's fused kernel backend; returns the
        resolved name.  Remote groups switch worker-side through ``run_ops``;
        sharded-within-a-group backends fan the call out themselves.
        """
        from repro.kernels import resolve_kernel_backend_name

        resolved = resolve_kernel_backend_name(name)
        if self._remote:
            self.executor.run_ops(
                [
                    (group_index, "set_kernel_backend", (resolved,))
                    for group_index in range(self.num_groups)
                ]
            )
        else:
            for group in self._groups:
                if capability_registry.supports_kernel_backend(group.backend):
                    group.backend.set_kernel_backend(resolved)
        return resolved

    # ------------------------------------------------------------------ #
    # EmbeddingStore / CompressedEmbedding interface
    # ------------------------------------------------------------------ #
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Fused gather: one sub-lookup per group, reassembled to
        ``(batch, fields, dim)`` with per-group projection.

        Per-group gathers run through :attr:`executor`; each task writes a
        disjoint column slice of the output, so threaded execution needs no
        synchronisation.
        """
        ids = self._check_matrix(ids)
        plan = self.plan_for(ids)
        out = np.empty(ids.shape + (self.dim,), dtype=self.dtype)
        if ids.shape[0] == 0:
            return out
        if self._remote:
            results = self.executor.run_ops(
                [
                    (index, "lookup", (plan.routes[f"local{index}"],))
                    for index in range(self.num_groups)
                ]
            )
            for group, vectors in zip(self._groups, results):
                out[:, group.field_indices, :] = vectors
            return out

        def gather(group: TableGroup, local: np.ndarray) -> None:
            out[:, group.field_indices, :] = group.lookup_fused(local)

        self.executor.run(
            [
                (index, lambda g=group, l=plan.routes[f"local{index}"]: gather(g, l))
                for index, group in enumerate(self._groups)
            ]
        )
        return out

    @single_writer
    def apply_gradients(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Scatter fused gradients back into every group.

        Groups with a projection back-propagate through it (the narrow table
        receives ``grad @ P^T``; the projection itself trains on the outer
        product with the pre-update rows, the MDE rule).  Copy-on-write
        swaps happen serially on the calling thread before the fan-out.
        """
        ids = self._check_matrix(ids)
        grads = self._check_grads(ids, grads)
        plan = self.plan_for(ids)
        if ids.shape[0] == 0:
            self._step += 1
            return
        if self._remote:
            self.executor.run_ops(
                [
                    (
                        index,
                        "apply_gradients",
                        (plan.routes[f"local{index}"], grads[:, group.field_indices, :]),
                    )
                    for index, group in enumerate(self._groups)
                ]
            )
            self._step += 1
            return
        tasks = []
        for index, group in enumerate(self._groups):
            self._ensure_private(index)
            group = self._groups[index]
            local = plan.routes[f"local{index}"]
            grad_slice = grads[:, group.field_indices, :]
            tasks.append((index, lambda g=group, l=local, gr=grad_slice: g.apply_fused(l, gr)))
        self.executor.run(tasks)
        self._step += 1

    @single_writer
    def rebalance(self) -> bool:
        """Fan one explicit adaptivity pass out across rebalance-capable groups."""
        supported = [
            index
            for index, group in enumerate(self._groups)
            if self._group_supports(group, "rebalance")
        ]
        if not supported:
            return False
        if self._remote:
            results = self.executor.run_ops([(index, "rebalance", ()) for index in supported])
        else:
            for index in supported:
                self._ensure_private(index)
            results = self.executor.run(
                [(index, self._groups[index].backend.rebalance) for index in supported]
            )
        self.invalidate_plan()
        return any(results)

    def memory_floats(self) -> int:
        """Sum of all group footprints (tables, auxiliaries, projections)."""
        return int(sum(group.memory_floats() for group in self._groups))

    # ------------------------------------------------------------------ #
    # Snapshots (group-wise copy-on-write)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> TableGroupSnapshot:
        """Freeze the current parameters into a read-only fused view.

        O(1) on the tables: group backends are frozen in place and marked
        copy-on-write (training's next write to a group swaps in a private
        deep copy).  The small projection matrices are copied eagerly so
        in-place projection updates never leak into the snapshot.

        Under the process executor the same contract is kept by *sealed
        generations*: every worker seals its current shared-memory segment
        and continues in a fresh writable one; the parent maps the sealed
        segment read-only and grafts it into a frozen backend clone, so the
        snapshot is bit-exact and copy-free on the reader side.
        """
        self.snapshots_taken += 1
        if self._remote:
            sealed = self.executor.seal_units()
            groups = [
                (backend, group.field_indices.copy(), group.global_shift.copy(), projection)
                for (backend, projection), group in zip(sealed, self._groups)
            ]
        else:
            self._cow_pending = [True] * self.num_groups
            groups = [
                (
                    group.backend,
                    group.field_indices.copy(),
                    group.global_shift.copy(),
                    None if group.projection is None else group.projection.copy(),
                )
                for group in self._groups
            ]
        view = TableGroupSnapshot(
            groups=groups,
            dim=self.dim,
            num_fields=self.num_fields,
            num_features=self.num_features,
            dtype=self.dtype,
            version=self.snapshots_taken,
            step=self._step,
        )
        # Published arrays are read-only from here on (see the sharded-store
        # snapshot); the COW deep copy thaws the live side on its next write.
        freeze_arrays(view)
        return view

    def _ensure_private(self, group_index: int) -> None:
        if self._remote or not self._cow_pending[group_index]:
            return
        self._groups[group_index] = copy.deepcopy(self._groups[group_index])
        self._cow_pending[group_index] = False
        self.cow_copies += 1

    # ------------------------------------------------------------------ #
    # Introspection / checkpointing
    # ------------------------------------------------------------------ #
    def merged_sketch(self):
        """One global HotSketch merged across sketch-carrying groups.

        Group sketches merge only when their bucket geometry matches (the
        SpaceSaving merge is bucket-wise); heterogeneous groups typically
        size sketches differently, in which case the largest group's sketch
        alone is returned — still the store's best hot-feature view.
        Returns ``None`` when no group carries a sketch.
        """
        if self._remote:
            supported = [
                index
                for index, group in enumerate(self._groups)
                if self._group_supports(group, "sketch")
            ]
            if not supported:
                return None
            results = self.executor.run_ops([(index, "sketch", ()) for index in supported])
            sketches = [sketch for sketch in results if sketch is not None]
        else:
            sketches = []
            for group in self._groups:
                sketch = capability_registry.sketch_of(group.backend)
                if sketch is not None:
                    sketches.append(sketch)
        return self._merge_sketches(sketches)

    @staticmethod
    def _merge_sketches(sketches: list):
        if not sketches:
            return None
        geometry = {(s.num_buckets, s.slots_per_bucket, s.seed) for s in sketches}
        if len(geometry) == 1:
            return type(sketches[0]).merge_all(sketches)
        return max(sketches, key=lambda s: s.total_insertions)

    def group_summaries(self) -> list[dict]:
        """Per-group description rows (used by bench and ``describe``)."""
        if self._remote:
            # The real backends live worker-side; describe them there.
            return self.executor.run_ops(
                [(index, "describe", ()) for index in range(self.num_groups)]
            )
        return [group.describe() for group in self._groups]

    def describe(self) -> dict:
        info = super().describe()
        info["num_groups"] = self.num_groups
        info["num_fields"] = self.num_fields
        info["executor"] = type(self.executor).__name__
        if self._remote:
            # Per-worker wall vs on-worker compute (IPC overhead) breakdown.
            info["executor_stats"] = self.executor.stats.as_dict()
        info["groups"] = self.group_summaries()
        return info

    def state_dict(self) -> dict[str, np.ndarray]:
        """Group-namespaced state: ``group{i}.backend.*`` per group plus the
        group headers; the inverse of :meth:`load_state_dict`.
        """
        state: dict[str, np.ndarray] = {
            "num_groups": np.asarray(self.num_groups),
            "step": np.asarray(self._step),
        }
        for group in self._groups:
            if not self._group_supports(group, "state_dict"):
                name = getattr(group.backend, "backend_class", None) or type(
                    group.backend
                ).__name__
                raise NotImplementedError(
                    f"group '{group.name}' backend {name} does not support state_dict"
                )
        if self._remote:
            payloads = self.executor.run_ops(
                [(index, "state_dict", ()) for index in range(self.num_groups)]
            )
            for index, (group, payload) in enumerate(zip(self._groups, payloads)):
                state[f"group{index}.fields"] = group.field_indices.copy()
                if payload["projection"] is not None:
                    state[f"group{index}.projection"] = payload["projection"]
                for key, value in payload["backend"].items():
                    state[f"group{index}.backend.{key}"] = value
            return state
        for index, group in enumerate(self._groups):
            state[f"group{index}.fields"] = group.field_indices.copy()
            if group.projection is not None:
                state[f"group{index}.projection"] = group.projection.copy()
            for key, value in group.backend.state_dict().items():
                state[f"group{index}.backend.{key}"] = value
        return state

    @single_writer
    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore group-namespaced state; also migrates flat checkpoints.

        A state dict without the ``num_groups`` header is the pre-table-group
        *flat* format — a bare layer's keys or a sharded store's
        ``shard{i}.*`` keys over the whole id space.  Only a single-group
        store can absorb one (its group spans the full id space, so the flat
        tables drop straight into the group backend); a multi-group store
        refuses with a clear error.  Counts as a write for copy-on-write.
        """
        if "num_groups" not in state:
            if self.num_groups != 1:
                raise ValueError(
                    "checkpoint has no table-group layout (flat format) and cannot be "
                    f"loaded into a {self.num_groups}-group store; re-save it through a "
                    "single-group TableGroupStore first"
                )
            flat = dict(state)
            if (
                "num_shards" in flat
                and capability_registry.shard_count(self._groups[0].backend) is None
            ):
                # A single-shard sharded-store checkpoint (what ensure_store
                # models wrote) loading into a bare group backend: unwrap
                # the shard0 prefix; a multi-shard flat checkpoint has no
                # single backend to land in.
                if int(flat["num_shards"]) != 1:
                    raise ValueError(
                        f"flat checkpoint has {int(flat['num_shards'])} shards and "
                        "cannot be loaded into an unsharded single-group store"
                    )
                flat = {
                    key[len("shard0."):]: value
                    for key, value in flat.items()
                    if key.startswith("shard0.")
                }
            self._ensure_private(0)
            self._load_backend(0, flat)
            # Flat checkpoints carry the step only inside the backend state;
            # adopt it so snapshots and re-saved group checkpoints keep it.
            self._step = int(self._groups[0].backend.step())
            self.invalidate_plan()
            return
        if int(state["num_groups"]) != self.num_groups:
            raise ValueError(
                f"checkpoint has {int(state['num_groups'])} groups, store has "
                f"{self.num_groups}"
            )
        for index, group in enumerate(self._groups):
            fields = np.asarray(state[f"group{index}.fields"], dtype=np.int64)
            if not np.array_equal(fields, group.field_indices):
                raise ValueError(
                    f"checkpoint group {index} owns fields {fields.tolist()}, store "
                    f"group owns {group.field_indices.tolist()}"
                )
            self._ensure_private(index)
            group = self._groups[index]
            projection_key = f"group{index}.projection"
            has_projection = (
                self._has_projection[index] if self._remote else group.projection is not None
            )
            if (projection_key in state) != has_projection:
                raise ValueError(
                    f"checkpoint group {index} projection presence does not match the store"
                )
            if group.projection is not None:
                group.projection = np.asarray(
                    state[projection_key], dtype=self.dtype
                ).copy()
            prefix = f"group{index}.backend."
            self._load_backend(
                index,
                {
                    key[len(prefix):]: value
                    for key, value in state.items()
                    if key.startswith(prefix)
                },
                projection=state.get(projection_key),
            )
        self._step = int(state["step"])
        self.invalidate_plan()

    def _load_backend(
        self,
        index: int,
        state: dict[str, np.ndarray],
        projection: np.ndarray | None = None,
    ) -> None:
        group = self._groups[index]
        if not self._group_supports(group, "load_state_dict"):
            name = getattr(group.backend, "backend_class", None) or type(group.backend).__name__
            raise ValueError(f"group backend {name} cannot load a state dict")
        if self._remote:
            # The worker owns both halves of the group: ship the projection
            # alongside the backend state in one payload.
            group.backend.load_state_dict({"backend": state, "projection": projection})
            return
        group.backend.load_state_dict(state)

"""Sketched gradient-exchange wire format for the sharded store.

Dense exchange ships ``(flat_ids, flat_grads)`` per shard —
``O(touched positions x dim)`` bytes every step, the dominant IPC payload of
the process-parallel runtime.  Sketched exchange replaces it with a compact
payload per shard:

* the shard's **unique ids** (duplicates are pre-summed by linearity),
* **exact summed gradients for the heavy ids** (the top ``heavy_frac`` by
  sketched L2 mass — recovered exactly, never estimated),
* a fixed-size **CSVec** (``float32`` on the wire) from which the tail ids'
  gradients are recovered as median-of-depth estimates.

Every shard's sketch is built with the *same* ``(width, depth, seed)``
derived from the whole batch, so the trainer can merge the per-shard
sketches by plain addition into one global per-step gradient sketch
(:meth:`repro.sketch.CSVec.merge`) — the mergeability property the tests
pin down (merge of N shard sketches == one single-stream fold).

Build and reconstruct run the same code on every executor; only the
transport differs (in-process handoff for serial/threads, shm arena arrays
for processes), which is what makes the 3-way parity test meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sketch.csvec import CSVec

#: Accepted gradient-exchange modes for the sharded store / config tree.
GRAD_EXCHANGE_MODES = ("dense", "sketched")

#: Depth of the exchange sketch (odd, for the median).
EXCHANGE_DEPTH = 3

#: Fraction of a shard's unique ids shipped with exact summed gradients.
HEAVY_FRAC = 0.10

#: Target sketch size: ``unique_ids x dim / EXCHANGE_COMPRESSION`` floats.
EXCHANGE_COMPRESSION = 8

#: Width floor so tiny batches still produce a well-formed sketch.
MIN_WIDTH = 8


def exchange_width(num_unique: int, depth: int = EXCHANGE_DEPTH) -> int:
    """Sketch width for a step touching ``num_unique`` distinct ids.

    Sized so the sketch table holds ~``1/EXCHANGE_COMPRESSION`` of the dense
    unique-gradient floats.  Derived from the *global* batch, so every
    shard's sketch shares one width and stays mergeable.
    """
    return max(MIN_WIDTH, math.ceil(num_unique / (EXCHANGE_COMPRESSION * depth)))


@dataclass
class SketchedGradPayload:
    """One shard's gradient update, sketch-compressed for the wire."""

    ids: np.ndarray  # (u,) int64 — unique ids, ascending
    heavy_index: np.ndarray  # (h,) int32 — indices into ``ids``
    heavy_grads: np.ndarray  # (h, dim) — exact summed gradients
    sketch_table: np.ndarray  # (depth, width, dim) float32
    sketch_counts: np.ndarray  # (depth, width) float32
    seed: int

    def arrays(self) -> tuple[np.ndarray, ...]:
        """The payload in wire order (matches ``op_apply_sketched``)."""
        return (
            self.ids,
            self.heavy_index,
            self.heavy_grads,
            self.sketch_table,
            self.sketch_counts,
        )

    def nbytes(self) -> int:
        """Bytes crossing the shard boundary for this payload."""
        return int(sum(array.nbytes for array in self.arrays()))


def dedup_gradients(
    ids: np.ndarray, grads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum duplicate ids' gradients: ``(unique_ids, summed_grads)``.

    Applying the summed gradient once is equivalent to applying each
    occurrence (the optimizers segment-sum duplicates anyway), and it is
    what makes the sketch fold linear in the id axis.
    """
    unique_ids, inverse = np.unique(np.asarray(ids, dtype=np.int64), return_inverse=True)
    summed = np.zeros((unique_ids.size, grads.shape[-1]), dtype=grads.dtype)
    np.add.at(summed, inverse, grads)
    return unique_ids, summed


def build_sketched_payload(
    ids: np.ndarray,
    grads: np.ndarray,
    *,
    width: int,
    seed: int,
    depth: int = EXCHANGE_DEPTH,
    heavy_frac: float = HEAVY_FRAC,
    kernels=None,
) -> SketchedGradPayload:
    """Fold one shard's ``(ids, grads)`` into the wire payload.

    ``width`` must come from :func:`exchange_width` over the *global* batch
    so the per-shard sketches merge; ``seed`` likewise must match across
    shards.
    """
    unique_ids, summed = dedup_gradients(ids, grads)
    dim = grads.shape[-1]
    sketch = CSVec(width, dim, depth=depth, seed=seed, dtype=np.float32, kernels=kernels)
    sketch.insert(unique_ids, summed)
    heavy_count = math.ceil(heavy_frac * unique_ids.size) if unique_ids.size else 0
    heavy_index = sketch.heavy_hitters(unique_ids, heavy_count)
    return SketchedGradPayload(
        ids=unique_ids,
        heavy_index=heavy_index.astype(np.int32),
        heavy_grads=np.ascontiguousarray(summed[heavy_index]),
        sketch_table=sketch.table,
        sketch_counts=sketch.counts,
        seed=int(seed),
    )


def reconstruct_gradients(
    ids: np.ndarray,
    heavy_index: np.ndarray,
    heavy_grads: np.ndarray,
    sketch_table: np.ndarray,
    sketch_counts: np.ndarray,
    seed: int,
    *,
    dtype=None,
    kernels=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`build_sketched_payload`: ``(unique_ids, grads)``.

    Heavy ids get their shipped exact summed gradients; tail ids get the
    sketch's median-of-depth estimate.  Runs shard-side (worker process for
    the processes executor, in-process otherwise) with identical math
    everywhere.
    """
    ids = np.asarray(ids, dtype=np.int64)
    sketch = CSVec.from_state(sketch_table, sketch_counts, int(seed), kernels=kernels)
    grads = sketch.query(ids)
    heavy_index = np.asarray(heavy_index, dtype=np.int64)
    if heavy_index.size:
        grads[heavy_index] = heavy_grads
    if dtype is not None and grads.dtype != np.dtype(dtype):
        grads = grads.astype(dtype)
    return ids, grads


def apply_sketched_payload(shard, payload: SketchedGradPayload) -> None:
    """Recover a payload's gradients and apply them to ``shard``.

    The in-process twin of the worker-side ``op_apply_sketched_gradients``
    (:mod:`repro.runtime.process`): both call :func:`reconstruct_gradients`
    then the shard's ordinary ``apply_gradients``, so serial, threaded and
    process execution share one recovery code path.
    """
    ids, grads = reconstruct_gradients(*payload.arrays(), payload.seed)
    shard.apply_gradients(ids, grads)


def dense_payload_bytes(ids: np.ndarray, grads: np.ndarray) -> int:
    """Bytes the dense exchange ships for one shard's ``(ids, grads)``."""
    return int(ids.nbytes + grads.nbytes)

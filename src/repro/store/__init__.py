"""Embedding stores: the scalable layer between models and embedding tables.

``repro.store`` decouples the models/trainer from any single in-process
embedding table.  :class:`EmbeddingStore` is the interface,
:class:`ShardedEmbeddingStore` the hash-partitioned implementation (one shard
is the bit-exact default), :class:`TableGroupStore` the per-field
heterogeneous-policy implementation (tiny fields uncompressed, skewed tails
on CAFE, mid fields hashed — one backend per field group, shardable within a
group), and :class:`StoreSnapshot` / :class:`TableGroupSnapshot` the
copy-on-write read views that the serving engine consumes.
"""

from repro.store.base import EmbeddingStore, ensure_store
from repro.store.sharded import DEFAULT_SHARD_SEED, ShardedEmbeddingStore, partition_by_shard
from repro.store.snapshot import StoreSnapshot
from repro.store.table_group import TableGroup, TableGroupSnapshot, TableGroupStore

__all__ = [
    "EmbeddingStore",
    "ensure_store",
    "ShardedEmbeddingStore",
    "StoreSnapshot",
    "TableGroup",
    "TableGroupSnapshot",
    "TableGroupStore",
    "partition_by_shard",
    "DEFAULT_SHARD_SEED",
]

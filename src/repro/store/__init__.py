"""Embedding stores: the scalable layer between models and embedding tables.

``repro.store`` decouples the models/trainer from any single in-process
embedding table.  :class:`EmbeddingStore` is the interface,
:class:`ShardedEmbeddingStore` the hash-partitioned implementation (one shard
is the bit-exact default), and :class:`StoreSnapshot` the copy-on-write
read view that the serving engine consumes.
"""

from repro.store.base import EmbeddingStore, ensure_store
from repro.store.sharded import DEFAULT_SHARD_SEED, ShardedEmbeddingStore, partition_by_shard
from repro.store.snapshot import StoreSnapshot

__all__ = [
    "EmbeddingStore",
    "ensure_store",
    "ShardedEmbeddingStore",
    "StoreSnapshot",
    "partition_by_shard",
    "DEFAULT_SHARD_SEED",
]

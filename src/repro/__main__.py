"""Entry point for ``python -m repro`` — the consolidated declarative CLI.

Subcommands: ``train`` / ``serve`` / ``pipeline`` / ``bench`` /
``experiment`` / ``validate-config`` / ``describe`` (see
:mod:`repro.api.cli`).  The historical experiment runner is available as
``python -m repro experiment run fig8 ...``.
"""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Shared utilities: hashing, Zipf sampling/fitting, RNG helpers, logging."""

from repro.utils.hashing import (
    HashFamily,
    mix64,
    hash_to_bucket,
    hash_to_range,
    hash_to_unit,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.zipf import (
    ZipfDistribution,
    fit_zipf_exponent,
    zipf_probabilities,
)

__all__ = [
    "HashFamily",
    "mix64",
    "hash_to_bucket",
    "hash_to_range",
    "hash_to_unit",
    "make_rng",
    "spawn_rngs",
    "ZipfDistribution",
    "fit_zipf_exponent",
    "zipf_probabilities",
]

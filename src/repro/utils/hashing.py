"""Deterministic 64-bit hashing utilities.

Every hash-based structure in this library (hash embeddings, the Q-R trick,
HotSketch bucket placement, multi-level hash tables) needs cheap, vectorized,
*deterministic* hash functions over integer feature identifiers.  We use the
SplitMix64 finalizer, which is a well-studied bijective mixer with excellent
avalanche behaviour, parameterized by a per-function seed so that independent
hash functions can be drawn from a family.
"""

from __future__ import annotations

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)

# SplitMix64 constants.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def mix64(values: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Apply the SplitMix64 finalizer to ``values``.

    Parameters
    ----------
    values:
        Integer scalar or array of any integer dtype.  Negative values are
        reinterpreted as unsigned 64-bit integers.
    seed:
        Seed selecting a member of the hash family.

    Returns
    -------
    ``numpy.ndarray`` of dtype ``uint64`` with the same shape as ``values``.
    """
    x = np.asarray(values).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x = (x + np.uint64(seed) * _GAMMA + _GAMMA) & _MASK64
        x ^= x >> np.uint64(30)
        x = (x * _MIX1) & _MASK64
        x ^= x >> np.uint64(27)
        x = (x * _MIX2) & _MASK64
        x ^= x >> np.uint64(31)
    return x


def hash_to_range(values: np.ndarray | int, size: int, seed: int = 0) -> np.ndarray:
    """Hash ``values`` uniformly into ``[0, size)`` as ``int64``."""
    if size <= 0:
        raise ValueError(f"hash range must be positive, got {size}")
    return (mix64(values, seed) % np.uint64(size)).astype(np.int64)


def hash_to_bucket(values: np.ndarray | int, num_buckets: int, seed: int = 0) -> np.ndarray:
    """Alias of :func:`hash_to_range` with sketch-oriented naming."""
    return hash_to_range(values, num_buckets, seed)


def hash_to_unit(values: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Hash ``values`` to floats uniformly distributed in ``[0, 1)``."""
    return mix64(values, seed).astype(np.float64) / float(2**64)


class HashFamily:
    """A family of independent hash functions over integer keys.

    Used by multi-level hash embeddings and the Q-R trick, where each level /
    component needs its own hash function mapping feature ids into a table of
    a given size.
    """

    def __init__(self, num_hashes: int, size: int, seed: int = 0):
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.num_hashes = int(num_hashes)
        self.size = int(size)
        self.seed = int(seed)
        # Derive well-separated per-function seeds from the family seed.
        base = mix64(np.arange(num_hashes, dtype=np.int64), seed=seed)
        self._seeds = [int(s) for s in base]

    def __len__(self) -> int:
        return self.num_hashes

    def hash(self, values: np.ndarray | int, index: int) -> np.ndarray:
        """Hash ``values`` with the ``index``-th function of the family."""
        if not 0 <= index < self.num_hashes:
            raise IndexError(f"hash index {index} out of range [0, {self.num_hashes})")
        return hash_to_range(values, self.size, seed=self._seeds[index])

    def hash_all(self, values: np.ndarray | int) -> np.ndarray:
        """Hash ``values`` with every function; result has a trailing axis of
        length ``num_hashes``."""
        arr = np.asarray(values)
        out = np.empty(arr.shape + (self.num_hashes,), dtype=np.int64)
        for i in range(self.num_hashes):
            out[..., i] = self.hash(arr, i)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HashFamily(num_hashes={self.num_hashes}, size={self.size}, seed={self.seed})"

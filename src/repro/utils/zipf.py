"""Zipf distribution helpers.

The CAFE paper observes (Figure 3) that per-feature importance (gradient norm)
and per-feature popularity follow Zipf distributions with exponents around
1.05-1.1 on Criteo/CriteoTB.  The synthetic data generator samples features
from truncated Zipf distributions, and the gradient-norm analysis fits a Zipf
exponent to measured importance scores, so both directions (sampling and
fitting) live here.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng


def zipf_probabilities(num_items: int, exponent: float) -> np.ndarray:
    """Normalized Zipf probabilities ``p_i ∝ 1 / i**exponent`` for ranks 1..n."""
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class ZipfDistribution:
    """Truncated Zipf distribution over ``num_items`` ranks.

    Rank 0 is the most popular item.  Sampling uses the inverse-CDF method on
    the precomputed cumulative distribution, which is exact and fast for the
    cardinalities used in the synthetic datasets (up to a few hundred thousand
    items per field).
    """

    def __init__(self, num_items: int, exponent: float):
        self.num_items = int(num_items)
        self.exponent = float(exponent)
        self.probabilities = zipf_probabilities(self.num_items, self.exponent)
        self._cdf = np.cumsum(self.probabilities)
        # Guard against floating point drift so searchsorted never overflows.
        self._cdf[-1] = 1.0

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``size`` ranks (0-based, 0 = hottest) from the distribution."""
        generator = make_rng(rng)
        uniforms = generator.random(size)
        return np.searchsorted(self._cdf, uniforms, side="right").astype(np.int64)

    def head_mass(self, top_k: int) -> float:
        """Total probability mass carried by the ``top_k`` most popular ranks."""
        top_k = min(max(top_k, 0), self.num_items)
        return float(self.probabilities[:top_k].sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ZipfDistribution(num_items={self.num_items}, exponent={self.exponent})"


def fit_zipf_exponent(scores: np.ndarray, min_rank: int = 1, max_rank: int | None = None) -> float:
    """Fit a Zipf exponent to sorted positive ``scores`` via log-log regression.

    The scores are sorted in decreasing order and regressed against their rank
    on a log-log scale; the negative slope is the Zipf exponent.  Ranks outside
    ``[min_rank, max_rank]`` are ignored, which mirrors the common practice of
    fitting only the head/torso of the distribution where Zipf behaviour holds.
    """
    values = np.asarray(scores, dtype=np.float64)
    values = values[values > 0]
    if values.size < 2:
        raise ValueError("need at least two positive scores to fit a Zipf exponent")
    values = np.sort(values)[::-1]
    if max_rank is None or max_rank > values.size:
        max_rank = values.size
    if not 1 <= min_rank < max_rank:
        raise ValueError(f"invalid rank window [{min_rank}, {max_rank})")
    ranks = np.arange(min_rank, max_rank + 1, dtype=np.float64)
    selected = values[min_rank - 1 : max_rank]
    slope, _ = np.polyfit(np.log(ranks), np.log(selected), 1)
    return float(-slope)

"""Lightweight logging helpers shared by trainers and experiment runners."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger writing to stderr.

    Handlers are attached only once per logger name so repeated calls (e.g.
    inside pytest) never duplicate output lines.
    """
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger

"""Seeded random-number-generator helpers.

All stochastic components accept either an integer seed or an existing
``numpy.random.Generator``; these helpers normalize that convention so the
whole library is reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or ``None``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Deterministically derive ``count`` independent generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream for determinism.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return [np.random.default_rng(child) for child in root.spawn(count)]

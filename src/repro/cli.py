"""The paper-experiment runner (now the ``experiment`` subcommand).

Usage::

    python -m repro experiment list
    python -m repro experiment run fig8 --scale tiny --seed 0
    python -m repro experiment sweep --dataset criteo --methods hash cafe --ratios 10 100

``run`` executes one registered table/figure experiment and prints the same
rows the paper reports; ``sweep`` is a free-form method × compression-ratio
grid for quick exploration.

Calling this module's :func:`main` directly is the *deprecated* pre-PR-5
entry point (``python -m repro`` used to land here); it still works but
emits a :class:`DeprecationWarning` — the consolidated CLI in
:mod:`repro.api.cli` is the front door now.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

from repro.experiments import (
    EXPERIMENTS,
    build_dataset,
    compare_methods,
    format_table,
    list_experiments,
    run_experiment,
)
from repro.experiments.registry import ABLATIONS
from repro.experiments.reporting import ExperimentResult


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'CAFE: Compact, Adaptive, and Fast Embedding' (SIGMOD 2024)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all reproducible tables and figures")

    run_parser = subparsers.add_parser("run", help="run one table/figure experiment or ablation")
    run_parser.add_argument(
        "experiment",
        choices=list_experiments(include_ablations=True),
        help="experiment id (e.g. fig8, ablation_slots)",
    )
    run_parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"],
                            help="workload scale (default: tiny)")
    run_parser.add_argument("--seed", type=int, default=0, help="base random seed")
    run_parser.add_argument("--output", type=Path, default=None, help="write the result table to this file")

    sweep_parser = subparsers.add_parser("sweep", help="free-form method x compression-ratio sweep")
    sweep_parser.add_argument("--dataset", default="criteo",
                              choices=["avazu", "criteo", "kdd12", "criteotb"])
    sweep_parser.add_argument("--model", default="dlrm", choices=["dlrm", "wdl", "dcn"])
    sweep_parser.add_argument("--methods", nargs="+", default=["hash", "cafe"],
                              help="embedding methods to compare")
    sweep_parser.add_argument("--ratios", nargs="+", type=float, default=[10.0, 100.0],
                              help="compression ratios to sweep")
    sweep_parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument("--output", type=Path, default=None)
    return parser


def _experiment_kwargs(experiment_id: str, scale: str, seed: int) -> dict:
    """Map CLI options onto the (slightly heterogeneous) runner signatures."""
    spec = EXPERIMENTS.get(experiment_id) or ABLATIONS[experiment_id]
    kwargs: dict = {}
    import inspect

    signature = inspect.signature(spec.runner)
    if "scale" in signature.parameters:
        kwargs["scale"] = scale
    if "seed" in signature.parameters:
        kwargs["seed"] = seed
    elif "seeds" in signature.parameters:
        kwargs["seeds"] = (seed,)
    return kwargs


def _emit(result_text: str, output: Path | None) -> None:
    print(result_text)
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(result_text + "\n", encoding="utf-8")
        print(f"\nwritten to {output}")


def run_legacy_cli(argv: list[str] | None = None) -> int:
    """Parse and run experiment-runner arguments (no deprecation warning).

    This is what ``python -m repro experiment ...`` forwards to.
    """
    return _run(build_parser().parse_args(argv))


def main(argv: list[str] | None = None) -> int:
    """Deprecated direct entry point; use ``python -m repro experiment``."""
    warnings.warn(
        "repro.cli.main is deprecated; use `python -m repro experiment ...` "
        "(the consolidated CLI in repro.api.cli)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_legacy_cli(argv)


def _run(args: argparse.Namespace) -> int:
    if args.command == "list":
        rows = [
            {"id": spec.experiment_id, "paper": spec.paper_reference, "title": spec.title}
            for spec in list(EXPERIMENTS.values()) + list(ABLATIONS.values())
        ]
        print(format_table(rows))
        return 0

    if args.command == "run":
        kwargs = _experiment_kwargs(args.experiment, args.scale, args.seed)
        result = run_experiment(args.experiment, **kwargs)
        _emit(result.to_text(), args.output)
        return 0

    if args.command == "sweep":
        dataset = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
        outcomes = compare_methods(
            dataset,
            list(args.methods),
            list(args.ratios),
            model_name=args.model,
            scale=args.scale,
            seed=args.seed,
        )
        result = ExperimentResult(
            experiment_id="sweep",
            title=f"{args.model} on the {args.dataset} preset",
            rows=[o.as_row() for o in outcomes],
        )
        _emit(result.to_text(), args.output)
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

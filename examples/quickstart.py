"""Quickstart: train a DLRM with a CAFE-compressed embedding table.

This example builds a small synthetic Criteo-like dataset, compresses the
embedding table 100x with CAFE, trains one chronological epoch (the paper's
online-training protocol), and compares the result against the uncompressed
ideal and the hash-trick baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticConfig, SyntheticCTRDataset, make_preset
from repro.embeddings import create_embedding
from repro.models import create_model
from repro.training import TrainingConfig, train_and_evaluate

COMPRESSION_RATIO = 100.0
BATCH_SIZE = 128
SEED = 0


def train_one(method: str, dataset: SyntheticCTRDataset, compression_ratio: float) -> dict:
    """Train one configuration and return its metrics."""
    schema = dataset.schema
    embedding = create_embedding(
        method,
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        compression_ratio=compression_ratio,
        optimizer="adagrad",
        learning_rate=0.1,
        rng=np.random.default_rng(SEED),
    )
    model = create_model(
        "dlrm",
        embedding,
        num_fields=schema.num_fields,
        num_numerical=schema.num_numerical,
        rng=np.random.default_rng(SEED + 1),
    )
    results = train_and_evaluate(
        model,
        dataset.training_stream(BATCH_SIZE),
        dataset.test_batch(2048),
        config=TrainingConfig(batch_size=BATCH_SIZE, seed=SEED),
    )
    results["memory_floats"] = embedding.memory_floats()
    results["achieved_ratio"] = embedding.compression_ratio()
    return results


def main() -> None:
    # A scaled-down synthetic preset mirroring the Criteo Kaggle dataset:
    # 26 categorical fields, 13 numerical features, Zipf-skewed popularity,
    # 7 logical days with gradual distribution drift.
    schema = make_preset("criteo", base_cardinality=300, seed=SEED)
    schema.num_days = 5
    dataset = SyntheticCTRDataset(schema, config=SyntheticConfig(samples_per_day=3000, seed=SEED))

    print(f"dataset: {schema.name}  features={schema.num_features}  fields={schema.num_fields}")
    print(f"uncompressed embedding parameters: {schema.embedding_parameters}")
    print()

    print(f"{'method':<12} {'CR':>8} {'memory':>10} {'train loss':>12} {'test AUC':>10}")
    for method, ratio in [("full", 1.0), ("hash", COMPRESSION_RATIO), ("cafe", COMPRESSION_RATIO)]:
        results = train_one(method, dataset, ratio)
        print(
            f"{method:<12} {results['achieved_ratio']:>8.1f} {results['memory_floats']:>10d} "
            f"{results['train_loss']:>12.4f} {results['test_auc']:>10.4f}"
        )

    print()
    print("CAFE keeps the hottest features in exclusive rows (tracked online by")
    print("HotSketch) and shares hashed rows among the long tail.  The paper's")
    print("online metric is the average training loss: at the same memory CAFE")
    print("stays closer to the uncompressed ideal than the plain hash trick.")
    print("(At this miniature scale single runs are noisy — the benchmark suite")
    print("in benchmarks/ averages over seeds and sweeps the full ratio range.)")


if __name__ == "__main__":
    main()

"""The declarative front door end to end: config -> session -> lifecycle.

Builds one ``SystemConfig`` describing a mixed-policy store (tiny fields
uncompressed, tails on CAFE, mids hashed), proves the JSON round trip is
lossless, then drives the full Session lifecycle: train, snapshot,
checkpoint/restore, and the online train->serve pipeline.

Run with: PYTHONPATH=src python examples/declarative_session.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import SystemConfig, build

config = SystemConfig.from_dict(
    {
        "seed": 0,
        "data": {"dataset": "criteo", "scale": "tiny"},
        "store": {"spec": "full:tiny,cafe[cr=16]:tail,hash[cr=8]:mid"},
        "train": {"max_steps": 20},
        "pipeline": {"publish_every_steps": 5, "probe_every_steps": 2, "max_steps": 15},
    }
)

# The config is one JSON document; the round trip is lossless.
assert SystemConfig.from_json(config.to_json()) == config

with build(config) as session:
    plan = session.describe()
    print(f"store: {plan['store']['method']} with {plan['store']['num_groups']} groups")
    for group in plan["store"]["groups"]:
        print(f"  {group['name']}: {group['num_fields']} fields, "
              f"{group['memory_floats']} floats ({group['backend']})")

    report = session.train()
    print(f"trained {report['train']['steps']} steps, "
          f"test AUC {report['train']['test_auc']}")

    # Snapshots are O(1) copy-on-write: frozen even while training continues.
    snapshot = session.snapshot()
    probe_ids = session.dataset.test_batch(num_samples=4).categorical
    frozen = snapshot.lookup(probe_ids).copy()
    session.train(max_steps=5)
    assert np.array_equal(snapshot.lookup(probe_ids), frozen)

    # Checkpoint and restore into a freshly built session: bit-exact.
    with tempfile.TemporaryDirectory() as tmp:
        path = session.checkpoint(Path(tmp) / "session.npz")
        with build(config) as restored:
            restored.restore(path)
            assert np.array_equal(
                restored.store.lookup(probe_ids), session.store.lookup(probe_ids)
            )
    print("checkpoint round trip: bit-exact")

# The pipeline lifecycle on a fresh session (publishes snapshots as it trains).
with build(config) as session:
    report = session.run_pipeline()
    pipe = report["pipeline"]
    print(f"pipeline: {pipe['steps']} steps, {pipe['publishes']} publishes, "
          f"staleness within cadence: {pipe['staleness_within_cadence']}")

print("declarative session example OK")

"""Fault tolerance: checkpointing and resuming CAFE training.

The paper registers HotSketch's state as module buffers so that "the states
can be saved and loaded alongside model parameters" and training can resume
from checkpoints (§4).  This example trains for a few days, saves both the
dense parameters and the CAFE state (tables, free rows, sketch contents,
threshold) to an ``.npz`` file, restores everything into fresh objects, and
verifies the restored model picks up training exactly where it left off.

Run with:  python examples/checkpoint_resume.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.data import SyntheticConfig, SyntheticCTRDataset, make_preset
from repro.embeddings import CafeEmbedding, create_embedding
from repro.models import create_model
from repro.training import Trainer, TrainingConfig

BATCH_SIZE = 128
SEED = 5


def save_checkpoint(path: Path, model, embedding: CafeEmbedding) -> None:
    """Serialize dense parameters and the CAFE/sketch state into one npz file."""
    payload = {}
    for name, value in model.state_dict().items():
        payload[f"dense/{name}"] = value
    for name, value in embedding.state_dict().items():
        payload[f"sparse/{name}"] = value
    np.savez(path, **payload)


def load_checkpoint(path: Path, model, embedding: CafeEmbedding) -> None:
    with np.load(path) as data:
        dense = {k[len("dense/"):]: data[k] for k in data.files if k.startswith("dense/")}
        sparse = {k[len("sparse/"):]: data[k] for k in data.files if k.startswith("sparse/")}
    model.load_state_dict(dense)
    embedding.load_state_dict(sparse)


def build(dataset, seed=SEED):
    schema = dataset.schema
    embedding = create_embedding(
        "cafe",
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        compression_ratio=50.0,
        optimizer="adagrad",
        learning_rate=0.1,
        rng=np.random.default_rng(seed),
    )
    model = create_model(
        "dlrm", embedding, schema.num_fields, schema.num_numerical, rng=np.random.default_rng(seed + 1)
    )
    return embedding, model


def main() -> None:
    schema = make_preset("criteo", base_cardinality=300, seed=SEED)
    schema.num_days = 5
    dataset = SyntheticCTRDataset(schema, config=SyntheticConfig(samples_per_day=2500, seed=SEED))

    embedding, model = build(dataset)
    trainer = Trainer(model, TrainingConfig(batch_size=BATCH_SIZE, seed=SEED))

    # Phase 1: train on the first two days, then checkpoint.
    for day in [0, 1]:
        for batch in dataset.day_batches(day, BATCH_SIZE):
            trainer.train_step(batch)
    test = dataset.test_batch(1500)
    auc_before = trainer.evaluate_auc(test)
    print(f"after 2 days:  test AUC = {auc_before:.4f}, "
          f"hot features tracked = {embedding.num_hot_features()}")

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "cafe_checkpoint.npz"
        save_checkpoint(checkpoint, model, embedding)
        print(f"checkpoint written to {checkpoint.name} "
              f"({checkpoint.stat().st_size / 1024:.1f} KiB)")

        # Simulate a crash: rebuild everything from scratch with a different seed,
        # then restore the checkpoint.
        restored_embedding, restored_model = build(dataset, seed=SEED + 100)
        load_checkpoint(checkpoint, restored_model, restored_embedding)

    restored_auc = Trainer(restored_model, TrainingConfig(batch_size=BATCH_SIZE)).evaluate_auc(test)
    print(f"restored model: test AUC = {restored_auc:.4f} "
          f"(matches: {np.isclose(restored_auc, auc_before)})")
    print(f"restored hot features = {restored_embedding.num_hot_features()}, "
          f"threshold = {restored_embedding.hot_threshold:.3f}")

    # Phase 2: resume online training on the remaining days with the restored state.
    resumed_trainer = Trainer(restored_model, TrainingConfig(batch_size=BATCH_SIZE, seed=SEED))
    for day in [2, 3]:
        for batch in dataset.day_batches(day, BATCH_SIZE):
            resumed_trainer.train_step(batch)
    print(f"after resuming 2 more days: test AUC = {resumed_trainer.evaluate_auc(test):.4f}")


if __name__ == "__main__":
    main()

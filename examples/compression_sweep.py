"""Compression-ratio sweep: regenerate a miniature version of Figure 8.

Sweeps every embedding-compression method across compression ratios on the
Criteo preset and prints the testing-AUC / training-loss table, marking the
ratios at which each method becomes structurally infeasible (Q-R's
complementary tables, AdaEmbed's per-feature scores, MDE's one-column floor).

Run with:  python examples/compression_sweep.py
"""

from __future__ import annotations

from repro.experiments import build_dataset, compare_methods, format_table

METHODS = ["full", "hash", "qr", "adaembed", "mde", "cafe", "cafe_ml"]
RATIOS = [1.0, 5.0, 20.0, 100.0, 500.0]


def main() -> None:
    dataset = build_dataset("criteo", scale="tiny", seed=0)
    print(
        f"dataset: {dataset.schema.name} preset, {dataset.schema.num_features} features, "
        f"{dataset.schema.num_days - 1} training days"
    )
    outcomes = compare_methods(dataset, METHODS, RATIOS, model_name="dlrm", scale="tiny", seed=0)

    rows = []
    for outcome in outcomes:
        row = outcome.as_row()
        if not outcome.feasible:
            row["train_loss"] = "-"
            row["test_auc"] = "infeasible"
        rows.append(row)
    print(format_table(rows))

    print()
    print("Expected shape (mirrors the paper's Figure 8): only CAFE and Hash reach the")
    print("largest ratios; Q-R stops near sqrt(n); AdaEmbed stops near the embedding")
    print("dimension; CAFE stays closest to the uncompressed ideal as the ratio grows.")


if __name__ == "__main__":
    main()

"""Online pipeline quickstart: continuous train→serve with snapshot cadence.

This example runs the full shard-parallel online-learning loop:

1. build a `ShardedEmbeddingStore` with a **thread-pool ShardExecutor** so
   per-shard work fans out concurrently (on one core the pool's win is
   overlapping per-shard stalls — see docs/pipeline.md);
2. hand the model to an `OnlinePipeline`, which trains over the
   chronological day-stream and publishes a copy-on-write snapshot to its
   `ServingEngine` every `publish_every_steps` training steps;
3. fire serve-while-train probe requests between publishes and report
   snapshot staleness, publish latency and probe latency at the end.

Run with:  python examples/online_pipeline.py
"""

from __future__ import annotations

from repro.data import SyntheticConfig, SyntheticCTRDataset, make_preset
from repro.models import create_model
from repro.runtime import OnlinePipeline, PipelineConfig, create_executor
from repro.store import ShardedEmbeddingStore

NUM_SHARDS = 4
COMPRESSION_RATIO = 20.0
BATCH_SIZE = 128
PUBLISH_EVERY = 8
PROBE_EVERY = 3
SEED = 0


def main() -> None:
    schema = make_preset("criteo", base_cardinality=300, seed=SEED)
    schema.num_days = 4
    dataset = SyntheticCTRDataset(schema, config=SyntheticConfig(samples_per_day=1500, seed=SEED))

    store = ShardedEmbeddingStore.build(
        "cafe",
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        num_shards=NUM_SHARDS,
        compression_ratio=COMPRESSION_RATIO,
        seed=SEED,
        executor=create_executor("thread"),
    )
    model = create_model(
        "dlrm", store, num_fields=schema.num_fields, num_numerical=schema.num_numerical, rng=SEED
    )
    print(f"store: {store.num_shards} CAFE shards behind {type(store.executor).__name__}")

    pipeline = OnlinePipeline(
        model,
        config=PipelineConfig(
            publish_every_steps=PUBLISH_EVERY,
            probe_every_steps=PROBE_EVERY,
            serving_micro_batch=32,
        ),
    )
    report = pipeline.run(
        dataset.training_stream(BATCH_SIZE),
        probe_batch=dataset.test_batch(256),
    )

    summary = report.as_dict()
    print(f"trained {summary['steps']} steps over days {summary['days_seen']} "
          f"at {summary['steps_per_s']:.0f} steps/s (avg loss {summary['avg_train_loss']:.4f})")
    print(f"published {summary['publishes']} snapshots (cadence {summary['cadence_steps']} steps): "
          f"publish p50 {summary['publish_p50_ms']:.2f} ms, max {summary['publish_max_ms']:.2f} ms")
    print(f"snapshot staleness never exceeded {summary['max_staleness_steps']} steps "
          f"(cadence bound holds: {summary['staleness_within_cadence']})")
    probe = summary["probe"]
    print(f"serve-while-train probes: p50 {probe['p50_ms']:.2f} ms, "
          f"p95 {probe['p95_ms']:.2f} ms over {probe['count']} requests")
    executor = summary["executor"]
    print(f"executor: {executor['fanouts']} fan-outs, "
          f"parallel efficiency {executor['parallel_efficiency']:.2f}")

    assert report.staleness_within_cadence, "cadence bound violated"


if __name__ == "__main__":
    main()

"""Serving quickstart: sharded embedding store + snapshot micro-batch serving.

This example shows the production-shaped path layered on top of the paper's
CAFE embedding:

1. build a `ShardedEmbeddingStore` — CAFE shards hash-partitioned over the
   global feature-id space, each with its own HotSketch;
2. train a DLRM against the store (the trainer talks to the store interface,
   a single shard would be bit-exact with the bare embedding layer);
3. take a copy-on-write snapshot and serve single-example requests through
   the micro-batching engine while training continues on the live store;
4. refresh the snapshot to publish the newly trained parameters.

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticConfig, SyntheticCTRDataset, make_preset
from repro.models import create_model
from repro.serving import ServingEngine
from repro.store import ShardedEmbeddingStore
from repro.training import Trainer, TrainingConfig

NUM_SHARDS = 4
COMPRESSION_RATIO = 50.0
BATCH_SIZE = 128
MICRO_BATCH = 32
SEED = 0


def main() -> None:
    schema = make_preset("criteo", base_cardinality=300, seed=SEED)
    schema.num_days = 3
    dataset = SyntheticCTRDataset(schema, config=SyntheticConfig(samples_per_day=2000, seed=SEED))

    store = ShardedEmbeddingStore.build(
        "cafe",
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        num_shards=NUM_SHARDS,
        compression_ratio=COMPRESSION_RATIO,
        seed=SEED,
    )
    print(f"store: {store.num_shards} CAFE shards, {store.memory_floats()} floats total, "
          f"CR {store.compression_ratio():.1f}x")

    model = create_model(
        "dlrm", store, num_fields=schema.num_fields, num_numerical=schema.num_numerical, rng=SEED
    )
    trainer = Trainer(model, TrainingConfig(batch_size=BATCH_SIZE, seed=SEED))
    for batch in dataset.day_batches(0, BATCH_SIZE):
        trainer.train_step(batch)
    print(f"warmed up: {trainer.global_step} training steps, "
          f"plan reuse {trainer.embedding_plan_stats()['reuse_rate']:.2f}")

    # Snapshot + serve.  The engine freezes the dense network and the store
    # parameters; training after this point does not affect served answers.
    engine = ServingEngine(model, max_batch_size=MICRO_BATCH)
    requests = dataset.test_batch(256)
    handles = [
        engine.submit(requests.categorical[i], requests.numerical[i])
        for i in range(len(requests))
    ]
    engine.flush()
    first_answers = np.concatenate([h.result() for h in handles])

    # Train another day on the live store — copy-on-write makes this safe.
    for batch in dataset.day_batches(1, BATCH_SIZE):
        trainer.train_step(batch)
    stale_answers = engine.predict(requests.categorical, requests.numerical)
    assert np.array_equal(stale_answers, first_answers)  # snapshot is frozen
    print(f"served {engine.requests_served} requests from snapshot v{engine.snapshot_version} "
          f"(frozen while training advanced to step {trainer.global_step})")

    # Publish the new parameters.
    engine.refresh()
    fresh_answers = engine.predict(requests.categorical, requests.numerical)
    drift = float(np.abs(fresh_answers - stale_answers[: len(fresh_answers)]).mean())
    stats = engine.stats()
    print(f"refreshed to snapshot v{engine.snapshot_version}: mean prediction shift {drift:.4f}")
    print(f"latency: p50 {stats['p50_ms']:.2f} ms  p95 {stats['p95_ms']:.2f} ms  "
          f"p99 {stats['p99_ms']:.2f} ms over {stats['count']} requests "
          f"({stats['avg_micro_batch_rows']:.0f} rows/micro-batch)")

    merged = store.merged_sketch()
    print(f"global hot view: {len(merged.top_k(10))} of the top-10 features tracked across "
          f"{store.num_shards} per-shard sketches")


if __name__ == "__main__":
    main()

"""Using HotSketch standalone: streaming top-k tracking with bounded memory.

HotSketch is useful beyond CAFE: it is a general single-pass, O(1)-per-update
structure for finding the heaviest items of a weighted stream.  This example
feeds it a Zipf-distributed stream whose hot set changes halfway through, and
compares its recall and memory against the exact SpaceSaving algorithm and a
Count-Min sketch, illustrating the trade-offs discussed in the paper's §3.2
and §6.2.

Run with:  python examples/hotsketch_topk.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.sketch import CountMinSketch, HotSketch, SpaceSaving, optimal_slots_per_bucket
from repro.training import recall_at_k
from repro.utils import ZipfDistribution

NUM_ITEMS = 100_000
STREAM_LENGTH = 400_000
TOP_K = 256
ZIPF_EXPONENT = 1.2
SEED = 3


def make_stream(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A two-phase stream: the item ids are remapped halfway through, so the
    hot set changes — the situation CAFE faces in online training."""
    zipf = ZipfDistribution(NUM_ITEMS, ZIPF_EXPONENT)
    first = zipf.sample(STREAM_LENGTH // 2, rng)
    second = (zipf.sample(STREAM_LENGTH // 2, rng) + NUM_ITEMS // 3) % NUM_ITEMS
    return first, second


def report(name: str, reported: np.ndarray, true_top: np.ndarray, memory_floats: int, elapsed: float):
    recall = recall_at_k(true_top, reported)
    print(f"{name:<22} recall={recall:6.2%}  memory={memory_floats:>8d} floats  "
          f"insert throughput={STREAM_LENGTH / elapsed / 1e6:6.2f} M ops/s")


def main() -> None:
    rng = np.random.default_rng(SEED)
    first, second = make_stream(rng)
    full_stream = np.concatenate([first, second])

    counts = np.bincount(second, minlength=NUM_ITEMS)  # "recent" truth after the shift
    true_top = np.argsort(counts)[::-1][:TOP_K]

    print(f"stream: {STREAM_LENGTH} items over {NUM_ITEMS} ids, Zipf z={ZIPF_EXPONENT}, "
          f"hot set changes at the midpoint; target = top-{TOP_K} of the second half")
    print(f"recommended slots per bucket for this skew (Corollary 3.5): "
          f"{optimal_slots_per_bucket(ZIPF_EXPONENT):.1f}")
    print()

    # HotSketch with periodic decay so the old hot set fades out.
    hotsketch = HotSketch(num_buckets=TOP_K, slots_per_bucket=4, hot_threshold=1.0, decay=0.9, seed=SEED)
    start = time.perf_counter()
    for chunk_start in range(0, full_stream.size, 8192):
        hotsketch.insert(full_stream[chunk_start : chunk_start + 8192])
        hotsketch.apply_decay()
    elapsed = time.perf_counter() - start
    report("HotSketch (decayed)", hotsketch.top_k(TOP_K), true_top, hotsketch.memory_floats(), elapsed)

    # Exact SpaceSaving with the same number of monitored entries.
    spacesaving = SpaceSaving(capacity=TOP_K * 4)
    start = time.perf_counter()
    spacesaving.insert(full_stream)
    elapsed = time.perf_counter() - start
    report("SpaceSaving (exact)", spacesaving.top_k(TOP_K), true_top, spacesaving.memory_floats(), elapsed)

    # Count-Min with comparable memory: good frequency estimates, but it has no
    # native notion of "top-k" — we query all ids, which is far more expensive.
    cms = CountMinSketch(width=TOP_K * 4, depth=3, seed=SEED)
    start = time.perf_counter()
    cms.insert(full_stream)
    elapsed = time.perf_counter() - start
    estimates = cms.query(np.arange(NUM_ITEMS))
    report("Count-Min (argmax)", np.argsort(estimates)[::-1][:TOP_K], true_top, cms.memory_floats(), elapsed)


if __name__ == "__main__":
    main()

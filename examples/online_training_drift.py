"""Online training under distribution drift — the scenario CAFE targets.

The paper's key claim of *adaptability* (§3.3, Figure 17) is that CAFE keeps
tracking the hot features as the data distribution changes during online
training, migrating embeddings between the exclusive and shared tables.  This
example constructs a stream whose feature popularity ranking rotates sharply
between days, trains CAFE and the static Hash baseline on it, and reports:

* the per-day online training loss of both methods,
* CAFE's migration activity (promotions / demotions) per day,
* the recall of HotSketch against the day's true top-k features.

Run with:  python examples/online_training_drift.py
"""

from __future__ import annotations

import numpy as np

from repro.data import RotatingDrift, SyntheticConfig, SyntheticCTRDataset, make_preset
from repro.embeddings import create_embedding
from repro.models import create_model
from repro.training import Trainer, TrainingConfig, recall_at_k

COMPRESSION_RATIO = 50.0
BATCH_SIZE = 128
SEED = 7


def build(method: str, dataset: SyntheticCTRDataset):
    schema = dataset.schema
    embedding = create_embedding(
        method,
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        compression_ratio=COMPRESSION_RATIO,
        optimizer="adagrad",
        learning_rate=0.1,
        rng=np.random.default_rng(SEED),
    )
    model = create_model(
        "dlrm", embedding, schema.num_fields, schema.num_numerical, rng=np.random.default_rng(SEED + 1)
    )
    return embedding, Trainer(model, TrainingConfig(batch_size=BATCH_SIZE, seed=SEED))


def main() -> None:
    schema = make_preset("criteo", base_cardinality=300, seed=SEED)
    schema.num_days = 6
    # A strong drift model: 20% of the popularity ranking is reshuffled per day.
    drift = RotatingDrift(swap_fraction=0.2, seed=SEED)
    dataset = SyntheticCTRDataset(
        schema, config=SyntheticConfig(samples_per_day=3000, seed=SEED), drift=drift
    )

    cafe_embedding, cafe_trainer = build("cafe", dataset)
    hash_embedding, hash_trainer = build("hash", dataset)

    print(f"online training with drift: {schema.num_days - 1} training days, CR={COMPRESSION_RATIO:.0f}x")
    print(f"{'day':>4} {'hash loss':>11} {'cafe loss':>11} {'migrations in/out':>19} {'hot recall':>11}")

    day_counts = np.zeros(schema.num_features)
    for day in dataset.train_days:
        hash_losses, cafe_losses = [], []
        migrations_before = (cafe_embedding.migrations_in, cafe_embedding.migrations_out)
        day_counts[:] = 0.0
        for batch in dataset.day_batches(day, BATCH_SIZE):
            hash_losses.append(hash_trainer.train_step(batch))
            cafe_losses.append(cafe_trainer.train_step(batch))
            np.add.at(day_counts, batch.categorical.reshape(-1), 1.0)

        k = cafe_embedding.num_hot_rows
        true_top = np.argsort(day_counts)[::-1][:k]
        reported = cafe_embedding.sketch.top_k(k)
        recall = recall_at_k(true_top, reported)
        promoted = cafe_embedding.migrations_in - migrations_before[0]
        demoted = cafe_embedding.migrations_out - migrations_before[1]
        print(
            f"{day:>4} {np.mean(hash_losses):>11.4f} {np.mean(cafe_losses):>11.4f} "
            f"{promoted:>9d}/{demoted:<9d} {recall:>11.2%}"
        )

    test_batch = dataset.test_batch(2048)
    print()
    print(f"final test AUC  hash: {hash_trainer.evaluate_auc(test_batch):.4f}  "
          f"cafe: {cafe_trainer.evaluate_auc(test_batch):.4f}")
    print(f"exclusive-row occupancy: {cafe_embedding.hot_occupancy():.1%} "
          f"({cafe_embedding.num_hot_features()} of {cafe_embedding.num_hot_rows} rows)")


if __name__ == "__main__":
    main()

"""Integrating CAFE into a custom recommendation model.

The paper implements CAFE as "a plug-in embedding layer module ... [that] can
directly replace the original Embedding module in any PyTorch-based
recommendation model" (§4).  The same is true here: any model built on
``repro.nn`` can swap its embedding storage for a ``CafeEmbedding`` (or any
other ``CompressedEmbedding``) without touching the dense network, as long as
it routes the per-lookup gradients back through ``apply_gradients``.

This example defines a small custom two-tower-style model from scratch —
without using ``repro.models`` — and trains it with three interchangeable
embedding backends.

Run with:  python examples/custom_model_integration.py
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticConfig, SyntheticCTRDataset, make_preset
from repro.embeddings import CompressedEmbedding, create_embedding
from repro.nn import MLP, Adam, Tensor, functional as F
from repro.nn.module import Module
from repro.training.metrics import roc_auc

BATCH_SIZE = 128
SEED = 11


class TwoTowerModel(Module):
    """A minimal custom model: user tower and item tower of pooled embeddings.

    The first half of the categorical fields feeds the "user" tower, the rest
    the "item" tower; the prediction is the dot product of the tower outputs.
    The embedding backend is any :class:`CompressedEmbedding`.
    """

    def __init__(self, embedding: CompressedEmbedding, num_fields: int, tower_dim: int = 16, rng=None):
        self.embedding = embedding
        self.num_fields = num_fields
        self.split = num_fields // 2
        self.user_tower = MLP([embedding.dim, 32, tower_dim], rng=rng)
        self.item_tower = MLP([embedding.dim, 32, tower_dim], rng=rng)

    def forward(self, categorical: np.ndarray) -> tuple[Tensor, Tensor]:
        vectors = self.embedding.lookup(categorical)  # (batch, fields, dim)
        leaf = Tensor(vectors, requires_grad=True)
        user_fields = F.mean(
            F.reshape(leaf, (categorical.shape[0], self.num_fields, self.embedding.dim)), axis=1
        )
        # Average the first / second half of the fields per tower by slicing the
        # pooled representation — kept simple on purpose; a production model
        # would pool each tower's fields separately.
        user = self.user_tower(user_fields)
        item = self.item_tower(user_fields)
        logits = F.sum(F.mul(user, item), axis=1)
        return logits, leaf


def train(backend: str, dataset: SyntheticCTRDataset, compression_ratio: float) -> float:
    schema = dataset.schema
    embedding = create_embedding(
        backend,
        num_features=schema.num_features,
        dim=schema.embedding_dim,
        compression_ratio=compression_ratio,
        optimizer="adagrad",
        learning_rate=0.1,
        rng=np.random.default_rng(SEED),
    )
    model = TwoTowerModel(embedding, schema.num_fields, rng=np.random.default_rng(SEED + 1))
    optimizer = Adam(list(model.parameters()), lr=0.01)

    for batch in dataset.training_stream(BATCH_SIZE):
        logits, leaf = model.forward(batch.categorical)
        loss = F.binary_cross_entropy_with_logits(logits, batch.labels)
        model.zero_grad()
        loss.backward()
        # The integration contract: hand the per-lookup gradient back to the
        # embedding layer.  For CAFE this is also where HotSketch learns the
        # importance scores and migrations happen.
        embedding.apply_gradients(batch.categorical, leaf.grad)
        optimizer.step()

    test = dataset.test_batch(2048)
    logits, _ = model.forward(test.categorical)
    probabilities = 1.0 / (1.0 + np.exp(-logits.data))
    return roc_auc(test.labels, probabilities)


def main() -> None:
    schema = make_preset("avazu", base_cardinality=300, seed=SEED)
    schema.num_days = 5
    dataset = SyntheticCTRDataset(schema, config=SyntheticConfig(samples_per_day=3000, seed=SEED))

    print("custom two-tower model with interchangeable embedding backends")
    print(f"dataset: {schema.name} preset, {schema.num_features} features\n")
    for backend, ratio in [("full", 1.0), ("hash", 50.0), ("cafe", 50.0)]:
        auc = train(backend, dataset, ratio)
        print(f"backend={backend:<6} compression={ratio:>6.0f}x  test AUC = {auc:.4f}")
    print("\nThe point of this example is the integration contract, not the absolute")
    print("numbers: any CompressedEmbedding drops into a hand-written model as long")
    print("as the per-lookup gradients are routed back through apply_gradients().")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Markdown link checker for README.md and docs/.

Verifies that every relative link in the given markdown files points at an
existing file (and, for ``file.md#anchor`` links, at an existing heading:
anchors are derived from headings with the GitHub slug rules — lowercase,
spaces to dashes, punctuation dropped).  External ``http(s):`` links are
not fetched (CI must not depend on the network); they are only checked for
obvious malformation.

Usage::

    python scripts/check_docs_links.py README.md docs/*.md
    python scripts/check_docs_links.py            # defaults to README + docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — skips images' leading ``!`` handling (images use the
#: same target rules) and inline code spans (stripped before matching).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """All anchor slugs defined by a markdown file's headings."""
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slug = github_slug(match.group(1))
            # GitHub de-duplicates repeats as slug-1, slug-2, ...
            candidate, suffix = slug, 0
            while candidate in anchors:
                suffix += 1
                candidate = f"{slug}-{suffix}"
            anchors.add(candidate)
    return anchors


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every markdown link in ``path``."""
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = CODE_SPAN_RE.sub("", line)
        for match in LINK_RE.finditer(stripped):
            yield number, match.group(1)


def check_file(path: Path) -> list[str]:
    """All broken-link problems in one markdown file."""
    problems: list[str] = []
    for line, target in iter_links(path):
        where = f"{path}:{line}"
        if target.startswith(("http://", "https://")):
            if " " in target:
                problems.append(f"{where}: malformed URL '{target}'")
            continue
        if target.startswith("mailto:"):
            continue
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if base and not dest.exists():
            problems.append(f"{where}: missing file '{base}'")
            continue
        if anchor:
            if dest.is_dir():
                problems.append(f"{where}: anchor on a directory '{target}'")
            elif dest.suffix == ".md" and anchor not in heading_anchors(dest):
                problems.append(f"{where}: missing anchor '#{anchor}' in {dest.name}")
    return problems


def check_paths(paths: list[Path]) -> list[str]:
    problems: list[str] = []
    for path in paths:
        problems.extend(check_file(path))
    return problems


def default_paths(root: Path) -> list[Path]:
    return [root / "README.md", *sorted((root / "docs").glob("*.md"))]


def main(argv: list[str]) -> int:
    paths = [Path(arg) for arg in argv] if argv else default_paths(Path.cwd())
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such file(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    problems = check_paths(paths)
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(paths)} files: {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

#!/usr/bin/env python
"""CI smoke: flat (pre-table-group) checkpoints migrate into group stores.

Exercises the checkpoint-migration contract end to end:

1. train a DLRM over a *bare* CAFE layer and save a checkpoint — its sparse
   section is the flat, un-namespaced key space every pre-table-group
   checkpoint has;
2. load that checkpoint into a model whose store is a single-group
   ``TableGroupStore`` of the same geometry and verify bit-exact
   predictions (the migration path);
3. re-save through the group store and verify the new checkpoint is
   group-namespaced and round-trips bit-exact;
4. verify a multi-group store refuses the flat checkpoint with a clear
   error instead of corrupting state.

Usage::

    PYTHONPATH=src python scripts/checkpoint_migration_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.data.schema import DatasetSchema, FieldSchema
from repro.data.synthetic import SyntheticConfig, SyntheticCTRDataset
from repro.embeddings.cafe import CafeEmbedding
from repro.models.dlrm import DLRM
from repro.store import TableGroup, TableGroupStore
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer

DIM = 8


def make_cafe(num_features: int, seed: int) -> CafeEmbedding:
    return CafeEmbedding(
        num_features=num_features,
        dim=DIM,
        num_hot_rows=12,
        num_shared_rows=24,
        rebalance_interval=3,
        learning_rate=0.1,
        rng=seed,
    )


def main() -> int:
    schema = DatasetSchema(
        name="migration",
        fields=[FieldSchema("a", 50), FieldSchema("mid", 600), FieldSchema("tail", 4000)],
        num_numerical=2,
        embedding_dim=DIM,
        num_days=2,
        zipf_exponent=1.3,
    )
    dataset = SyntheticCTRDataset(schema, config=SyntheticConfig(samples_per_day=512, seed=0))
    n = schema.num_features

    def grouped_model(seed: int) -> DLRM:
        store = TableGroupStore(
            [
                TableGroup(
                    "g0_cafe",
                    make_cafe(n, seed),
                    field_indices=np.arange(schema.num_fields),
                    global_shift=np.zeros(schema.num_fields, dtype=np.int64),
                )
            ],
            num_fields=schema.num_fields,
            num_features=n,
            dim=DIM,
        )
        return DLRM(store, schema.num_fields, schema.num_numerical, rng=1)

    # 1. Flat checkpoint from the pre-table-group architecture.
    flat_model = DLRM(make_cafe(n, seed=0), schema.num_fields, schema.num_numerical, rng=1)
    trainer = Trainer(flat_model, TrainingConfig(batch_size=64))
    for batch in dataset.day_batches(0, 64):
        trainer.train_step(batch)
    test = dataset.test_batch(256)
    expected = flat_model.predict_proba(test.categorical, test.numerical)

    with tempfile.TemporaryDirectory() as tmp:
        flat_path = Path(tmp) / "flat.npz"
        save_checkpoint(flat_path, flat_model, step=trainer.global_step)

        # 2. Migrate into a single-group table-group store.
        migrated = grouped_model(seed=9)
        step = load_checkpoint(flat_path, migrated)
        assert step == trainer.global_step, (step, trainer.global_step)
        got = migrated.predict_proba(test.categorical, test.numerical)
        assert np.array_equal(expected, got), "flat -> group migration is not bit-exact"

        # 3. Re-save group-namespaced and round-trip.
        group_path = Path(tmp) / "grouped.npz"
        save_checkpoint(group_path, migrated, step=step)
        with np.load(group_path) as data:
            keys = [k for k in data.files if k.startswith("sparse/")]
        assert any(k.startswith("sparse/group0.backend.") for k in keys), keys
        assert "sparse/num_groups" in keys, keys
        restored = grouped_model(seed=21)
        load_checkpoint(group_path, restored)
        assert np.array_equal(
            expected, restored.predict_proba(test.categorical, test.numerical)
        ), "group-namespaced round trip is not bit-exact"

        # 4. A multi-group store must refuse the flat format.
        multi = TableGroupStore.from_schema(
            schema, spec="full:tiny,cafe[cr=10]:tail,hash[cr=4]:mid", seed=0
        )
        multi_model = DLRM(multi, schema.num_fields, schema.num_numerical, rng=1)
        try:
            load_checkpoint(flat_path, multi_model)
        except (ValueError, KeyError):
            pass
        else:
            raise AssertionError("multi-group store accepted a flat checkpoint")

    print("checkpoint migration smoke: flat -> group-namespaced OK (bit-exact)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
